# Convenience targets; everything assumes the stdlib-only library with
# pytest available for the test/benchmark suites.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test campaign-smoke lossy-smoke service-smoke net-smoke perf-smoke mc-smoke faults-smoke zoo-smoke shard-smoke smoke docs-check benchmarks experiments

# -W error promotes every warning to a failure; the lone ignore shields
# the suite from a deprecation raised inside third-party plugin hooks.
test:
	$(PYTHON) -W error -W "ignore:mypy_extensions.TypedDict is deprecated" -m pytest -x -q

# Fast end-to-end fault-injection sweep (~60 scenarios, fixed master
# seed); exits non-zero if any scenario fails its oracles.
campaign-smoke:
	$(PYTHON) -m repro campaign run --preset smoke --master-seed 0

# The link-fault matrices (docs/NETWORK.md): consensus over lossy and
# partitioned wires behind the reliable transport with adaptive ◇M.
lossy-smoke:
	$(PYTHON) -m repro campaign run --preset lossy --master-seed 0
	$(PYTHON) -m repro campaign run --preset partition --master-seed 0

# The replicated-service preset (docs/SERVICE.md): four seeded
# deployments judged by the service oracles, run twice — the JSON
# records must be byte-identical (the determinism guarantee).
service-smoke:
	$(PYTHON) -m repro service campaign --preset smoke --out /tmp/service-smoke-a.json
	$(PYTHON) -m repro service campaign --preset smoke --out /tmp/service-smoke-b.json
	cmp /tmp/service-smoke-a.json /tmp/service-smoke-b.json
	rm -f /tmp/service-smoke-a.json /tmp/service-smoke-b.json

# The deployed runtime (docs/NET.md): 4 replica OS processes over real
# TCP commit >=100 commands while replica 2 is SIGKILLed and restarted
# mid-run (certified state transfer over sockets); asserts digest
# convergence and exactly-once at every replica.
net-smoke:
	$(PYTHON) -m repro net cluster --replicas 4 --requests 100 --kill 2

# The performance smoke (docs/PERFORMANCE.md): a short deterministic
# saturation run plus the cached/uncached equivalence check, run twice —
# the canonical JSON records must be byte-identical (cache counters are
# deterministic functions of the seeded event order).
perf-smoke:
	$(PYTHON) -m repro perf smoke --out /tmp/perf-smoke-a.json
	$(PYTHON) -m repro perf smoke --out /tmp/perf-smoke-b.json
	cmp /tmp/perf-smoke-a.json /tmp/perf-smoke-b.json
	rm -f /tmp/perf-smoke-a.json /tmp/perf-smoke-b.json

# The model-checking smoke (docs/MODELCHECK.md): a bounded breadth-first
# sweep of the real stack run twice — the repro.mc/v1 artifacts must be
# byte-identical — plus the checker self-test: a depth-first hunt under
# the known-bad mutation must find a counterexample (exit 1).
mc-smoke:
	$(PYTHON) -m repro mc run --max-depth 3 --out /tmp/mc-smoke-a.jsonl
	$(PYTHON) -m repro mc run --max-depth 3 --out /tmp/mc-smoke-b.jsonl
	cmp /tmp/mc-smoke-a.jsonl /tmp/mc-smoke-b.jsonl
	rm -f /tmp/mc-smoke-a.jsonl /tmp/mc-smoke-b.jsonl
	! $(PYTHON) -m repro mc run --strategy dfs --adversary 0 \
		--alphabet equivocate-current --mutation accept-any-current-quorum \
		--stop-on-violation --max-depth 40 --max-rounds 3 \
		--out /tmp/mc-smoke-hunt.jsonl
	$(PYTHON) -m repro mc replay /tmp/mc-smoke-hunt.jsonl --shrink
	rm -f /tmp/mc-smoke-hunt.jsonl

# The cross-fidelity fault campaign (docs/FAULTS.md): the smoke plan
# matrix (muteness, partition-then-heal, kill/rejoin, bit-flip) run at
# the two deterministic fidelities twice — the reports must be
# byte-identical — then once across all three fidelities, subprocess
# clusters included (SIGSTOP muteness, SIGKILL + --join rejoin,
# socket-level link faults), asserting identical verdicts everywhere.
# The net fidelity sits under a hard per-plan wall-clock timeout.
faults-smoke:
	$(PYTHON) -m repro campaign faults --preset smoke --fidelity sim,loopback \
		--out /tmp/faults-smoke-a.json
	$(PYTHON) -m repro campaign faults --preset smoke --fidelity sim,loopback \
		--out /tmp/faults-smoke-b.json
	cmp /tmp/faults-smoke-a.json /tmp/faults-smoke-b.json
	rm -f /tmp/faults-smoke-a.json /tmp/faults-smoke-b.json
	$(PYTHON) -m repro campaign faults --preset smoke \
		--fidelity sim,loopback,net --timeout 120

# The adversary zoo (docs/ADVERSARIES.md): one plan per family (message
# adversary, transient state corruption, timing attack, storage
# bit-flips) at the two deterministic fidelities twice — the reports
# must be byte-identical — then the message adversary once on a real
# subprocess cluster at fidelity 3 under a hard timeout, asserting
# verdict agreement across all three.
zoo-smoke:
	$(PYTHON) -m repro campaign zoo --preset smoke --fidelity sim,loopback \
		--out /tmp/zoo-smoke-a.json
	$(PYTHON) -m repro campaign zoo --preset smoke --fidelity sim,loopback \
		--out /tmp/zoo-smoke-b.json
	cmp /tmp/zoo-smoke-a.json /tmp/zoo-smoke-b.json
	rm -f /tmp/zoo-smoke-a.json /tmp/zoo-smoke-b.json
	$(PYTHON) -m repro campaign zoo --preset net-smoke \
		--fidelity sim,loopback,net --timeout 120

# The sharded deployment (docs/SHARDING.md): the deterministic loopback
# twin run twice — the JSON records must be byte-identical — then the
# real thing: 2 shards x 4 replica OS processes over TCP absorb a
# routed workload while one replica in one shard is SIGKILLed and
# rejoined (per-shard certified state transfer); asserts per-shard
# digest convergence, exactly-once against the routed counts, and zero
# blast radius on the untouched shard.
shard-smoke:
	$(PYTHON) -m repro shard loopback --out /tmp/shard-smoke-a.json
	$(PYTHON) -m repro shard loopback --out /tmp/shard-smoke-b.json
	cmp /tmp/shard-smoke-a.json /tmp/shard-smoke-b.json
	rm -f /tmp/shard-smoke-a.json /tmp/shard-smoke-b.json
	$(PYTHON) -m repro shard cluster --shards 2 --replicas-per-shard 4 \
		--requests 40 --kill-shard 1 --kill-pid 2

# Every smoke target in one call.
smoke: campaign-smoke lossy-smoke service-smoke net-smoke perf-smoke mc-smoke faults-smoke zoo-smoke shard-smoke

# Execute every ```python snippet in README.md and docs/*.md
# (tests/test_docs_snippets.py); keeps the documented examples honest.
docs-check:
	$(PYTHON) -m pytest tests/test_docs_snippets.py -q

benchmarks:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

experiments:
	$(PYTHON) -m repro experiments --list
