# Convenience targets; everything assumes the stdlib-only library with
# pytest available for the test/benchmark suites.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test docs-check benchmarks experiments

test:
	$(PYTHON) -m pytest -x -q

# Execute every ```python snippet in README.md and docs/*.md
# (tests/test_docs_snippets.py); keeps the documented examples honest.
docs-check:
	$(PYTHON) -m pytest tests/test_docs_snippets.py -q

benchmarks:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

experiments:
	$(PYTHON) -m repro experiments --list
