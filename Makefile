# Convenience targets; everything assumes the stdlib-only library with
# pytest available for the test/benchmark suites.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test campaign-smoke lossy-smoke docs-check benchmarks experiments

# -W error promotes every warning to a failure; the lone ignore shields
# the suite from a deprecation raised inside third-party plugin hooks.
test:
	$(PYTHON) -W error -W "ignore:mypy_extensions.TypedDict is deprecated" -m pytest -x -q

# Fast end-to-end fault-injection sweep (~60 scenarios, fixed master
# seed); exits non-zero if any scenario fails its oracles.
campaign-smoke:
	$(PYTHON) -m repro campaign run --preset smoke --master-seed 0

# The link-fault matrices (docs/NETWORK.md): consensus over lossy and
# partitioned wires behind the reliable transport with adaptive ◇M.
lossy-smoke:
	$(PYTHON) -m repro campaign run --preset lossy --master-seed 0
	$(PYTHON) -m repro campaign run --preset partition --master-seed 0

# Execute every ```python snippet in README.md and docs/*.md
# (tests/test_docs_snippets.py); keeps the documented examples honest.
docs-check:
	$(PYTHON) -m pytest tests/test_docs_snippets.py -q

benchmarks:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

experiments:
	$(PYTHON) -m repro experiments --list
