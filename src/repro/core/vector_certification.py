"""Vector certification (paper Section 3, "Handling local variables").

Some local variables — initial values above all — cannot be certified by
prior messages. The paper's remedy is **vector certification**: exchange
a round of signed messages among all processes; each process then holds a
vector of values together with the set of signed messages that witnesses
it. An entry is *correct* when it is the value of a correct process, and
any falsification of an entry is detectable by correct processes because
the entry disagrees with (or lacks) its signed witness.

Instantiated for consensus, this is the INIT phase of Figure 3 (lines
4–9) and yields the Vector Consensus problem with its Vector Validity
property. Propositions 1 and 2 of the paper are about the objects built
here; experiment E5 exercises them.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.certificates import Certificate, SignedMessage
from repro.core.specs import SystemParameters
from repro.errors import CertificateError
from repro.messages.consensus import NULL, Init, Vector

SignatureCheck = Callable[[SignedMessage], bool]


class CertifiedVectorBuilder:
    """Collects signed ``INIT`` messages until a certified vector exists.

    The builder accepts the first ``INIT`` per sender (later ones are the
    sender's problem — a duplicate INIT is flagged by the behaviour
    automaton upstream) and becomes *ready* when ``n - F`` distinct
    senders contributed. The resulting vector has the contributed values
    in the contributors' slots and ``NULL`` elsewhere; the resulting
    certificate is exactly the witnessing INIT set.
    """

    def __init__(self, params: SystemParameters) -> None:
        self._params = params
        self._collected: dict[int, SignedMessage] = {}

    @property
    def collected_count(self) -> int:
        return len(self._collected)

    @property
    def collected(self) -> dict[int, SignedMessage]:
        """Read-only copy of the INITs collected so far (sender -> INIT)."""
        return dict(self._collected)

    @property
    def ready(self) -> bool:
        return len(self._collected) >= self._params.quorum

    def add(self, message: SignedMessage) -> bool:
        """Offer one signed INIT; returns True if it was newly recorded."""
        if not isinstance(message.body, Init):
            raise CertificateError(
                f"vector builder fed a {type(message.body).__name__}, "
                "expected INIT"
            )
        sender = message.body.sender
        if sender in self._collected:
            return False
        if self.ready:
            return False  # the vector is already fixed (paper: wait n-F, stop)
        self._collected[sender] = message
        return True

    def build(self) -> tuple[Vector, Certificate]:
        """The certified vector; raises if not enough INITs were collected."""
        if not self.ready:
            raise CertificateError(
                f"vector builder has {len(self._collected)} INITs, needs "
                f"n-F = {self._params.quorum}"
            )
        values: list[Any] = [NULL] * self._params.n
        for pid, message in self._collected.items():
            assert isinstance(message.body, Init)
            values[pid] = message.body.value
        certificate = Certificate(tuple(self._collected.values()))
        return tuple(values), certificate


def certified_vector_problems(
    inits: list[SignedMessage],
    est_vect: Vector,
    params: SystemParameters,
    verify: SignatureCheck,
) -> list[str]:
    """Check an INIT set against a vector (Proposition-1 well-formedness).

    Well-formed iff: ``n - F`` INITs from distinct senders, all correctly
    signed, and ``est_vect`` equals exactly the collected values — entry
    ``k`` is the value signed by ``p_k`` where present and ``NULL``
    elsewhere. Returns a list of problems (empty means well-formed).
    """
    problems: list[str] = []
    if len(est_vect) != params.n:
        return [f"vector has length {len(est_vect)}, expected n={params.n}"]
    by_sender: dict[int, SignedMessage] = {}
    for sm in inits:
        if not isinstance(sm.body, Init):
            problems.append(
                f"non-INIT entry ({type(sm.body).__name__}) in an INIT set"
            )
            continue
        if not verify(sm):
            problems.append(f"INIT claiming sender {sm.body.sender}: bad signature")
            continue
        if sm.body.sender in by_sender:
            problems.append(f"two INIT entries from sender {sm.body.sender}")
            continue
        by_sender[sm.body.sender] = sm
    if len(by_sender) != params.quorum:
        problems.append(
            f"INIT set has {len(by_sender)} distinct valid senders, "
            f"expected n-F = {params.quorum}"
        )
    for k in range(params.n):
        entry = est_vect[k]
        if k in by_sender:
            witnessed = by_sender[k].body.value  # type: ignore[union-attr]
            if entry != witnessed:
                problems.append(
                    f"vector entry {k} is {entry!r} but the signed INIT "
                    f"witnesses {witnessed!r}"
                )
        elif entry != NULL:
            problems.append(
                f"vector entry {k} is {entry!r} with no witnessing INIT "
                "(must be null)"
            )
    return problems


def vectors_compatible(a: Vector, b: Vector) -> bool:
    """Two certified vectors never disagree on a *present* entry.

    Any two well-formed certified vectors may differ in which entries are
    ``NULL`` (they witness different ``n - F`` subsets) but, because each
    present entry is pinned by a signed INIT and signatures are
    unforgeable, they cannot hold two different non-null values at the
    same position unless the position's owner equivocated its INIT. Used
    by the E5 experiment as the checkable core of Proposition 2.
    """
    return all(
        x == y or x == NULL or y == NULL  # noqa: PLR1714 - clarity over merge
        for x, y in zip(a, b, strict=True)
    )
