"""Generic behaviour state machines (paper Section 3, "State machines").

Under the assumption that every process knows the program text of every
other process, process ``p`` can build an ad-hoc state machine
``SM_p(q)`` modelling the expected behaviour of ``q``. Transitions fire
when ``p`` receives a message from ``q``:

* a message whose *type* is not enabled in the current state is an
  **out-of-order** message (non-permanent omission, duplication, or a
  message the program text cannot generate) — transition to ``faulty``;
* a message whose type is enabled but whose **syntax** or **certificate**
  is not consistent with the expected message is a **wrong expected
  message** — transition to ``faulty``;
* otherwise the machine advances to the rule's target state.

This module provides the table-driven skeleton; the consensus-specific
instantiation (paper Figure 4, with its ``PF`` predicates) lives in
:mod:`repro.consensus.monitor`, because — as the paper stresses — "the
actual design of a particular state machine has to be done in the
particular context of the protocol to transform".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Type

from repro.core.certificates import SignedMessage
from repro.errors import ProtocolError
from repro.messages.base import Message

#: Conventional name of the absorbing fault state.
FAULTY = "faulty"

#: A rule handler inspects the message and either returns the next state
#: (accept) or raises :class:`BehaviorViolation` (reject).
RuleHandler = Callable[[SignedMessage], str]


class BehaviorViolation(Exception):
    """Raised by a rule handler when the message is a wrong expected message.

    Carries the human-readable reason recorded in the fault report. This
    is a control-flow exception internal to the automaton — it never
    escapes :meth:`StateMachine.feed`.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True, slots=True)
class Step:
    """Outcome of feeding one message to a state machine."""

    accepted: bool
    state: str
    reason: str | None = None


class StateMachine:
    """A table-driven automaton over signed-message receipts.

    Rules are registered per ``(state, message type)``. Feeding a message
    whose type has no rule in the current state moves to ``faulty`` with
    an out-of-order reason; a rule that raises :class:`BehaviorViolation`
    moves to ``faulty`` with the rule's reason. The fault state is
    absorbing: once faulty, always faulty.
    """

    def __init__(self, initial: str) -> None:
        self._state = initial
        self._rules: dict[tuple[str, Type[Message]], RuleHandler] = {}
        self._fault_reason: str | None = None

    @property
    def state(self) -> str:
        return self._state

    @property
    def faulty(self) -> bool:
        return self._state == FAULTY

    @property
    def fault_reason(self) -> str | None:
        return self._fault_reason

    def add_rule(
        self, state: str, message_type: Type[Message], handler: RuleHandler
    ) -> None:
        """Enable ``message_type`` in ``state`` with the given checker."""
        key = (state, message_type)
        if key in self._rules:
            raise ProtocolError(
                f"duplicate rule for {message_type.__name__} in state {state!r}"
            )
        self._rules[key] = handler

    def enabled_types(self, state: str | None = None) -> frozenset[str]:
        """Names of the message types enabled in ``state`` (default: current)."""
        at = self._state if state is None else state
        return frozenset(
            message_type.__name__
            for (rule_state, message_type) in self._rules
            if rule_state == at
        )

    def force_state(self, state: str) -> None:
        """Internal (non-receipt) transition, e.g. a round rollover."""
        if self._state != FAULTY:
            self._state = state

    def feed(self, message: SignedMessage) -> Step:
        """Advance the machine on the receipt of ``message``."""
        if self._state == FAULTY:
            return Step(accepted=False, state=FAULTY, reason=self._fault_reason)
        handler = self._rules.get((self._state, type(message.body)))
        if handler is None:
            return self._fail(
                f"out-of-order: {type(message.body).__name__} not enabled "
                f"in state {self._state!r} (enabled: "
                f"{sorted(self.enabled_types()) or 'none'})"
            )
        try:
            next_state = handler(message)
        except BehaviorViolation as violation:
            return self._fail(violation.reason)
        self._state = next_state
        return Step(accepted=True, state=next_state)

    def _fail(self, reason: str) -> Step:
        self._state = FAULTY
        self._fault_reason = reason
        return Step(accepted=False, state=FAULTY, reason=reason)
