"""Generic certificate framework (paper Section 3).

A *certificate* is "a piece of redundant information, including a part of
the process history": concretely, a set of **signed messages** whose
receipt caused — or whose content justifies — the message the certificate
is attached to. Reliability comes from two facts the paper states:

* no process can falsify the content of a signed message without being
  detected by a correct receiver (unforgeable signatures), and
* the cardinality of the signed-message sets allows majority tests.

Wire layout
-----------

A transmitted unit is a :class:`SignedMessage`::

    SignedMessage
      body       : Message            (the protocol payload)
      cert       : Certificate | CertificateDigest
      signature  : Signature over (body, cert digest)

Because the signature covers the *digest* of the certificate rather than
its expansion, a certificate may be **pruned** — replaced by its digest,
or kept with its own entries pruned — without invalidating the signature.
Pruning is what keeps nested certificates polynomial: a ``NEXT`` inside a
``next_cert`` needs only its body (sender, round) and signature to be
checked, so it travels *light* (digest-only certificate); a ``CURRENT``
inside a ``current_cert`` must expose its own certificate one level down
(so the receiver can check the coordinator's ``est_cert``), so it travels
*medium*. Without pruning the recursion ``NEXT(r)`` ⊃ ``NEXT(r-1)`` ⊃ ...
would grow exponentially with the round number; the paper leaves this
engineering point open and we document the choice in DESIGN.md.

Crucially, pruning never removes *bodies or signatures* of the entries a
verifier must inspect — only deeper history that the paper's
well-formedness predicates never look at.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Type, TypeVar

from repro.crypto.cache import caching_enabled
from repro.crypto.encoding import canonical_bytes, tuple_bytes
from repro.crypto.keys import Signer
from repro.crypto.signatures import Signature, SignatureScheme
from repro.errors import CertificateError
from repro.messages.base import Message

M = TypeVar("M", bound=Message)


@dataclass(frozen=True, slots=True)
class CertificateDigest:
    """Stand-in for a pruned certificate: its collision-resistant digest."""

    hex: str

    def canonical(self) -> Any:
        return self.hex


class Certificate:
    """An immutable set of signed messages.

    Entries are kept in a canonical order (sorted by their encoding) so
    that equal certificates have equal digests regardless of insertion
    order.
    """

    __slots__ = ("_entries", "_digest")

    def __init__(self, entries: tuple["SignedMessage", ...] = ()) -> None:
        unique: dict[bytes, SignedMessage] = {}
        for entry in entries:
            unique[entry.light_bytes()] = entry
        self._entries = tuple(
            entry for _key, entry in sorted(unique.items(), key=lambda kv: kv[0])
        )
        self._digest: CertificateDigest | None = None

    # -- collection interface ------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator["SignedMessage"]:
        return iter(self._entries)

    def __contains__(self, item: "SignedMessage") -> bool:
        key = item.light_bytes()
        return any(e.light_bytes() == key for e in self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Certificate):
            return NotImplemented
        return self.digest() == other.digest()

    def __hash__(self) -> int:
        return hash(self.digest().hex)

    @property
    def entries(self) -> tuple["SignedMessage", ...]:
        return self._entries

    def add(self, entry: "SignedMessage") -> "Certificate":
        """A new certificate with ``entry`` included."""
        return Certificate(self._entries + (entry,))

    def union(self, other: "Certificate") -> "Certificate":
        """A new certificate holding the entries of both."""
        return Certificate(self._entries + other.entries)

    # -- queries ----------------------------------------------------------------

    def of_type(self, body_type: Type[M]) -> list["SignedMessage"]:
        """Entries whose body is an instance of ``body_type``."""
        return [e for e in self._entries if isinstance(e.body, body_type)]

    def senders(self) -> frozenset[int]:
        """Identities claimed by the entry bodies."""
        return frozenset(e.body.sender for e in self._entries)

    def bodies(self) -> list[Message]:
        return [e.body for e in self._entries]

    def filter(self, predicate: Callable[["SignedMessage"], bool]) -> "Certificate":
        return Certificate(tuple(e for e in self._entries if predicate(e)))

    # -- identity -------------------------------------------------------------------

    def digest(self) -> CertificateDigest:
        """Digest invariant under pruning of the entries' own certificates."""
        if self._digest is None:
            # Byte-identical to encoding the tuple of light_canonical()
            # forms, but reuses each entry's memoized encoding.
            payload = tuple_bytes(entry.light_bytes() for entry in self._entries)
            self._digest = CertificateDigest(hashlib.sha256(payload).hexdigest())
        return self._digest

    def canonical(self) -> Any:
        return tuple(entry.light_canonical() for entry in self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ", ".join(
            f"{type(e.body).__name__}({e.body.sender})" for e in self._entries
        )
        return f"Certificate[{kinds}]"


#: The empty certificate (e.g. the certificate of an ``INIT`` message).
EMPTY_CERTIFICATE = Certificate(())


# No ``slots=True`` here, deliberately: the instance __dict__ carries
# memoized encodings/digests (sound because the dataclass is frozen and
# its fields immutable), which is what makes repeat verification of one
# envelope a dict lookup instead of a re-encode + MAC. The memo fields
# never participate in __eq__/__hash__ — dataclass comparison only sees
# the declared fields.
@dataclass(frozen=True)
class SignedMessage:
    """A signed protocol message with its (possibly pruned) certificate."""

    body: Message
    cert: Certificate | CertificateDigest
    signature: Signature

    @property
    def cert_digest(self) -> CertificateDigest:
        """The certificate digest, whether the certificate is full or pruned."""
        if isinstance(self.cert, CertificateDigest):
            return self.cert
        return self.cert.digest()

    @property
    def has_full_cert(self) -> bool:
        return isinstance(self.cert, Certificate)

    def full_cert(self) -> Certificate:
        """The full certificate; raises if it was pruned away."""
        if isinstance(self.cert, Certificate):
            return self.cert
        raise CertificateError(
            f"certificate of {type(self.body).__name__} from {self.body.sender} "
            "was pruned to a digest"
        )

    def signed_payload(self) -> Any:
        """The structure the signature covers: the body plus cert digest."""
        return (self.body, self.cert_digest.hex)

    def light_canonical(self) -> Any:
        """Canonical form independent of certificate pruning depth."""
        return (self.body, self.cert_digest.hex, self.signature)

    def canonical(self) -> Any:
        return self.light_canonical()

    # -- memoized encodings (performance; see docs/PERFORMANCE.md) -----------

    def _memo(self, attr: str, compute: Callable[[], Any]) -> Any:
        if not caching_enabled():
            return compute()
        value = self.__dict__.get(attr)
        if value is None:
            value = compute()
            self.__dict__[attr] = value
        return value

    def payload_bytes(self) -> bytes:
        """Canonical encoding of :meth:`signed_payload` (what the MAC covers)."""
        return self._memo(
            "_payload_bytes", lambda: canonical_bytes(self.signed_payload())
        )

    def payload_digest(self) -> bytes:
        """SHA-256 of :meth:`payload_bytes` — the verification-cache key part."""
        return self._memo(
            "_payload_digest",
            lambda: hashlib.sha256(self.payload_bytes()).digest(),
        )

    def light_bytes(self) -> bytes:
        """Canonical encoding of :meth:`light_canonical`.

        Pruning-invariant, hence the envelope's fingerprint everywhere a
        certificate sorts, deduplicates or compares entries.
        """
        return self._memo(
            "_light_bytes", lambda: canonical_bytes(self.light_canonical())
        )

    def envelope_digest(self) -> str:
        """SHA-256 hex of :meth:`light_bytes` — the envelope's identity.

        Keys the clean-verdict predicate cache
        (:class:`repro.consensus.certification.PredicateCache`): identical
        digest means identical body, certificate digest and signature.
        """
        return self._memo(
            "_envelope_digest",
            lambda: hashlib.sha256(self.light_bytes()).hexdigest(),
        )

    # -- pruning -------------------------------------------------------------

    def light(self) -> "SignedMessage":
        """This message with its certificate pruned to the digest.

        The signature stays valid: it covers (body, digest) and the digest
        is preserved.
        """
        return SignedMessage(
            body=self.body, cert=self.cert_digest, signature=self.signature
        )

    def pruned(self, depth: int) -> "SignedMessage":
        """This message with certificate nesting cut at ``depth`` levels."""
        if depth <= 0 or isinstance(self.cert, CertificateDigest):
            return self.light()
        inner = Certificate(
            tuple(entry.pruned(depth - 1) for entry in self.cert.entries)
        )
        return SignedMessage(body=self.body, cert=inner, signature=self.signature)


class CertificationAuthority:
    """Builds and checks signed, certified messages for one process.

    This is the sign/verify half of the paper's *signature module* plus
    the append half of the *certification module*; the protocol-specific
    well-formedness predicates live next to the protocol they certify
    (``repro.consensus.certification``), as the paper prescribes.
    """

    def __init__(self, scheme: SignatureScheme, signer: Signer) -> None:
        self._scheme = scheme
        self._signer = signer

    @property
    def pid(self) -> int:
        return self._signer.pid

    @property
    def scheme(self) -> SignatureScheme:
        """The system-wide scheme (public: verification and forgery
        *attempts* are available to everyone, honest or not)."""
        return self._scheme

    @property
    def signer(self) -> Signer:
        """This process's signing capability (it can only sign as itself)."""
        return self._signer

    def make(
        self, body: Message, cert: Certificate = EMPTY_CERTIFICATE
    ) -> SignedMessage:
        """Sign ``body`` with ``cert`` attached; the sender field must be ours."""
        if body.sender != self._signer.pid:
            raise CertificateError(
                f"process {self._signer.pid} cannot honestly sign a body "
                f"claiming sender {body.sender}"
            )
        draft = SignedMessage(body=body, cert=cert, signature=_PLACEHOLDER)
        signature = self._scheme.sign(self._signer, draft.signed_payload())
        return SignedMessage(body=body, cert=cert, signature=signature)

    def signature_valid(self, message: SignedMessage) -> bool:
        """True iff the signature verifies *and* matches the identity field.

        Verification goes through the scheme's verdict cache keyed by the
        envelope's memoized payload digest, so re-checking an already-seen
        envelope costs a dict lookup (docs/PERFORMANCE.md).
        """
        if message.signature.signer != message.body.sender:
            return False
        return self._scheme.verify_digest(
            message.payload_bytes(), message.payload_digest(), message.signature
        )


_PLACEHOLDER = Signature(signer=-1, mac=b"")
