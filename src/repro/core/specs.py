"""Problem specifications and resilience arithmetic.

Collects, in one place, the numeric bounds the paper states:

* crash model: a majority of correct processes, ``f <= floor((n-1)/2)``;
* arbitrary model: ``F <= min(floor((n-1)/2), C)`` where ``C`` is the
  maximum number of faulty processes the certification service copes
  with — "usual certification mechanisms require C = floor((n-1)/3)"
  (paper footnote 2);
* transformed-protocol quorum: ``n - F`` messages;
* Vector Validity floor: the decided vector contains at least
  ``alpha = n - 2F >= 1`` initial values of correct processes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


def crash_resilience(n: int) -> int:
    """Maximum tolerated crashes: ``floor((n-1)/2)`` (majority correct)."""
    _check_n(n)
    return (n - 1) // 2


def certification_resilience(n: int) -> int:
    """``C`` of the usual certification mechanisms: ``floor((n-1)/3)``."""
    _check_n(n)
    return (n - 1) // 3


def max_arbitrary_faults(n: int, certification_c: int | None = None) -> int:
    """``F <= min(floor((n-1)/2), C)`` — the paper's resilience bound."""
    _check_n(n)
    c = certification_resilience(n) if certification_c is None else certification_c
    return min((n - 1) // 2, c)


def quorum(n: int, f: int) -> int:
    """The transformed protocol's quorum: ``n - F`` messages."""
    return n - f


def vector_validity_floor(n: int, f: int) -> int:
    """``alpha = n - 2F``: guaranteed count of correct initial values."""
    return n - 2 * f


@dataclass(frozen=True, slots=True)
class SystemParameters:
    """Validated parameters of one transformed-protocol deployment.

    Attributes:
        n: number of processes.
        f: assumed maximum number of non-correct processes (the paper's
            ``F``); defaults to the bound when built via :meth:`for_n`.
        certification_c: resilience of the certification service.
    """

    n: int
    f: int
    certification_c: int

    def __post_init__(self) -> None:
        _check_n(self.n)
        if self.f < 0:
            raise ConfigurationError(f"F must be non-negative, got {self.f}")
        bound = min((self.n - 1) // 2, self.certification_c)
        if self.f > bound:
            raise ConfigurationError(
                f"F={self.f} exceeds the resilience bound "
                f"min(floor((n-1)/2), C) = {bound} for n={self.n}, "
                f"C={self.certification_c}"
            )
        if vector_validity_floor(self.n, self.f) < 1:
            raise ConfigurationError(
                f"alpha = n - 2F = {vector_validity_floor(self.n, self.f)} < 1; "
                "the Vector Validity property would be vacuous"
            )

    @classmethod
    def for_n(cls, n: int, f: int | None = None) -> "SystemParameters":
        """Parameters for ``n`` processes with the default certification
        service (``C = floor((n-1)/3)``) and, unless given, the maximum
        tolerated ``F``."""
        c = certification_resilience(n)
        return cls(n=n, f=max_arbitrary_faults(n, c) if f is None else f,
                   certification_c=c)

    @property
    def quorum(self) -> int:
        """``n - F``, the size of every certificate quorum."""
        return self.n - self.f

    @property
    def alpha(self) -> int:
        """``n - 2F``, the Vector Validity floor."""
        return vector_validity_floor(self.n, self.f)


def _check_n(n: int) -> None:
    if n < 2:
        raise ConfigurationError(f"a system needs at least 2 processes, got {n}")
