"""The five-module process structure (paper Figure 1) and its ablation.

A process of the transformed protocol is composed of five modules:

1. **signature module** — signs egress, authenticates ingress;
2. **muteness failure detection module** — maintains ``suspected_i``;
3. **non-muteness failure detection module** — behaviour automata and the
   equivocation ledger, maintains ``faulty_i``;
4. **reliable certification module** — builds/stores certificates;
5. **round-based protocol module** — the transformed algorithm.

:class:`ModuleConfig` lets experiments switch individual modules off —
experiment E8 re-runs the attack gallery with one module ablated at a
time to show each is load-bearing (the paper's modularity claim: every
failure type is encapsulated in exactly one module).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

#: Ablation switch names accepted by :meth:`ModuleConfig.without`.
ABLATABLE_MODULES = (
    "signature",
    "monitor",
    "ledger",
    "muteness",
    "certification",
)


@dataclass(frozen=True, slots=True)
class ModuleConfig:
    """Which of the five modules are active on a process.

    The protocol module itself cannot be disabled (there would be no
    process left); the certification switch disables the *verification*
    of certificates (they are still attached, so other processes can
    verify them — this models a receiver whose certification analyser is
    broken, not a sender that stops certifying).
    """

    verify_signatures: bool = True
    monitor_behavior: bool = True
    track_equivocation: bool = True
    detect_muteness: bool = True
    verify_certificates: bool = True

    @classmethod
    def full(cls) -> "ModuleConfig":
        """Every module active — the configuration the paper mandates."""
        return cls()

    def without(self, module: str) -> "ModuleConfig":
        """A copy with one named module disabled (for ablation studies)."""
        match module:
            case "signature":
                return replace(self, verify_signatures=False)
            case "monitor":
                # Without the behaviour automata there is nothing to run
                # the certificate analyser either.
                return replace(
                    self,
                    monitor_behavior=False,
                    verify_certificates=False,
                    track_equivocation=False,
                )
            case "ledger":
                return replace(self, track_equivocation=False)
            case "muteness":
                return replace(self, detect_muteness=False)
            case "certification":
                return replace(self, verify_certificates=False)
            case _:
                raise ConfigurationError(
                    f"unknown module {module!r}; expected one of "
                    f"{ABLATABLE_MODULES}"
                )

    def active_modules(self) -> tuple[str, ...]:
        """Names of the active switchable modules (for reports)."""
        active = []
        if self.verify_signatures:
            active.append("signature")
        if self.detect_muteness:
            active.append("muteness")
        if self.monitor_behavior:
            active.append("monitor")
        if self.track_equivocation:
            active.append("ledger")
        if self.verify_certificates:
            active.append("certification")
        return tuple(active)
