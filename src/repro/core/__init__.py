"""The paper's primary contribution: the generic transformation toolkit.

Certificates, behaviour automata, vector certification, the five-module
process structure and the transformation blueprint — everything in this
package is protocol-independent; the consensus instantiation lives in
:mod:`repro.consensus`.
"""

from repro.core.automaton import (
    FAULTY,
    BehaviorViolation,
    StateMachine,
    Step,
)
from repro.core.certificates import (
    Certificate,
    CertificateDigest,
    CertificationAuthority,
    EMPTY_CERTIFICATE,
    SignedMessage,
)
from repro.core.modules import ABLATABLE_MODULES, ModuleConfig
from repro.core.specs import (
    SystemParameters,
    certification_resilience,
    crash_resilience,
    max_arbitrary_faults,
    quorum,
    vector_validity_floor,
)
from repro.core.transformer import TransformationBlueprint
from repro.core.vector_certification import (
    CertifiedVectorBuilder,
    certified_vector_problems,
    vectors_compatible,
)

__all__ = [
    "ABLATABLE_MODULES",
    "BehaviorViolation",
    "Certificate",
    "CertificateDigest",
    "CertificationAuthority",
    "CertifiedVectorBuilder",
    "EMPTY_CERTIFICATE",
    "FAULTY",
    "ModuleConfig",
    "SignedMessage",
    "StateMachine",
    "Step",
    "SystemParameters",
    "TransformationBlueprint",
    "certification_resilience",
    "certified_vector_problems",
    "crash_resilience",
    "max_arbitrary_faults",
    "quorum",
    "vector_validity_floor",
    "vectors_compatible",
]
