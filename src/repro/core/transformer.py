"""The transformation methodology as an API (paper Section 3).

The paper's methodology is *generic but not automatic*: the five-module
structure, the certificate guidelines and the state-machine construction
are protocol-independent, while the concrete certificates and automata
must be designed per protocol ("the situation is similar to designing
loops for sequential programs"). This module captures exactly that split:

* :class:`TransformationBlueprint` is the protocol-independent part — it
  assembles, per process, a signature/certification authority, a muteness
  detector and the transformed protocol module, wiring them into the
  Figure 1 structure;
* the protocol-dependent parts (certificate rules, behaviour automata,
  the transformed algorithm itself) are injected as factories.

:func:`repro.systems.build_transformed_system` instantiates the blueprint
for the consensus case study of Sections 4–5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.certificates import CertificationAuthority
from repro.core.modules import ModuleConfig
from repro.core.specs import SystemParameters
from repro.crypto.keys import KeyAuthority
from repro.crypto.signatures import SignatureScheme
from repro.detectors.base import FailureDetector
from repro.sim.process import Process

#: Builds the muteness detector for one process.
MutenessFactory = Callable[[int], FailureDetector]

#: Builds the transformed protocol module for one process. Receives
#: (pid, proposal, authority, muteness detector, module config).
ProtocolFactory = Callable[
    [int, Any, CertificationAuthority, FailureDetector, ModuleConfig], Process
]


@dataclass(slots=True)
class TransformationBlueprint:
    """Protocol-independent assembly of the five-module process structure.

    Args:
        params: the validated system parameters (n, F, C).
        scheme: the signature scheme shared by the system (the paper's
            public-key infrastructure).
        key_authority: holds every process's signing capability.
        muteness_factory: produces a ◇M-class detector per process.
        protocol_factory: produces the transformed protocol module; this
            is where all protocol-specific design (certificates, automata)
            enters the blueprint.
        config: module ablation switches (all on by default).
    """

    params: SystemParameters
    scheme: SignatureScheme
    key_authority: KeyAuthority
    muteness_factory: MutenessFactory
    protocol_factory: ProtocolFactory
    config: ModuleConfig = field(default_factory=ModuleConfig.full)

    def build_process(self, pid: int, proposal: Any) -> Process:
        """Assemble the full five-module process for ``pid``.

        The signature module is realised by the per-process
        :class:`~repro.core.certificates.CertificationAuthority` (sign /
        verify); the muteness module by the injected detector; the
        non-muteness and certification modules are constructed inside the
        protocol factory, which owns their protocol-specific halves.
        """
        authority = CertificationAuthority(
            self.scheme, self.key_authority.signer_for(pid)
        )
        detector = self.muteness_factory(pid)
        return self.protocol_factory(
            pid, proposal, authority, detector, self.config
        )

    def build_all(self, proposals: list[Any]) -> list[Process]:
        """One assembled process per proposal, pid = position."""
        return [
            self.build_process(pid, proposal)
            for pid, proposal in enumerate(proposals)
        ]
