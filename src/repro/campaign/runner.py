"""Run scenarios and aggregate campaign results.

:func:`run_scenario` is the single-run primitive replay is built on:
build the scenario's world, run it to quiescence or the scenario's time
budget, evaluate the oracle catalogue, and return a
:class:`ScenarioRecord` whose JSON rendering is exactly what the
campaign artifact stores. Because every input is pinned by the scenario
config, calling it twice yields identical records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.campaign.oracles import (
    ScenarioOutcome,
    VERDICT_FAIL,
    evaluate_outcome,
)
from repro.campaign.scenario import Scenario, build_scenario_system

#: Progress callback: (index, total, record) after each finished run.
ProgressCallback = Callable[[int, int, "ScenarioRecord"], None]


@dataclass(slots=True)
class ScenarioRecord:
    """One scenario's config, outcome and run accounting."""

    scenario: Scenario
    outcome: ScenarioOutcome
    end_time: float
    end_reason: str
    messages_sent: int
    events: int
    messages_dropped: int = 0
    messages_duplicated: int = 0
    retransmissions: int = 0

    @property
    def scenario_id(self) -> str:
        return self.scenario.scenario_id

    @property
    def verdict(self) -> str:
        return self.outcome.verdict

    def to_record(self) -> dict[str, Any]:
        """The artifact's ``kind=scenario`` payload (JSON-ready)."""
        record = {
            "id": self.scenario_id,
            "config": self.scenario.to_config(),
            "run": {
                "end_time": round(self.end_time, 9),
                "end_reason": self.end_reason,
                "messages_sent": self.messages_sent,
                "events": self.events,
                "messages_dropped": self.messages_dropped,
                "messages_duplicated": self.messages_duplicated,
                "retransmissions": self.retransmissions,
            },
        }
        record.update(self.outcome.to_record())
        return record


def run_scenario(scenario: Scenario) -> ScenarioRecord:
    """Build, run and judge one scenario (deterministic end to end)."""
    system = build_scenario_system(scenario)
    result = system.run(max_time=scenario.max_time)
    outcome = evaluate_outcome(scenario, system)
    transport = system.world.transport
    return ScenarioRecord(
        scenario=scenario,
        outcome=outcome,
        end_time=result.end_time,
        end_reason=result.reason,
        messages_sent=system.world.network.messages_sent,
        events=result.events_dispatched,
        messages_dropped=system.world.network.messages_dropped,
        messages_duplicated=system.world.network.messages_duplicated,
        retransmissions=transport.retransmissions if transport else 0,
    )


@dataclass(slots=True)
class CampaignResult:
    """All records of one campaign plus the summary the artifact stores."""

    records: list[ScenarioRecord] = field(default_factory=list)

    @property
    def verdict_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.verdict] = counts.get(record.verdict, 0) + 1
        return counts

    @property
    def failure_class_coverage(self) -> dict[str, int]:
        """How many scenarios injected each taxonomy failure class."""
        coverage: dict[str, int] = {}
        for record in self.records:
            for failure_class in record.outcome.failure_classes:
                coverage[failure_class] = coverage.get(failure_class, 0) + 1
        return coverage

    @property
    def failures(self) -> list[ScenarioRecord]:
        return [r for r in self.records if r.verdict == VERDICT_FAIL]

    def summary(self) -> dict[str, Any]:
        return {
            "scenarios": len(self.records),
            "verdicts": dict(sorted(self.verdict_counts.items())),
            "failure_class_coverage": dict(
                sorted(self.failure_class_coverage.items())
            ),
            "failing_ids": sorted(r.scenario_id for r in self.failures),
        }


def run_campaign(
    scenarios: Iterable[Scenario],
    progress: ProgressCallback | None = None,
) -> CampaignResult:
    """Run every scenario in order and collect the records."""
    scenario_list = list(scenarios)
    result = CampaignResult()
    for index, scenario in enumerate(scenario_list):
        record = run_scenario(scenario)
        result.records.append(record)
        if progress is not None:
            progress(index, len(scenario_list), record)
    return result


def record_matches(recorded: Mapping[str, Any], fresh: ScenarioRecord) -> bool:
    """Replay check: does a fresh run reproduce the recorded payload?"""
    return recorded == fresh.to_record() or dict(recorded) == fresh.to_record()
