"""One campaign scenario: a fully-specified, replayable world.

A :class:`Scenario` pins *everything* a run depends on — protocol,
system size, fault assignment (Byzantine attacks from the taxonomy
catalogues, collusion, crash schedule), delay model and seed — so that
building and running it twice produces identical traces. The config
round-trips through plain JSON (:meth:`Scenario.to_config` /
:meth:`Scenario.from_config`) and hashes to a stable :attr:`scenario id
<Scenario.scenario_id>`, which is what ``repro campaign replay <id>``
resolves.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.byzantine import CRASH_ATTACKS, TRANSFORMED_ATTACKS, crash_attack, transformed_attack
from repro.byzantine.collusion import make_colluding_equivocators
from repro.byzantine.ct_attacks import CT_ATTACKS, ct_attack
from repro.core.specs import SystemParameters, crash_resilience
from repro.errors import ConfigurationError
from repro.sim.network import (
    DelayModel,
    ExponentialDelay,
    FixedDelay,
    LinkModel,
    Partition,
    UniformDelay,
)
from repro.sim.world import TRANSPORTS
from repro.systems import ConsensusSystem, build_crash_system, build_transformed_system

#: Crash-model protocols run the Figure-2 (or CT) protocol unprotected;
#: transformed protocols run the five-module Figure-3 structure.
CRASH_PROTOCOLS = ("hurfin-raynal", "chandra-toueg")
TRANSFORMED_PROTOCOLS = ("transformed", "transformed-ct")
ALL_PROTOCOLS = CRASH_PROTOCOLS + TRANSFORMED_PROTOCOLS

#: The one coordinated (multi-process, shared-brain) attack available.
COLLUSION_AMPLIFIED_EQUIVOCATION = "amplified-equivocation"

#: Delay-model registry: name -> (constructor, default parameters).
DELAY_MODELS: dict[str, tuple[type, dict[str, float]]] = {
    "uniform": (UniformDelay, {"low": 0.5, "high": 1.5}),
    "fixed": (FixedDelay, {"delay": 1.0}),
    "exponential": (ExponentialDelay, {"mean": 1.0, "base": 0.1, "cap": 50.0}),
}

#: Muteness-detector choices a transformed scenario may pin.
MUTENESS_DETECTORS = ("oracle", "timeout", "round-aware", "adaptive")


def parse_partition_groups(spec: str) -> tuple[tuple[int, ...], ...]:
    """Parse a partition group spec like ``"0,1|2,3"`` into pid groups."""
    try:
        groups = tuple(
            tuple(sorted(int(pid) for pid in side.split(",")))
            for side in spec.split("|")
        )
    except ValueError as exc:
        raise ConfigurationError(
            f"malformed partition groups {spec!r} (expected e.g. '0,1|2,3')"
        ) from exc
    return groups


def format_partition_groups(groups: tuple[tuple[int, ...], ...]) -> str:
    """Inverse of :func:`parse_partition_groups`."""
    return "|".join(",".join(str(pid) for pid in side) for side in groups)


@dataclass(frozen=True, slots=True)
class Scenario:
    """A point in the campaign's scenario space (immutable, hashable)."""

    protocol: str
    n: int
    seed: int = 0
    #: Byzantine fault assignment: sorted ``(pid, attack-name)`` pairs
    #: drawn from the catalogue matching ``protocol``.
    attacks: tuple[tuple[int, str], ...] = ()
    #: Crash schedule: sorted ``(pid, virtual-time)`` pairs.
    crashes: tuple[tuple[int, float], ...] = ()
    #: Coordinated multi-process attack (transformed protocol, F >= 2).
    collusion: str | None = None
    delay_model: str = "uniform"
    delay_params: tuple[tuple[str, float], ...] = ()
    variant: str = "standard"
    max_time: float = 3_000.0
    #: Per-link drop probability (``loss=p`` fault axis).
    loss: float = 0.0
    #: Per-link duplication probability (``dup`` fault axis).
    dup: float = 0.0
    #: Per-link burst-reorder probability.
    reorder: float = 0.0
    #: Scripted partition windows: sorted ``(start, heal, groups)`` with
    #: groups as a ``"0,1|2,3"`` spec (``partition(window, groups)`` axis).
    partitions: tuple[tuple[float, float, str], ...] = ()
    #: ``"none"`` | ``"reliable"`` | ``"no-retransmit"``.
    transport: str = "none"
    #: ◇M implementation for transformed protocols (ignored otherwise).
    muteness: str = "oracle"

    # -- identity -----------------------------------------------------------

    @property
    def scenario_id(self) -> str:
        """Stable content hash of the full config (``s`` + 12 hex chars)."""
        canonical = json.dumps(
            self.to_config(), sort_keys=True, separators=(",", ":")
        )
        return "s" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]

    # -- config round-trip ---------------------------------------------------

    def to_config(self) -> dict[str, Any]:
        """Plain-JSON rendering; :meth:`from_config` inverts it exactly."""
        return {
            "protocol": self.protocol,
            "n": self.n,
            "seed": self.seed,
            "attacks": {str(pid): name for pid, name in self.attacks},
            "crashes": {str(pid): time for pid, time in self.crashes},
            "collusion": self.collusion,
            "delay_model": self.delay_model,
            "delay_params": {key: value for key, value in self.delay_params},
            "variant": self.variant,
            "max_time": self.max_time,
            "loss": self.loss,
            "dup": self.dup,
            "reorder": self.reorder,
            "partitions": [
                [start, heal, groups] for start, heal, groups in self.partitions
            ],
            "transport": self.transport,
            "muteness": self.muteness,
        }

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_config` output."""
        try:
            return cls(
                protocol=config["protocol"],
                n=int(config["n"]),
                seed=int(config["seed"]),
                attacks=tuple(
                    sorted(
                        (int(pid), str(name))
                        for pid, name in dict(config.get("attacks") or {}).items()
                    )
                ),
                crashes=tuple(
                    sorted(
                        (int(pid), float(time))
                        for pid, time in dict(config.get("crashes") or {}).items()
                    )
                ),
                collusion=config.get("collusion"),
                delay_model=config.get("delay_model", "uniform"),
                delay_params=tuple(
                    sorted(
                        (str(key), float(value))
                        for key, value in dict(
                            config.get("delay_params") or {}
                        ).items()
                    )
                ),
                variant=config.get("variant", "standard"),
                max_time=float(config.get("max_time", 3_000.0)),
                loss=float(config.get("loss", 0.0)),
                dup=float(config.get("dup", 0.0)),
                reorder=float(config.get("reorder", 0.0)),
                partitions=tuple(
                    sorted(
                        (float(start), float(heal), str(groups))
                        for start, heal, groups in (config.get("partitions") or ())
                    )
                ),
                transport=config.get("transport", "none"),
                muteness=config.get("muteness", "oracle"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed scenario config: {exc}") from exc

    # -- derived views -------------------------------------------------------

    @property
    def is_transformed(self) -> bool:
        return self.protocol in TRANSFORMED_PROTOCOLS

    @property
    def faulty_pids(self) -> frozenset[int]:
        """Every pid the scenario makes non-correct (ground truth)."""
        pids = {pid for pid, _ in self.attacks} | {pid for pid, _ in self.crashes}
        if self.collusion is not None:
            pids |= {0, self.n - 1}
        return frozenset(pids)

    def attack_names(self) -> dict[int, str]:
        return dict(self.attacks)

    def crash_times(self) -> dict[int, float]:
        return dict(self.crashes)

    def without_fault(self, pid: int) -> "Scenario":
        """A copy with every fault of ``pid`` removed (shrinking step)."""
        return replace(
            self,
            attacks=tuple(a for a in self.attacks if a[0] != pid),
            crashes=tuple(c for c in self.crashes if c[0] != pid),
            collusion=None if self.collusion and pid in (0, self.n - 1) else self.collusion,
        )

    @property
    def has_link_faults(self) -> bool:
        return bool(
            self.loss or self.dup or self.reorder or self.partitions
        )

    def without_link_faults(self) -> "Scenario":
        """A copy on pristine wire (link-fault shrinking step)."""
        return replace(
            self, loss=0.0, dup=0.0, reorder=0.0, partitions=(), transport="none"
        )

    def build_link_model(self) -> LinkModel | None:
        """The :class:`LinkModel` this scenario installs (None if pristine)."""
        if not self.has_link_faults:
            return None
        return LinkModel(
            loss=self.loss,
            duplication=self.dup,
            reorder=self.reorder,
            partitions=tuple(
                Partition(
                    start=start,
                    heal=heal,
                    groups=parse_partition_groups(groups),
                )
                for start, heal, groups in self.partitions
            ),
        )

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on any inconsistency.

        This is the exhaustive pre-flight check behind the CLI's exit-2
        convention: a scenario that validates builds and runs without
        tracebacks.
        """
        if self.protocol not in ALL_PROTOCOLS:
            raise ConfigurationError(
                f"unknown protocol {self.protocol!r}; known: {sorted(ALL_PROTOCOLS)}"
            )
        if self.n < 1:
            raise ConfigurationError(f"n must be positive, got {self.n}")
        if self.max_time <= 0:
            raise ConfigurationError(
                f"max_time must be positive, got {self.max_time}"
            )
        catalog = self._attack_catalog()
        for pid, name in self.attacks:
            if not 0 <= pid < self.n:
                raise ConfigurationError(
                    f"attack pid {pid} out of range for n={self.n}"
                )
            if name not in catalog:
                raise ConfigurationError(
                    f"unknown attack {name!r} for protocol {self.protocol!r}; "
                    f"known: {sorted(catalog)}"
                )
        seen_attack_pids = [pid for pid, _ in self.attacks]
        if len(seen_attack_pids) != len(set(seen_attack_pids)):
            raise ConfigurationError("duplicate attack pid in scenario")
        for pid, time in self.crashes:
            if not 0 <= pid < self.n:
                raise ConfigurationError(
                    f"crash pid {pid} out of range for n={self.n}"
                )
            if time < 0:
                raise ConfigurationError(f"negative crash time {time!r}")
        overlap = {p for p, _ in self.attacks} & {p for p, _ in self.crashes}
        if overlap:
            raise ConfigurationError(
                f"processes {sorted(overlap)} are both crashed and Byzantine"
            )
        if self.collusion is not None:
            if self.collusion != COLLUSION_AMPLIFIED_EQUIVOCATION:
                raise ConfigurationError(
                    f"unknown collusion {self.collusion!r}; known: "
                    f"[{COLLUSION_AMPLIFIED_EQUIVOCATION!r}]"
                )
            if self.protocol != "transformed":
                raise ConfigurationError(
                    "collusion is only defined for the transformed protocol"
                )
            seats = {0, self.n - 1}
            other_faults = {p for p, _ in self.attacks} | {p for p, _ in self.crashes}
            if seats & other_faults:
                raise ConfigurationError(
                    "collusion seats (0 and n-1) cannot carry other faults"
                )
        if self.delay_model not in DELAY_MODELS:
            raise ConfigurationError(
                f"unknown delay model {self.delay_model!r}; known: "
                f"{sorted(DELAY_MODELS)}"
            )
        known_params = DELAY_MODELS[self.delay_model][1]
        for key, _ in self.delay_params:
            if key not in known_params:
                raise ConfigurationError(
                    f"delay model {self.delay_model!r} has no parameter "
                    f"{key!r}; known: {sorted(known_params)}"
                )
        if self.variant not in ("standard", "echo-init"):
            raise ConfigurationError(f"unknown protocol variant {self.variant!r}")
        if self.variant != "standard" and self.protocol != "transformed":
            raise ConfigurationError(
                "variants are only defined for the transformed protocol"
            )
        self._validate_link_faults()
        self._validate_fault_budget()

    def _validate_link_faults(self) -> None:
        for axis, value in (
            ("loss", self.loss),
            ("dup", self.dup),
            ("reorder", self.reorder),
        ):
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(
                    f"{axis} probability must be in [0, 1), got {value!r}"
                )
        for start, heal, groups in self.partitions:
            if start < 0 or heal <= start:
                raise ConfigurationError(
                    f"partition window [{start!r}, {heal!r}) must satisfy "
                    "0 <= start < heal"
                )
            sides = parse_partition_groups(groups)
            if len(sides) < 2 or any(not side for side in sides):
                raise ConfigurationError(
                    f"partition groups {groups!r} need >= 2 non-empty sides"
                )
            seen: set[int] = set()
            for side in sides:
                for pid in side:
                    if not 0 <= pid < self.n:
                        raise ConfigurationError(
                            f"partition pid {pid} out of range for n={self.n}"
                        )
                    if pid in seen:
                        raise ConfigurationError(
                            f"partition groups {groups!r} repeat pid {pid}"
                        )
                    seen.add(pid)
        if self.transport not in TRANSPORTS:
            raise ConfigurationError(
                f"unknown transport {self.transport!r}; known: {list(TRANSPORTS)}"
            )
        if self.muteness not in MUTENESS_DETECTORS:
            raise ConfigurationError(
                f"unknown muteness detector {self.muteness!r}; known: "
                f"{list(MUTENESS_DETECTORS)}"
            )
        if self.muteness != "oracle" and self.protocol not in TRANSFORMED_PROTOCOLS:
            raise ConfigurationError(
                "muteness detectors are only defined for transformed protocols"
            )

    def _validate_fault_budget(self) -> None:
        faulty = self.faulty_pids
        if self.is_transformed:
            params = SystemParameters.for_n(self.n)  # raises for tiny n
            if self.collusion is not None and params.f < 2:
                raise ConfigurationError(
                    f"collusion needs F >= 2, but n={self.n} gives F={params.f}"
                )
            if len(faulty) > params.f:
                raise ConfigurationError(
                    f"{len(faulty)} faults exceed F={params.f} for n={self.n}"
                )
        else:
            if self.n < 2:
                raise ConfigurationError(
                    f"crash-model consensus needs n >= 2, got n={self.n}"
                )
            if self.attacks and self.protocol != "hurfin-raynal":
                raise ConfigurationError(
                    "crash-model attacks target the hurfin-raynal protocol "
                    "(the Figure-2 victim); use crashes for chandra-toueg"
                )
            if len(faulty) > crash_resilience(self.n):
                raise ConfigurationError(
                    f"{len(faulty)} faults exceed the crash-model majority "
                    f"bound floor((n-1)/2) = {crash_resilience(self.n)} "
                    f"for n={self.n}"
                )

    def _attack_catalog(self) -> Mapping[str, type]:
        if self.protocol in CRASH_PROTOCOLS:
            return CRASH_ATTACKS
        if self.protocol == "transformed":
            return TRANSFORMED_ATTACKS
        return CT_ATTACKS

    # -- construction --------------------------------------------------------

    def build_delay_model(self) -> DelayModel:
        factory, defaults = DELAY_MODELS[self.delay_model]
        params = dict(defaults)
        params.update({key: value for key, value in self.delay_params})
        return factory(**params)


def build_scenario_system(scenario: Scenario) -> ConsensusSystem:
    """Validate ``scenario`` and build its (not yet run) world."""
    scenario.validate()
    proposals = [f"v{i}" for i in range(scenario.n)]
    delay_model = scenario.build_delay_model()
    link_model = scenario.build_link_model()
    if not scenario.is_transformed:
        byzantine: dict[int, Any] = {}
        for pid, name in scenario.attacks:
            byzantine.update(crash_attack(pid, name))
        return build_crash_system(
            proposals,
            crash_at=scenario.crash_times(),
            byzantine=byzantine,
            protocol=scenario.protocol,
            seed=scenario.seed,
            delay_model=delay_model,
            link_model=link_model,
            transport=scenario.transport,
        )
    attack_maker = transformed_attack if scenario.protocol == "transformed" else ct_attack
    byzantine = {}
    for pid, name in scenario.attacks:
        byzantine.update(attack_maker(pid, name))
    if scenario.collusion is not None:
        byzantine.update(make_colluding_equivocators(scenario.n))
    return build_transformed_system(
        proposals,
        byzantine=byzantine,
        crash_at=scenario.crash_times(),
        seed=scenario.seed,
        delay_model=delay_model,
        variant=scenario.variant,
        base="hurfin-raynal" if scenario.protocol == "transformed" else "chandra-toueg",
        muteness=scenario.muteness,
        link_model=link_model,
        transport=scenario.transport,
    )
