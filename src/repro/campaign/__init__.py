"""Scenario-matrix fault-injection campaigns (the correctness backbone).

The paper's modularity claim — every failure class of the Section-2
taxonomy is caught by exactly one of the five Figure-1 modules — is only
credible when exercised *systematically*: across protocols, system
sizes, fault assignments (including collusion), delay models and seeds.
This package sweeps that scenario space and turns every run into a
deterministic, replayable record:

* :mod:`repro.campaign.scenario` — one scenario = one fully-specified
  world; its config round-trips through JSON and hashes to a stable id;
* :mod:`repro.campaign.matrix` — deterministic enumeration of the
  scenario space from a :class:`~repro.campaign.matrix.CampaignSpec`;
* :mod:`repro.campaign.oracles` — the oracle catalogue: consensus
  invariants plus the detection-attribution oracle;
* :mod:`repro.campaign.runner` — run scenarios, evaluate oracles;
* :mod:`repro.campaign.artifact` — the versioned JSONL campaign
  artifact (``repro.campaign/v1``, byte-identical for a fixed master
  seed);
* :mod:`repro.campaign.shrink` — minimise a failing scenario to a
  small counterexample.

``python -m repro campaign run|list|replay|shrink`` is the CLI surface;
``docs/TESTING.md`` documents the workflow.
"""

from repro.campaign.artifact import (
    CAMPAIGN_SCHEMA,
    CampaignArtifact,
    read_campaign_jsonl,
    write_campaign_jsonl,
)
from repro.campaign.matrix import CampaignSpec, enumerate_scenarios
from repro.campaign.oracles import ScenarioOutcome, evaluate_outcome
from repro.campaign.runner import (
    CampaignResult,
    ScenarioRecord,
    run_campaign,
    run_scenario,
)
from repro.campaign.scenario import Scenario, build_scenario_system
from repro.campaign.shrink import ShrinkResult, shrink_scenario

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CampaignArtifact",
    "CampaignResult",
    "CampaignSpec",
    "Scenario",
    "ScenarioOutcome",
    "ScenarioRecord",
    "ShrinkResult",
    "build_scenario_system",
    "enumerate_scenarios",
    "evaluate_outcome",
    "read_campaign_jsonl",
    "run_campaign",
    "run_scenario",
    "shrink_scenario",
    "write_campaign_jsonl",
]
