"""Versioned JSONL campaign artifact (``repro.campaign/v1``).

One campaign = one ``.jsonl`` file, following the conventions of the
run-artifact exporter (:mod:`repro.observability.export`): line 1 is a
header carrying the schema version and the campaign meta (preset,
master seed, spec shape); then one ``kind=scenario`` line per run in
enumeration order; then one trailing ``kind=summary`` line. Every line
is canonical JSON (sorted keys, no whitespace), so a fixed-master-seed
campaign exported twice is **byte-identical** — the campaign
determinism tests pin exactly this.

Schema ``repro.campaign/v1`` (full field tables in ``docs/TESTING.md``):

* ``{"kind": "header", "schema": "...", "meta": {...}}``
* ``{"kind": "scenario", "id": s..., "config": {...}, "run": {...},
  "verdict": ..., "properties": {...}, "detection": {...},
  "attribution": {...}, "violations": [...], "failure_classes": [...],
  "undetected": [...]}``
* ``{"kind": "summary", "scenarios": N, "verdicts": {...},
  "failure_class_coverage": {...}, "failing_ids": [...]}``
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, IO, Iterable, Iterator, Mapping

from repro.campaign.runner import CampaignResult
from repro.campaign.scenario import Scenario
from repro.errors import ReproError
from repro.observability.export import dumps_canonical

CAMPAIGN_SCHEMA = "repro.campaign/v1"


class CampaignArtifactError(ReproError):
    """A campaign artifact is malformed or has an unsupported schema."""


def campaign_to_lines(
    result: CampaignResult, meta: Mapping[str, Any] | None = None
) -> Iterator[str]:
    """The full artifact, one JSON line at a time (no trailing newlines)."""
    yield dumps_canonical(
        {"kind": "header", "schema": CAMPAIGN_SCHEMA, "meta": dict(meta or {})}
    )
    for record in result.records:
        payload = {"kind": "scenario"}
        payload.update(record.to_record())
        yield dumps_canonical(payload)
    summary = {"kind": "summary"}
    summary.update(result.summary())
    yield dumps_canonical(summary)


def write_campaign_jsonl(
    target: str | Path | IO[str],
    result: CampaignResult,
    meta: Mapping[str, Any] | None = None,
) -> None:
    """Write the artifact to a path or an open text handle."""
    lines = campaign_to_lines(result, meta)
    if hasattr(target, "write"):
        for line in lines:
            target.write(line + "\n")
        return
    with open(target, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")


@dataclass(slots=True)
class CampaignArtifact:
    """A parsed campaign artifact: header meta, scenario records, summary."""

    schema: str = CAMPAIGN_SCHEMA
    meta: dict[str, Any] = field(default_factory=dict)
    scenarios: list[dict[str, Any]] = field(default_factory=list)
    summary: dict[str, Any] = field(default_factory=dict)

    def find(self, scenario_id: str) -> dict[str, Any]:
        """The recorded payload of one scenario id (raises if absent)."""
        for record in self.scenarios:
            if record.get("id") == scenario_id:
                return record
        raise CampaignArtifactError(
            f"scenario {scenario_id!r} not present in this artifact; "
            f"it records {len(self.scenarios)} scenarios"
        )

    def scenario_for(self, scenario_id: str) -> Scenario:
        """Rebuild the :class:`Scenario` recorded under ``scenario_id``."""
        record = self.find(scenario_id)
        scenario = Scenario.from_config(record["config"])
        if scenario.scenario_id != scenario_id:
            raise CampaignArtifactError(
                f"recorded config of {scenario_id!r} hashes to "
                f"{scenario.scenario_id!r}; the artifact is corrupt"
            )
        return scenario

    def ids(self) -> list[str]:
        return [record["id"] for record in self.scenarios]


def parse_campaign_lines(lines: Iterable[str]) -> CampaignArtifact:
    """Parse artifact lines back into a :class:`CampaignArtifact`."""
    artifact = CampaignArtifact()
    saw_header = False
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise CampaignArtifactError(
                f"line {number}: not JSON ({exc})"
            ) from exc
        kind = record.get("kind")
        if kind == "header":
            schema = record.get("schema", "")
            if not schema.startswith("repro.campaign/"):
                raise CampaignArtifactError(f"unsupported schema {schema!r}")
            try:
                version = int(schema.rpartition("/v")[2])
            except ValueError:
                raise CampaignArtifactError(
                    f"unsupported schema {schema!r}"
                ) from None
            if version > 1:
                raise CampaignArtifactError(
                    f"artifact schema {schema!r} is newer than the installed "
                    f"code (supports {CAMPAIGN_SCHEMA}); upgrade before "
                    f"replaying"
                )
            artifact.schema = schema
            artifact.meta = record.get("meta", {})
            saw_header = True
        elif kind == "scenario":
            payload = dict(record)
            payload.pop("kind")
            artifact.scenarios.append(payload)
        elif kind == "summary":
            payload = dict(record)
            payload.pop("kind")
            artifact.summary = payload
        else:
            raise CampaignArtifactError(
                f"line {number}: unknown record kind {kind!r}"
            )
    if not saw_header:
        raise CampaignArtifactError("campaign artifact has no header line")
    return artifact


def read_campaign_jsonl(path: str | Path) -> CampaignArtifact:
    """Parse a ``.jsonl`` campaign artifact file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return parse_campaign_lines(handle)
    except OSError as exc:
        raise CampaignArtifactError(
            f"cannot read campaign artifact {path}: {exc}"
        ) from exc
