"""Shrink a failing scenario to a minimal counterexample.

When a campaign run violates its oracles, the raw scenario is rarely
the *smallest* world exhibiting the bug: it may carry extra faulty
processes, a bigger system than needed, a fancy delay distribution.
:func:`shrink_scenario` greedily re-runs structurally smaller variants —
drop one fault, shrink ``n``, flatten the delay model to ``fixed``,
zero the seed — keeping a candidate only when it still fails *the same
way* (same violation kinds, per
:func:`repro.campaign.oracles.violation_kinds`). The search is
deterministic: candidates are generated in a fixed order and the first
still-failing candidate is adopted, so the reported minimal
counterexample is stable across machines and runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.campaign.oracles import violation_kinds
from repro.campaign.runner import ScenarioRecord, run_scenario
from repro.campaign.scenario import Scenario
from repro.errors import ConfigurationError

#: Hard cap on candidate runs per shrink (each run is one full world).
DEFAULT_BUDGET = 64


@dataclass(slots=True)
class ShrinkResult:
    """Outcome of one shrinking pass."""

    original: Scenario
    minimal: Scenario
    record: ScenarioRecord
    #: Human-readable step log, one entry per adopted candidate.
    steps: list[str] = field(default_factory=list)
    candidates_tried: int = 0

    @property
    def shrunk(self) -> bool:
        return self.minimal != self.original

    def to_record(self) -> dict:
        return {
            "original_id": self.original.scenario_id,
            "minimal_id": self.minimal.scenario_id,
            "minimal_config": self.minimal.to_config(),
            "steps": list(self.steps),
            "candidates_tried": self.candidates_tried,
        }


def _candidates(scenario: Scenario) -> Iterator[tuple[str, Scenario]]:
    """Structurally smaller variants, most aggressive first."""
    # 1. Drop one faulty process at a time (attack, crash or colluder).
    for pid in sorted(scenario.faulty_pids):
        smaller = scenario.without_fault(pid)
        if smaller != scenario:
            yield f"drop faults of p{pid}", smaller
    # 2. Shrink the system, highest pid first. Only valid while every
    #    remaining fault seat exists in the smaller world.
    if scenario.n > 2 and all(pid < scenario.n - 1 for pid in scenario.faulty_pids):
        yield f"shrink n to {scenario.n - 1}", replace(scenario, n=scenario.n - 1)
    # 3. Heal the wire: drop all link faults (and the transport with them).
    if scenario.has_link_faults:
        yield "heal all link faults", scenario.without_link_faults()
    # 4. Flatten the delay model.
    if scenario.delay_model != "fixed":
        yield "flatten delay model to fixed", replace(
            scenario, delay_model="fixed", delay_params=()
        )
    # 5. Canonicalise the seed.
    if scenario.seed != 0:
        yield "reset seed to 0", replace(scenario, seed=0)


def shrink_scenario(
    scenario: Scenario,
    budget: int = DEFAULT_BUDGET,
) -> ShrinkResult:
    """Greedy deterministic shrink of a failing scenario.

    The target predicate is "fails with the same violation kinds as the
    original run". The original is re-run first to establish those kinds;
    a scenario that does not fail at all raises
    :class:`ConfigurationError` (there is nothing to shrink).
    """
    base_record = run_scenario(scenario)
    base_kinds = violation_kinds(base_record.to_record())
    if not base_kinds:
        raise ConfigurationError(
            f"scenario {scenario.scenario_id} does not fail; nothing to shrink"
        )
    current = scenario
    current_record = base_record
    steps: list[str] = []
    tried = 0
    progress = True
    while progress and tried < budget:
        progress = False
        for description, candidate in _candidates(current):
            if tried >= budget:
                break
            try:
                candidate.validate()
            except ConfigurationError:
                continue  # not a well-formed smaller world; skip
            tried += 1
            candidate_record = run_scenario(candidate)
            if violation_kinds(candidate_record.to_record()) == base_kinds:
                steps.append(f"{description} -> {candidate.scenario_id}")
                current = candidate
                current_record = candidate_record
                progress = True
                break  # restart candidate generation from the new base
    return ShrinkResult(
        original=scenario,
        minimal=current,
        record=current_record,
        steps=steps,
        candidates_tried=tried,
    )
