"""Deterministic enumeration of the campaign scenario space.

A :class:`CampaignSpec` describes *which slice* of the space to sweep —
protocols, system sizes, seeds per configuration, whether to include
crash schedules, collusion and the delay-model rotation — and
:func:`enumerate_scenarios` expands it into a reproducible list of
:class:`~repro.campaign.scenario.Scenario` objects. The expansion is a
pure function of the spec and the master seed: no wall clock, no global
randomness, so two runs of the same spec enumerate byte-identical
campaigns.

Attack seats rotate deterministically through the non-coordinator and
coordinator positions, and the delay model rotates per scenario index,
so the matrix exercises every attack both on and off the round-1
coordinator seat and under all three delay families without blowing up
the cross product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.byzantine import CRASH_ATTACKS, TRANSFORMED_ATTACKS
from repro.byzantine.ct_attacks import CT_ATTACKS
from repro.campaign.scenario import (
    COLLUSION_AMPLIFIED_EQUIVOCATION,
    Scenario,
)
from repro.core.specs import SystemParameters, crash_resilience
from repro.errors import ConfigurationError

#: The delay-model rotation applied across scenario indices.
_DELAY_ROTATION = ("uniform", "fixed", "exponential")


@dataclass(frozen=True, slots=True)
class CampaignSpec:
    """One campaign's slice of the scenario space."""

    name: str = "full"
    crash_sizes: tuple[int, ...] = (4, 5)
    transformed_sizes: tuple[int, ...] = (4,)
    #: Seeds swept per (protocol, n, fault-plan) configuration.
    seeds_per_config: int = 3
    #: Include pure-crash schedules (muteness through the substrate).
    include_crashes: bool = True
    #: Include the coordinated amplified-equivocation pair (needs F >= 2).
    include_collusion: bool = True
    #: Include n=7 transformed scenarios combining an attack with a crash.
    include_combined: bool = True
    #: Include the pristine-wire matrix (attacks, crashes, collusion).
    include_baseline: bool = True
    #: Link-fault families to sweep: ``"lossy"`` and/or ``"partition"``.
    link_faults: tuple[str, ...] = ()
    max_time: float = 3_000.0

    def seeds(self, master_seed: int) -> tuple[int, ...]:
        """The per-config seed sweep derived from the master seed.

        Seeds are an affine, collision-free function of the master seed
        so that campaigns with different master seeds share no worlds,
        while one master seed always yields the same sweep.
        """
        return tuple(
            (master_seed * 100_003 + k) % 2**31
            for k in range(self.seeds_per_config)
        )


#: Named presets the CLI exposes.
PRESETS: dict[str, CampaignSpec] = {
    "smoke": CampaignSpec(
        name="smoke",
        crash_sizes=(4, 5),
        transformed_sizes=(4,),
        seeds_per_config=1,
    ),
    "full": CampaignSpec(name="full", seeds_per_config=4),
    # Link-fault matrices (the robustness axes): transformed consensus on
    # a faulty wire behind the reliable transport with adaptive ◇M.
    "lossy": CampaignSpec(
        name="lossy",
        crash_sizes=(),
        transformed_sizes=(4,),
        seeds_per_config=2,
        include_crashes=False,
        include_collusion=False,
        include_combined=False,
        include_baseline=False,
        link_faults=("lossy",),
    ),
    "partition": CampaignSpec(
        name="partition",
        crash_sizes=(),
        transformed_sizes=(4,),
        seeds_per_config=2,
        include_crashes=False,
        include_collusion=False,
        include_combined=False,
        include_baseline=False,
        link_faults=("partition",),
    ),
}


def campaign_spec(preset: str) -> CampaignSpec:
    try:
        return PRESETS[preset]
    except KeyError:
        raise ConfigurationError(
            f"unknown campaign preset {preset!r}; known: {sorted(PRESETS)}"
        ) from None


def enumerate_scenarios(
    spec: CampaignSpec, master_seed: int = 0
) -> list[Scenario]:
    """Expand ``spec`` into its deterministic scenario list."""
    scenarios = list(_generate(spec, master_seed))
    for index, scenario in enumerate(scenarios):
        scenario.validate()
        del index
    ids = [scenario.scenario_id for scenario in scenarios]
    if len(ids) != len(set(ids)):  # pragma: no cover - spec bug guard
        raise ConfigurationError("campaign enumerated duplicate scenarios")
    return scenarios


def _generate(spec: CampaignSpec, master_seed: int) -> Iterator[Scenario]:
    seeds = spec.seeds(master_seed)
    counter = 0

    def emit(**kwargs) -> Iterator[Scenario]:
        """One scenario per seed, rotating the delay model per config."""
        nonlocal counter
        delay = _DELAY_ROTATION[counter % len(_DELAY_ROTATION)]
        counter += 1
        for seed in seeds:
            yield Scenario(
                seed=seed, delay_model=delay, max_time=spec.max_time, **kwargs
            )

    if spec.include_baseline:
        yield from _baseline(spec, emit)
    for family in spec.link_faults:
        yield from _link_matrix(spec, family, emit)


def _baseline(spec: CampaignSpec, emit) -> Iterator[Scenario]:
    """The pristine-wire matrix: attacks, crashes, collusion, variants."""
    # -- crash-model protocols: the Figure-2 victims ------------------------
    for n in spec.crash_sizes:
        for protocol in ("hurfin-raynal", "chandra-toueg"):
            yield from emit(protocol=protocol, n=n)
            if spec.include_crashes:
                for count in range(1, crash_resilience(n) + 1):
                    crashes = tuple(
                        (pid, 1.0 + 2.0 * pid) for pid in range(count)
                    )
                    yield from emit(protocol=protocol, n=n, crashes=crashes)
        # Byzantine attacks against the unprotected crash protocol: the
        # runs the paper's Section-4 motivation is built on.
        for index, name in enumerate(sorted(CRASH_ATTACKS)):
            seat = index % n
            yield from emit(
                protocol="hurfin-raynal", n=n, attacks=((seat, name),)
            )

    # -- transformed protocols: the Figure-1/Figure-3 structure -------------
    for n in spec.transformed_sizes:
        for protocol, catalog in (
            ("transformed", TRANSFORMED_ATTACKS),
            ("transformed-ct", CT_ATTACKS),
        ):
            yield from emit(protocol=protocol, n=n)
            if spec.include_crashes:
                yield from emit(protocol=protocol, n=n, crashes=((0, 2.0),))
            for index, name in enumerate(sorted(catalog)):
                # Rotate the attacker through the coordinator seat (0)
                # and the last seat; both sides of every round-1 quorum.
                seat = 0 if index % 2 == 0 else n - 1
                yield from emit(
                    protocol=protocol, n=n, attacks=((seat, name),)
                )

    # -- echo-init variant: INIT over reliable broadcast --------------------
    for index, name in enumerate(("equivocate-init", "corrupt-vector")):
        seat = 0 if index % 2 == 0 else min(spec.transformed_sizes) - 1
        yield from emit(
            protocol="transformed",
            n=min(spec.transformed_sizes),
            attacks=((seat, name),),
            variant="echo-init",
        )

    # -- F >= 2 worlds: collusion and combined fault plans ------------------
    if spec.include_collusion:
        yield from emit(
            protocol="transformed",
            n=7,
            collusion=COLLUSION_AMPLIFIED_EQUIVOCATION,
        )
    if spec.include_combined:
        params7 = SystemParameters.for_n(7)
        assert params7.f >= 2
        for name in ("corrupt-vector", "mute", "impersonation"):
            yield from emit(
                protocol="transformed",
                n=7,
                attacks=((3, name),),
                crashes=((6, 4.0),),
            )
        yield from emit(
            protocol="transformed",
            n=7,
            attacks=((1, "equivocate-current"), (5, "premature-decide")),
        )


#: The loss threshold the presets certify (see docs/NETWORK.md): every
#: lossy-preset scenario at or below this per-link drop probability must
#: reach consensus behind the reliable transport.
LOSS_THRESHOLD = 0.2

#: One partition-then-heal window for the n=4 partition matrix.
_PARTITION_WINDOW = (40.0, 120.0, "0,1|2,3")


def _link_matrix(
    spec: CampaignSpec, family: str, emit
) -> Iterator[Scenario]:
    """Link-fault scenarios: faulty wire + reliable transport + adaptive ◇M.

    Every scenario here is expected to *pass* its oracles — the presets
    certify that consensus survives the documented fault envelope. The
    no-retransmit ablation (which demonstrably fails) lives in the test
    suite, not in the presets.
    """
    n = min(spec.transformed_sizes)
    common = dict(
        protocol="transformed",
        n=n,
        transport="reliable",
        muteness="adaptive",
    )
    if family == "lossy":
        # Sweep loss up to the documented threshold, plain and combined
        # with duplication/reordering and with a Byzantine attacker (the
        # attribution oracle must keep blaming the right module).
        for loss in (0.05, 0.1, LOSS_THRESHOLD):
            yield from emit(loss=loss, **common)
        yield from emit(loss=0.1, dup=0.1, reorder=0.05, **common)
        yield from emit(loss=0.1, attacks=((n - 1, "mute"),), **common)
        yield from emit(
            loss=0.1, attacks=((0, "equivocate-current"),), **common
        )
    elif family == "partition":
        # One partition-then-heal window, alone and combined with loss,
        # duplication and a Byzantine attacker outside the minority side.
        yield from emit(partitions=(_PARTITION_WINDOW,), **common)
        yield from emit(
            partitions=(_PARTITION_WINDOW,), loss=0.1, dup=0.05, **common
        )
        yield from emit(
            partitions=(_PARTITION_WINDOW,),
            loss=0.1,
            attacks=((n - 1, "mute"),),
            **common,
        )
    else:  # pragma: no cover - spec bug guard
        raise ConfigurationError(f"unknown link-fault family {family!r}")
