"""The oracle catalogue: what a finished scenario run is judged against.

Three oracle families evaluate every campaign run:

1. **Consensus invariants** — Termination / Agreement / (Vector)
   Validity via :mod:`repro.analysis.properties`. For transformed
   protocols any violation is a genuine failure; for crash-model
   protocols *under Byzantine attack* violations are the paper's point
   (the Figure-2 victim experiments), so they downgrade the verdict to
   ``expected-vulnerability`` instead of ``fail``.

2. **Detection soundness** — no correct process is ever declared faulty
   by a correct process (false positives break the transformation's
   liveness argument), and the muteness oracle never wrongly convicts.

3. **Detection attribution** — the modularity claim itself. Every
   behaviour flag a correct process raises against an injected attacker
   is classified into the Figure-1 module that raised it (signature /
   non-muteness automaton / certification analyser / muteness detector)
   and recorded in the artifact. Enforcement happens at the granularity
   the implementation guarantees deterministically across seats and
   schedules: identity falsification must be flagged by the signature
   module, muteness by the muteness detector, and the five remaining
   classes by the receiver-side verification pair — the Figure-4
   behaviour automaton runs the certification analysers *inside* its
   transitions, so which of the two names a violation first depends on
   the interleaving (an equivocation branch may arrive as an
   out-of-order receipt before its certificate is analysed), while the
   pair as a whole is schedule-independent. An attacker that raises no
   behaviour flag at all was benign under this schedule (e.g. a
   round-2 attack in a world that decides in round 1) and is recorded
   as ``undetected`` rather than failed: detection completeness within
   a bounded virtual horizon is not a property the paper claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.analysis.properties import (
    DetectionReport,
    PropertyReport,
    check_crash_consensus,
    check_detection,
    check_vector_consensus,
)
from repro.byzantine import CRASH_ATTACKS, TRANSFORMED_ATTACKS
from repro.byzantine.ct_attacks import CT_ATTACKS
from repro.byzantine.faults import DetectingModule, FailureClass, FaultProfile
from repro.campaign.scenario import Scenario
from repro.systems import ConsensusSystem

#: Verdict vocabulary, ordered from best to worst.
VERDICT_PASS = "pass"
VERDICT_EXPECTED_VULNERABILITY = "expected-vulnerability"
VERDICT_FAIL = "fail"

#: The receiver-side verification pair: the behaviour automaton and the
#: certification analysers share one receive path (see module docstring).
_VERIFICATION_PAIR = frozenset(
    {DetectingModule.NON_MUTENESS_DETECTOR, DetectingModule.CERTIFICATION}
)


def acceptable_modules(profile: FaultProfile) -> frozenset[DetectingModule]:
    """Modules that may legitimately flag a fault of this profile."""
    if profile.detecting_module is DetectingModule.SIGNATURE:
        return frozenset({DetectingModule.SIGNATURE})
    if profile.detecting_module is DetectingModule.MUTENESS_DETECTOR:
        return frozenset({DetectingModule.MUTENESS_DETECTOR})
    return _VERIFICATION_PAIR

#: Reason-string prefixes raised by the signature module (see
#: ``TransformedConsensusProcess._declare``).
_SIGNATURE_PREFIX = "signature module:"
#: Reason-string prefixes raised by the behaviour automaton (Figure 4).
_AUTOMATON_PREFIXES = ("out-of-order", "identity mismatch", "unexpected")


def classify_fault_reason(reason: str) -> DetectingModule:
    """Map one ``FaultReport.reason`` string to its raising module.

    The monitor bank funnels every declaration through one ledger, so
    the module boundary is recovered from the (stable, tested) reason
    vocabulary: the signature module prefixes its reasons, the automaton
    raises out-of-order / identity-mismatch reasons, and everything else
    comes out of the certification analysers (including the equivocation
    ledger, which proves value corruption from signed evidence).
    """
    if reason.startswith(_SIGNATURE_PREFIX):
        return DetectingModule.SIGNATURE
    if reason.startswith(_AUTOMATON_PREFIXES):
        return DetectingModule.NON_MUTENESS_DETECTOR
    return DetectingModule.CERTIFICATION


@dataclass(slots=True)
class ScenarioOutcome:
    """Everything the oracle catalogue concluded about one run."""

    verdict: str
    properties: PropertyReport
    detection: DetectionReport | None
    #: culprit pid -> sorted module names that flagged it (correct
    #: processes only).
    attribution: dict[int, list[str]]
    #: campaign-level oracle violations (empty unless ``verdict=fail``,
    #: or the run is an expected vulnerability).
    violations: list[str] = field(default_factory=list)
    #: failure classes the scenario injects (taxonomy coverage).
    failure_classes: list[str] = field(default_factory=list)
    undetected: list[int] = field(default_factory=list)

    def to_record(self) -> dict[str, Any]:
        """JSON-ready rendering for the campaign artifact."""
        record: dict[str, Any] = {
            "verdict": self.verdict,
            "properties": {
                "termination": self.properties.termination,
                "agreement": self.properties.agreement,
                "validity": self.properties.validity,
                "violations": list(self.properties.violations),
            },
            "attribution": {
                str(pid): modules for pid, modules in sorted(self.attribution.items())
            },
            "violations": list(self.violations),
            "failure_classes": sorted(self.failure_classes),
            "undetected": sorted(self.undetected),
        }
        if self.detection is not None:
            record["detection"] = {
                "convictions": {
                    str(pid): count
                    for pid, count in sorted(
                        self.detection.detectors_per_culprit.items()
                    )
                },
                "false_positives": {
                    str(pid): sorted(accusers)
                    for pid, accusers in sorted(
                        self.detection.false_positives.items()
                    )
                },
                "suspected": sorted(self.detection.suspected_by_any),
            }
        return record


def attack_profile(scenario: Scenario, name: str) -> FaultProfile:
    """The taxonomy profile of ``name`` under the scenario's protocol."""
    if scenario.protocol == "transformed":
        return TRANSFORMED_ATTACKS[name].profile
    if scenario.protocol == "transformed-ct":
        return CT_ATTACKS[name].profile
    return CRASH_ATTACKS[name].profile


def injected_failure_classes(scenario: Scenario) -> list[str]:
    """The taxonomy failure classes the scenario's fault plan realises."""
    classes = {
        attack_profile(scenario, name).failure_class.value
        for _, name in scenario.attacks
    }
    if scenario.crashes:
        classes.add(FailureClass.MUTENESS.value)
    if scenario.collusion is not None:
        # Amplified equivocation is coordinated value corruption.
        classes.add(FailureClass.VALUE_CORRUPTION.value)
    return sorted(classes)


def observed_attribution(system: ConsensusSystem) -> dict[int, set[DetectingModule]]:
    """Which modules of which correct processes flagged which pids.

    Reads the monitor banks (behaviour flags, classified per
    :func:`classify_fault_reason`) and the detector ``suspected`` sets
    (muteness flags) of every correct process.
    """
    flagged: dict[int, set[DetectingModule]] = {}
    for pid in system.correct_pids:
        process = system.processes[pid]
        bank = getattr(process, "monitor_bank", None)
        if bank is not None:
            for report in bank.reports:
                flagged.setdefault(report.culprit, set()).add(
                    classify_fault_reason(report.reason)
                )
        detector = getattr(process, "detector", None)
        if detector is not None:
            for suspect in detector.suspected:
                flagged.setdefault(suspect, set()).add(
                    DetectingModule.MUTENESS_DETECTOR
                )
    return flagged


def evaluate_outcome(scenario: Scenario, system: ConsensusSystem) -> ScenarioOutcome:
    """Run the full oracle catalogue over a finished system."""
    violations: list[str] = []
    if scenario.is_transformed:
        properties = check_vector_consensus(system)
    else:
        properties = check_crash_consensus(system)

    byzantine_injected = bool(scenario.attacks) or scenario.collusion is not None
    crash_model_under_attack = byzantine_injected and not scenario.is_transformed

    if not properties.all_hold and not crash_model_under_attack:
        violations.extend(
            f"property: {violation}" for violation in properties.violations
        )

    detection: DetectionReport | None = None
    attribution: dict[int, list[str]] = {}
    undetected: list[int] = []
    if scenario.is_transformed:
        detection = check_detection(system)
        for victim, accusers in sorted(detection.false_positives.items()):
            violations.append(
                f"detection: correct process {victim} declared faulty by "
                f"correct processes {sorted(accusers)}"
            )
        flagged = observed_attribution(system)
        for culprit in sorted(flagged):
            attribution[culprit] = sorted(
                module.value for module in flagged[culprit]
            )
        # Muteness soundness: the ◇-detectors may *suspect* correct
        # processes transiently, but an injected culprit must never be a
        # correct pid — flags against correct pids from the behaviour
        # modules are the false positives already checked above.
        for pid, name in scenario.attacks:
            profile = attack_profile(scenario, name)
            modules = flagged.get(pid, set())
            acceptable = acceptable_modules(profile)
            if profile.detecting_module is DetectingModule.MUTENESS_DETECTOR:
                if DetectingModule.MUTENESS_DETECTOR not in modules:
                    undetected.append(pid)
                continue
            # The muteness oracle suspects every ground-truth-faulty pid
            # as background; only *behaviour* flags attribute a failure
            # class to a module.
            behaviour = modules - {DetectingModule.MUTENESS_DETECTOR}
            if not behaviour:
                undetected.append(pid)
                continue
            if not behaviour & acceptable:
                violations.append(
                    f"attribution: attack {name!r} on p{pid} "
                    f"(class {profile.failure_class.value}) was flagged by "
                    f"{sorted(m.value for m in behaviour)}, outside its "
                    f"designated module set "
                    f"{sorted(m.value for m in acceptable)}"
                )
        if scenario.collusion is not None:
            for seat in (0, scenario.n - 1):
                if seat not in flagged:
                    undetected.append(seat)

    if violations:
        verdict = VERDICT_FAIL
    elif crash_model_under_attack and not properties.all_hold:
        verdict = VERDICT_EXPECTED_VULNERABILITY
    else:
        verdict = VERDICT_PASS
    return ScenarioOutcome(
        verdict=verdict,
        properties=properties,
        detection=detection,
        attribution=attribution,
        violations=violations,
        failure_classes=injected_failure_classes(scenario),
        undetected=sorted(undetected),
    )


def violation_kinds(outcome_record: Mapping[str, Any]) -> frozenset[str]:
    """Coarse violation signature used by the shrinking pass.

    Two scenarios "fail the same way" when the kinds (the part of each
    violation before the first ``:``) coincide — the fine-grained text
    carries pids and values that legitimately change while shrinking.
    """
    kinds = set()
    for violation in outcome_record.get("violations", ()):
        kinds.add(violation.split(":", 1)[0])
    for violation in outcome_record.get("properties", {}).get("violations", ()):
        kinds.add(violation.split(":", 1)[0])
    return frozenset(kinds)
