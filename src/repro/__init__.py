"""repro — a reproduction of Baldoni, Hélary & Raynal (DSN 2000):
*From Crash Fault-Tolerance to Arbitrary-Fault Tolerance: Towards a
Modular Approach*.

The library implements, from scratch and on a deterministic simulator of
an asynchronous message-passing system:

* the crash-model Hurfin–Raynal consensus protocol (paper Figure 2) and
  a Chandra–Toueg baseline;
* the generic transformation methodology (five-module process structure,
  certificates, behaviour automata, vector certification — Section 3);
* the transformed Byzantine-resilient Vector Consensus protocol (Figure
  3) with its non-muteness detection automata (Figure 4);
* ◇S and ◇M failure detectors (oracle-driven and timeout-based);
* a gallery of Byzantine behaviours covering the paper's fault taxonomy;
* property checkers and an experiment harness regenerating every
  figure-level claim of the paper (see EXPERIMENTS.md).

Quickstart::

    from repro import build_transformed_system, transformed_attack

    system = build_transformed_system(
        ["a", "b", "c", "d"],
        byzantine=transformed_attack(3, "corrupt-vector"),
        seed=1,
    )
    system.run()
    print(system.decisions())        # the decided vectors
    print(system.processes[0].faulty)  # p0's faulty set: {3}
"""

from repro.analysis import (
    check_crash_consensus,
    check_detection,
    check_vector_consensus,
    measure,
    run_trials,
)
from repro.byzantine import (
    CRASH_ATTACKS,
    TRANSFORMED_ATTACKS,
    crash_attack,
    transformed_attack,
    transformed_attacks_at,
)
from repro.core import (
    Certificate,
    CertificationAuthority,
    ModuleConfig,
    SignedMessage,
    SystemParameters,
    TransformationBlueprint,
)
from repro.systems import (
    ConsensusSystem,
    build_crash_system,
    build_transformed_system,
)

__version__ = "1.0.0"

__all__ = [
    "CRASH_ATTACKS",
    "Certificate",
    "CertificationAuthority",
    "ConsensusSystem",
    "ModuleConfig",
    "SignedMessage",
    "SystemParameters",
    "TRANSFORMED_ATTACKS",
    "TransformationBlueprint",
    "__version__",
    "build_crash_system",
    "build_transformed_system",
    "check_crash_consensus",
    "check_detection",
    "check_vector_consensus",
    "crash_attack",
    "measure",
    "run_trials",
    "transformed_attack",
    "transformed_attacks_at",
]
