"""Oracle failure detectors.

These detectors are driven by ground truth (which processes have actually
crashed / gone mute) plus controllable noise, so experiments can enforce a
failure-detector class *by construction*:

* **strong completeness** — a process that is genuinely faulty (per the
  status source) is suspected at the first poll after it becomes faulty
  and stays suspected;
* **eventual weak accuracy** — after ``accuracy_time`` the oracle stops
  producing erroneous suspicions, and the designated ``trusted`` process
  is never erroneously suspected at any time.

Before ``accuracy_time`` the oracle may wrongly suspect correct processes
at a configurable rate — the "unreliable" in unreliable failure detector.
The same class serves ◇S (status = crashed) and the oracle flavour of ◇M
(status = mute), since their formal shape is identical; only the notion of
"faulty" differs.
"""

from __future__ import annotations

from typing import Callable

from repro.detectors.base import FailureDetector

StatusSource = Callable[[int], bool]


class OracleDetector(FailureDetector):
    """Ground-truth detector with pre-GST noise.

    Args:
        status: maps a pid to ``True`` when that process is genuinely
            faulty in the sense this detector watches (crashed, mute, ...).
        trusted: a process id that is *never* erroneously suspected; when
            every instance shares a correct ``trusted``, eventual weak
            accuracy holds system-wide. ``None`` disables the guarantee.
        poll_interval: virtual time between oracle refreshes.
        accuracy_time: after this virtual time no erroneous suspicion is
            produced (the eventual-accuracy horizon).
        noise_rate: per-poll probability of erroneously suspecting one
            random non-trusted process before ``accuracy_time``.
    """

    def __init__(
        self,
        status: StatusSource,
        trusted: int | None = None,
        poll_interval: float = 1.0,
        accuracy_time: float = 0.0,
        noise_rate: float = 0.0,
    ) -> None:
        super().__init__()
        self._status = status
        self._trusted = trusted
        self._poll_interval = poll_interval
        self._accuracy_time = accuracy_time
        self._noise_rate = noise_rate

    def start(self) -> None:
        self._poll()

    def _poll(self) -> None:
        if self.env.crashed or self._stopped:
            return
        rng = self.env.rng
        for pid in range(self.env.n):
            if pid == self.env.pid:
                continue
            if self._status(pid):
                self._suspect(pid)
            elif pid not in self._erroneous():
                self._unsuspect(pid)
        if self.env.now < self._accuracy_time and self._noise_rate > 0.0:
            if rng.chance(self._noise_rate):
                victim = self._pick_noise_victim()
                if victim is not None:
                    self._suspect(victim)
        self.env.scheduler.schedule_after(
            self._poll_interval, "fd-poll", self._poll
        )

    def _erroneous(self) -> set[int]:
        """Currently-suspected processes that are not genuinely faulty."""
        if self.env.now < self._accuracy_time:
            # Pre-horizon erroneous suspicions persist until the next poll
            # clears them (they were added this poll or will be cleared).
            return {pid for pid in self._suspected if not self._status(pid)}
        return set()

    def _pick_noise_victim(self) -> int | None:
        candidates = [
            pid
            for pid in range(self.env.n)
            if pid != self.env.pid and pid != self._trusted and not self._status(pid)
        ]
        if not candidates:
            return None
        return self.env.rng.choice(candidates)


class ScriptedDetector(FailureDetector):
    """A detector whose suspicions follow a fixed timetable.

    Used by adversarial experiments (E14) that need exact control over
    *when* each process suspects whom. ``script`` is a list of
    ``(target, from_time, to_time)`` windows; the ``suspected`` set is
    computed from the current virtual time on every read, so no polling
    events are needed (and runs stay quiescent).
    """

    def __init__(self, script: list[tuple[int, float, float]]) -> None:
        super().__init__()
        self._script = list(script)

    @property
    def suspected(self) -> frozenset[int]:
        if self._env is None:
            return frozenset()
        now = self.env.now
        return frozenset(
            target
            for target, start, end in self._script
            if start <= now <= end
        )

    def is_suspected(self, pid: int) -> bool:
        return pid in self.suspected


class PerfectOracle(OracleDetector):
    """A perfect detector (class P): no noise, immediate completeness.

    Not used by the protocols (the paper's model is asynchronous) but
    invaluable in tests to isolate protocol logic from detector noise.
    """

    def __init__(self, status: StatusSource, poll_interval: float = 1.0) -> None:
        super().__init__(
            status=status,
            trusted=None,
            poll_interval=poll_interval,
            accuracy_time=0.0,
            noise_rate=0.0,
        )
