"""Builders for ◇S detector suites.

The Hurfin–Raynal protocol assumes a detector of class ◇S (strong
completeness + eventual weak accuracy). Two interchangeable
implementations are provided:

* the :class:`~repro.detectors.oracles.OracleDetector`, which enforces the
  class by construction (used when an experiment must control detector
  quality exactly), and
* the :class:`~repro.detectors.heartbeat.HeartbeatDetector`, an honest
  message-based implementation that converges to ◇P ⊆ ◇S when the run's
  delays are eventually bounded.

These helpers build one detector per process so that the oracle instances
share a ``trusted`` process — the witness of eventual weak accuracy.
"""

from __future__ import annotations

from typing import Callable

from repro.detectors.heartbeat import HeartbeatDetector
from repro.detectors.oracles import OracleDetector
from repro.sim.world import World


def oracle_diamond_s_suite(
    world: World,
    trusted: int,
    poll_interval: float = 1.0,
    accuracy_time: float = 0.0,
    noise_rate: float = 0.0,
) -> list[OracleDetector]:
    """One ◇S oracle per process, fed by the world's crash ground truth.

    ``trusted`` should be a process the caller knows will stay correct; it
    is never erroneously suspected, which realises eventual weak accuracy.
    """
    status: Callable[[int], bool] = world.is_crashed
    return [
        OracleDetector(
            status=status,
            trusted=trusted,
            poll_interval=poll_interval,
            accuracy_time=accuracy_time,
            noise_rate=noise_rate,
        )
        for _ in range(world.n)
    ]


def heartbeat_diamond_s_suite(
    n: int,
    period: float = 1.0,
    initial_timeout: float = 4.0,
    backoff: float = 2.0,
) -> list[HeartbeatDetector]:
    """One adaptive heartbeat detector per process."""
    return [
        HeartbeatDetector(
            period=period, initial_timeout=initial_timeout, backoff=backoff
        )
        for _ in range(n)
    ]
