"""Unreliable failure-detector substrate: ◇S (crash) and ◇M (muteness)."""

from repro.detectors.base import FailureDetector
from repro.detectors.diamond_m import (
    AdaptiveMutenessDetector,
    MutenessDetector,
    RoundAwareMutenessDetector,
)
from repro.detectors.diamond_s import (
    heartbeat_diamond_s_suite,
    oracle_diamond_s_suite,
)
from repro.detectors.heartbeat import Heartbeat, HeartbeatDetector
from repro.detectors.oracles import OracleDetector, PerfectOracle

__all__ = [
    "AdaptiveMutenessDetector",
    "FailureDetector",
    "Heartbeat",
    "HeartbeatDetector",
    "MutenessDetector",
    "OracleDetector",
    "PerfectOracle",
    "RoundAwareMutenessDetector",
    "heartbeat_diamond_s_suite",
    "oracle_diamond_s_suite",
]
