"""Failure-detector module interface.

A failure detector is a per-process module that maintains a set of
``suspected`` process identities; the protocol module may only *read* this
set (paper Sections 1 and 3). Detectors are unreliable: they may suspect
correct processes and may be late to suspect faulty ones — the classes
(◇S, ◇M, ...) constrain *eventual* behaviour only.

Detectors are attached to a process environment and schedule their own
internal timers, so protocol modules stay independent of detector
mechanics: they feed the detector every protocol message they receive and
read ``suspected`` when the algorithm consults it.
"""

from __future__ import annotations

from abc import ABC

from repro.errors import ProtocolError
from repro.observability.registry import MODULE_MUTENESS
from repro.sim.process import ProcessEnv


class FailureDetector(ABC):
    """Base class of every failure-detector module.

    Observability: suspicion churn is counted under the ``muteness_fd``
    module label — the failure-detection slot of the paper's Figure 1.
    (Crash-model ◇S detectors occupy the same slot, so their counters
    share the label; see ``docs/OBSERVABILITY.md``.)
    """

    def __init__(self) -> None:
        self._suspected: set[int] = set()
        self._env: ProcessEnv | None = None
        self._stopped = False

    @property
    def env(self) -> ProcessEnv:
        if self._env is None:
            raise ProtocolError("failure detector used before attach()")
        return self._env

    @property
    def attached(self) -> bool:
        return self._env is not None

    def attach(self, env: ProcessEnv) -> None:
        """Bind the detector to the process environment that hosts it."""
        if self._env is not None:
            raise ProtocolError("failure detector attached twice")
        self._env = env

    def start(self) -> None:
        """Begin detection (arm timers). Called from the host's ``on_start``."""

    def stop(self) -> None:
        """Cease detection permanently (host decided or halted).

        Pending internal timers become no-ops, letting the run quiesce.
        """
        self._stopped = True

    @property
    def stopped(self) -> bool:
        return self._stopped

    # -- inputs --------------------------------------------------------------

    def on_protocol_message(self, src: int) -> None:
        """Notify the detector that a protocol message from ``src`` arrived."""

    def filter_message(self, src: int, payload: object) -> bool:
        """Offer a raw delivery to the detector.

        Returns ``True`` if the payload was detector-internal traffic
        (e.g. a heartbeat) that the protocol module must not see.
        """
        return False

    # -- output ----------------------------------------------------------------

    @property
    def suspected(self) -> frozenset[int]:
        """The set of processes currently suspected (read-only view)."""
        return frozenset(self._suspected)

    def is_suspected(self, pid: int) -> bool:
        return pid in self._suspected

    # -- bookkeeping for subclasses ---------------------------------------------

    def _suspect(self, pid: int) -> None:
        if pid not in self._suspected:
            self._suspected.add(pid)
            self.env.metrics.inc(
                MODULE_MUTENESS, "suspicions_raised", pid=self.env.pid
            )
            self.env.trace.record(
                self.env.now, "suspect", process=self.env.pid, target=pid
            )

    def _unsuspect(self, pid: int) -> None:
        if pid in self._suspected:
            self._suspected.discard(pid)
            self.env.metrics.inc(
                MODULE_MUTENESS, "suspicions_retracted", pid=self.env.pid
            )
            self.env.trace.record(
                self.env.now, "unsuspect", process=self.env.pid, target=pid
            )
