"""Heartbeat-based eventually-perfect detector (an honest ◇S implementation).

Each process periodically broadcasts a heartbeat; each detector keeps a
per-peer timeout. When a peer's timeout expires it is suspected; when a
message from a suspected peer later arrives, the peer is unsuspected and
its timeout is increased (the classic Chandra–Toueg adaptive scheme).

In a partially-synchronous run (delays that are eventually bounded —
which every run with a bounded delay model is), timeouts stop growing and
eventually no correct process is suspected: the detector converges into
◇P ⊆ ◇S. With adversarial delay dilations (``TargetedSlowdown``) it
exhibits genuine wrongful suspicions, which is what E9 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detectors.base import FailureDetector
from repro.messages.base import Message


@dataclass(frozen=True, slots=True)
class Heartbeat(Message):
    """Detector-internal liveness beacon; invisible to protocol modules."""


class HeartbeatDetector(FailureDetector):
    """Adaptive-timeout failure detector fed by heartbeats *and* protocol
    messages (any traffic from a peer proves it is not crashed).

    Args:
        period: heartbeat emission interval.
        initial_timeout: starting per-peer suspicion timeout; should
            comfortably exceed ``period`` plus the typical network delay.
        backoff: multiplicative timeout increase after each wrongful
            suspicion (must be > 1 for eventual accuracy).
    """

    def __init__(
        self,
        period: float = 1.0,
        initial_timeout: float = 4.0,
        backoff: float = 2.0,
    ) -> None:
        super().__init__()
        self._period = period
        self._initial_timeout = initial_timeout
        self._backoff = backoff
        self._timeout: dict[int, float] = {}
        self._deadline: dict[int, float] = {}
        self._wrongful_suspicions = 0

    @property
    def wrongful_suspicions(self) -> int:
        """Number of times a suspicion was later revoked by a message."""
        return self._wrongful_suspicions

    def timeout_of(self, pid: int) -> float:
        return self._timeout.get(pid, self._initial_timeout)

    def start(self) -> None:
        for pid in range(self.env.n):
            if pid != self.env.pid:
                self._timeout[pid] = self._initial_timeout
                self._arm(pid)
        self._beat()

    # -- heartbeat emission ----------------------------------------------------

    def _beat(self) -> None:
        if self.env.crashed or self._stopped:
            return
        beat = Heartbeat(sender=self.env.pid)
        for dst in range(self.env.n):
            if dst != self.env.pid:
                self.env.send(dst, beat)
        self.env.scheduler.schedule_after(self._period, "heartbeat", self._beat)

    # -- inputs ---------------------------------------------------------------

    def filter_message(self, src: int, payload: object) -> bool:
        if isinstance(payload, Heartbeat):
            self._alive(src)
            return True
        return False

    def on_protocol_message(self, src: int) -> None:
        self._alive(src)

    def _alive(self, src: int) -> None:
        if src == self.env.pid or self._stopped:
            return
        if src in self._suspected:
            self._wrongful_suspicions += 1
            self._timeout[src] = self.timeout_of(src) * self._backoff
            self._unsuspect(src)
        self._arm(src)

    # -- timeout machinery -------------------------------------------------------

    def _arm(self, pid: int) -> None:
        deadline = self.env.now + self.timeout_of(pid)
        self._deadline[pid] = deadline
        self.env.scheduler.schedule_after(
            self.timeout_of(pid), "fd-timeout", lambda: self._expire(pid, deadline)
        )

    def _expire(self, pid: int, deadline: float) -> None:
        if self.env.crashed or self._stopped:
            return
        # Stale timer: the peer spoke since this timer was armed.
        if self._deadline.get(pid) != deadline:
            return
        self._suspect(pid)
