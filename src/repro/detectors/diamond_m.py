"""Muteness failure detector — class ◇M_A (Doudou et al. [6]).

In an arbitrary-fault setting, the crash detector's notion of "quiet"
is protocol-relative: a process is *mute to p with respect to algorithm A*
if it eventually stops sending A's protocol messages to p, whether or not
it crashed (it may keep chattering garbage — muteness only counts the
protocol messages A expects). The paper's methodology requires a detector
of class ◇M, whose specification mirrors ◇S:

* **Mute A-completeness** — eventually every process mute to a correct
  ``p`` is permanently suspected by ``p``;
* **Eventual weak A-accuracy** — eventually some correct process is never
  suspected by any correct process.

This implementation follows the timeout scheme discussed in [6] for
*regular round-based algorithms*: each peer has a timeout that is re-armed
whenever one of A's protocol messages from that peer passes the upstream
modules; on expiry the peer is suspected; if the peer speaks again it is
unsuspected and its timeout doubles, so wrongful suspicions of slow-but-
correct processes die out once the run's delays stabilise.

Only *protocol* messages re-arm the timeout — the host feeds the detector
through :meth:`on_protocol_message` strictly after the signature and
syntax checks, so garbage traffic does not let a mute-but-babbling process
escape suspicion.
"""

from __future__ import annotations

from repro.detectors.base import FailureDetector
from repro.observability.registry import MODULE_MUTENESS


class MutenessDetector(FailureDetector):
    """Timeout-based ◇M_A detector for regular round-based protocols."""

    def __init__(self, initial_timeout: float = 8.0, backoff: float = 2.0) -> None:
        super().__init__()
        self._initial_timeout = initial_timeout
        self._backoff = backoff
        self._timeout: dict[int, float] = {}
        self._deadline: dict[int, float] = {}
        self._wrongful_suspicions = 0

    @property
    def wrongful_suspicions(self) -> int:
        return self._wrongful_suspicions

    def timeout_of(self, pid: int) -> float:
        return self._timeout.get(pid, self._initial_timeout)

    def start(self) -> None:
        for pid in range(self.env.n):
            if pid != self.env.pid:
                self._timeout[pid] = self._initial_timeout
                self._arm(pid)

    def on_protocol_message(self, src: int) -> None:
        """Re-arm ``src``'s muteness timeout: it just sent a valid protocol
        message, so it is not mute *now*."""
        if src == self.env.pid or self._stopped:
            return
        self._observe_arrival(src)
        if src in self._suspected:
            self._wrongful_suspicions += 1
            self.env.metrics.inc(
                MODULE_MUTENESS, "wrongful_suspicions", pid=self.env.pid
            )
            self._punish(src)
            self._unsuspect(src)
        self._arm(src)

    # -- subclass hooks -------------------------------------------------------

    def _observe_arrival(self, src: int) -> None:
        """A protocol message from ``src`` arrived (before suspicion
        bookkeeping); adaptive variants feed their estimators here."""

    def _punish(self, src: int) -> None:
        """``src`` was wrongfully suspected: grow its timeout so the
        wrongful suspicion does not repeat (eventual weak A-accuracy)."""
        self._timeout[src] = self.timeout_of(src) * self._backoff

    def _arm(self, pid: int) -> None:
        deadline = self.env.now + self.timeout_of(pid)
        self._deadline[pid] = deadline
        self.env.metrics.inc(
            MODULE_MUTENESS, "timeouts_armed", pid=self.env.pid
        )
        self.env.scheduler.schedule_after(
            self.timeout_of(pid),
            "muteness-timeout",
            lambda: self._expire(pid, deadline),
        )

    def _expire(self, pid: int, deadline: float) -> None:
        if self.env.crashed or self._stopped:
            return
        if self._deadline.get(pid) != deadline:
            return
        self._suspect(pid)


class RoundAwareMutenessDetector(MutenessDetector):
    """◇M whose patience grows with the protocol's round number.

    The second implementation strategy discussed in [6] for regular
    round-based algorithms: instead of (only) backing off after wrongful
    suspicions, the timeout is scaled by the current round index the host
    protocol reports via :meth:`notify_round` — later rounds mean the run
    is already degraded, so suspicion should be slower to trigger and the
    system gets calmer instead of churning.

    The effective timeout for a peer is::

        timeout(peer) * round_growth ** (round - 1)

    on top of the inherited wrongful-suspicion doubling.
    """

    def __init__(
        self,
        initial_timeout: float = 8.0,
        backoff: float = 2.0,
        round_growth: float = 1.5,
    ) -> None:
        super().__init__(initial_timeout=initial_timeout, backoff=backoff)
        self._round_growth = round_growth
        self._round = 1

    @property
    def current_round(self) -> int:
        return self._round

    def notify_round(self, round_number: int) -> None:
        """Host protocol hook: a new round started."""
        if round_number > self._round:
            self._round = round_number

    def timeout_of(self, pid: int) -> float:
        base = super().timeout_of(pid)
        return base * self._round_growth ** (self._round - 1)


class AdaptiveMutenessDetector(MutenessDetector):
    """◇M whose timeout tracks each peer's observed message cadence.

    A hand-tuned ``initial_timeout`` is brittle on a real network: lossy
    links stretch the effective inter-arrival time of protocol messages
    (a dropped message is recovered only after the transport's RTO), so a
    fixed timeout either suspects everyone under loss or waits far too
    long on healthy links. This variant derives the timeout from the
    traffic itself, Jacobson-style (the RFC-6298 RTO estimator, applied
    to protocol-message inter-arrival gaps rather than RTT samples)::

        srtt   <- (1 - alpha) * srtt + alpha * sample        (alpha = 1/8)
        rttvar <- (1 - beta) * rttvar + beta * |srtt - sample|  (beta = 1/4)
        timeout = clamp(safety * (srtt + 4 * rttvar),
                        min_timeout, max_timeout) * penalty

    ``penalty`` starts at 1 and is multiplied by ``backoff`` on each
    wrongful suspicion of that peer — the ◇M accuracy mechanism — and
    optionally decays back toward 1 (``penalty_decay < 1``) while the
    peer keeps talking, so one early mistake is not punished forever.
    Until a peer has produced a first inter-arrival sample its timeout is
    the inherited ``initial_timeout`` (times any penalty).
    """

    def __init__(
        self,
        initial_timeout: float = 8.0,
        backoff: float = 2.0,
        safety: float = 3.0,
        min_timeout: float = 2.0,
        max_timeout: float = 120.0,
        alpha: float = 0.125,
        beta: float = 0.25,
        penalty_decay: float = 1.0,
    ) -> None:
        super().__init__(initial_timeout=initial_timeout, backoff=backoff)
        if safety <= 0 or min_timeout <= 0 or max_timeout < min_timeout:
            raise ValueError(
                "adaptive ◇M needs safety > 0 and 0 < min_timeout <= "
                f"max_timeout; got safety={safety!r}, "
                f"min_timeout={min_timeout!r}, max_timeout={max_timeout!r}"
            )
        if not (0.0 < alpha <= 1.0 and 0.0 < beta <= 1.0):
            raise ValueError(f"alpha/beta must be in (0, 1]; got {alpha!r}/{beta!r}")
        if not (0.0 < penalty_decay <= 1.0):
            raise ValueError(f"penalty_decay must be in (0, 1]; got {penalty_decay!r}")
        self._safety = safety
        self._min_timeout = min_timeout
        self._max_timeout = max_timeout
        self._alpha = alpha
        self._beta = beta
        self._penalty_decay = penalty_decay
        self._srtt: dict[int, float] = {}
        self._rttvar: dict[int, float] = {}
        self._last_arrival: dict[int, float] = {}
        self._penalty: dict[int, float] = {}

    def estimate_of(self, pid: int) -> float | None:
        """The smoothed inter-arrival estimate for ``pid`` (None before
        the first sample)."""
        return self._srtt.get(pid)

    def penalty_of(self, pid: int) -> float:
        return self._penalty.get(pid, 1.0)

    def timeout_of(self, pid: int) -> float:
        penalty = self._penalty.get(pid, 1.0)
        srtt = self._srtt.get(pid)
        if srtt is None:
            return self._initial_timeout * penalty
        raw = self._safety * (srtt + 4.0 * self._rttvar.get(pid, 0.0))
        return min(max(raw, self._min_timeout), self._max_timeout) * penalty

    def _observe_arrival(self, src: int) -> None:
        now = self.env.now
        last = self._last_arrival.get(src)
        self._last_arrival[src] = now
        if last is None:
            return
        sample = now - last
        self.env.metrics.observe(
            MODULE_MUTENESS, "interarrival", sample, pid=self.env.pid
        )
        srtt = self._srtt.get(src)
        if srtt is None:
            self._srtt[src] = sample
            self._rttvar[src] = sample / 2.0
        else:
            self._rttvar[src] = (1.0 - self._beta) * self._rttvar[
                src
            ] + self._beta * abs(srtt - sample)
            self._srtt[src] = (1.0 - self._alpha) * srtt + self._alpha * sample
        if src not in self._suspected and self._penalty_decay < 1.0:
            penalty = self._penalty.get(src, 1.0)
            if penalty > 1.0:
                self._penalty[src] = max(1.0, penalty * self._penalty_decay)

    def _punish(self, src: int) -> None:
        self._penalty[src] = self._penalty.get(src, 1.0) * self._backoff
