"""Muteness failure detector — class ◇M_A (Doudou et al. [6]).

In an arbitrary-fault setting, the crash detector's notion of "quiet"
is protocol-relative: a process is *mute to p with respect to algorithm A*
if it eventually stops sending A's protocol messages to p, whether or not
it crashed (it may keep chattering garbage — muteness only counts the
protocol messages A expects). The paper's methodology requires a detector
of class ◇M, whose specification mirrors ◇S:

* **Mute A-completeness** — eventually every process mute to a correct
  ``p`` is permanently suspected by ``p``;
* **Eventual weak A-accuracy** — eventually some correct process is never
  suspected by any correct process.

This implementation follows the timeout scheme discussed in [6] for
*regular round-based algorithms*: each peer has a timeout that is re-armed
whenever one of A's protocol messages from that peer passes the upstream
modules; on expiry the peer is suspected; if the peer speaks again it is
unsuspected and its timeout doubles, so wrongful suspicions of slow-but-
correct processes die out once the run's delays stabilise.

Only *protocol* messages re-arm the timeout — the host feeds the detector
through :meth:`on_protocol_message` strictly after the signature and
syntax checks, so garbage traffic does not let a mute-but-babbling process
escape suspicion.
"""

from __future__ import annotations

from repro.detectors.base import FailureDetector
from repro.observability.registry import MODULE_MUTENESS


class MutenessDetector(FailureDetector):
    """Timeout-based ◇M_A detector for regular round-based protocols."""

    def __init__(self, initial_timeout: float = 8.0, backoff: float = 2.0) -> None:
        super().__init__()
        self._initial_timeout = initial_timeout
        self._backoff = backoff
        self._timeout: dict[int, float] = {}
        self._deadline: dict[int, float] = {}
        self._wrongful_suspicions = 0

    @property
    def wrongful_suspicions(self) -> int:
        return self._wrongful_suspicions

    def timeout_of(self, pid: int) -> float:
        return self._timeout.get(pid, self._initial_timeout)

    def start(self) -> None:
        for pid in range(self.env.n):
            if pid != self.env.pid:
                self._timeout[pid] = self._initial_timeout
                self._arm(pid)

    def on_protocol_message(self, src: int) -> None:
        """Re-arm ``src``'s muteness timeout: it just sent a valid protocol
        message, so it is not mute *now*."""
        if src == self.env.pid or self._stopped:
            return
        if src in self._suspected:
            self._wrongful_suspicions += 1
            self.env.metrics.inc(
                MODULE_MUTENESS, "wrongful_suspicions", pid=self.env.pid
            )
            self._timeout[src] = self.timeout_of(src) * self._backoff
            self._unsuspect(src)
        self._arm(src)

    def _arm(self, pid: int) -> None:
        deadline = self.env.now + self.timeout_of(pid)
        self._deadline[pid] = deadline
        self.env.metrics.inc(
            MODULE_MUTENESS, "timeouts_armed", pid=self.env.pid
        )
        self.env.scheduler.schedule_after(
            self.timeout_of(pid),
            "muteness-timeout",
            lambda: self._expire(pid, deadline),
        )

    def _expire(self, pid: int, deadline: float) -> None:
        if self.env.crashed or self._stopped:
            return
        if self._deadline.get(pid) != deadline:
            return
        self._suspect(pid)


class RoundAwareMutenessDetector(MutenessDetector):
    """◇M whose patience grows with the protocol's round number.

    The second implementation strategy discussed in [6] for regular
    round-based algorithms: instead of (only) backing off after wrongful
    suspicions, the timeout is scaled by the current round index the host
    protocol reports via :meth:`notify_round` — later rounds mean the run
    is already degraded, so suspicion should be slower to trigger and the
    system gets calmer instead of churning.

    The effective timeout for a peer is::

        timeout(peer) * round_growth ** (round - 1)

    on top of the inherited wrongful-suspicion doubling.
    """

    def __init__(
        self,
        initial_timeout: float = 8.0,
        backoff: float = 2.0,
        round_growth: float = 1.5,
    ) -> None:
        super().__init__(initial_timeout=initial_timeout, backoff=backoff)
        self._round_growth = round_growth
        self._round = 1

    @property
    def current_round(self) -> int:
        return self._round

    def notify_round(self, round_number: int) -> None:
        """Host protocol hook: a new round started."""
        if round_number > self._round:
            self._round = round_number

    def timeout_of(self, pid: int) -> float:
        base = super().timeout_of(pid)
        return base * self._round_growth ** (self._round - 1)
