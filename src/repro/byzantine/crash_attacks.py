"""Arbitrary-fault behaviours against the *crash-model* protocol.

These processes run inside a Hurfin–Raynal (Figure 2) system, where no
signature, certificate or behaviour monitoring exists. Experiment E2 uses
them to demonstrate the paper's motivation: "a malicious process can
exhibit failures more subtle than crashes and these failures can lead to
the violation of the correctness criteria of the algorithm".

Each attacker subclasses the honest process, so it follows the protocol
except for its specific deviation — the paper's model of a faulty process
(a process is faulty as soon as it makes *one* fault w.r.t. one process).
"""

from __future__ import annotations

from typing import Any

from repro.byzantine.faults import DetectingModule, FailureClass, FaultProfile
from repro.consensus.hurfin_raynal import HurfinRaynalProcess
from repro.messages.consensus import Current, Decide, Next

#: Value injected by value-corrupting behaviours; never a real proposal,
#: so any decision on it is a Validity violation by construction.
POISON = "<poison>"


class CrashSpuriousDecideAttacker(HurfinRaynalProcess):
    """Broadcasts a fabricated DECIDE at startup.

    In the crash model DECIDE messages are trusted and relayed blindly
    (Figure 2 line 2), so every correct process decides the poison value:
    a Validity violation, and an Agreement violation whenever some
    process decided the legitimate value first.
    """

    profile = FaultProfile(
        name="spurious-decide",
        failure_class=FailureClass.SPURIOUS_MESSAGE,
        detecting_module=DetectingModule.CERTIFICATION,
        description="fabricated DECIDE without any supporting votes",
    )

    def start_protocol(self) -> None:
        self.broadcast(Decide(sender=self.pid, est=POISON))
        super().start_protocol()


class CrashValueCorruptingAttacker(HurfinRaynalProcess):
    """Corrupts the estimate in every CURRENT vote it sends.

    Realises the "corruption of a variable value" manifestation: when it
    coordinates a round it imposes the poison value; when it relays, it
    relays poison instead of the adopted estimate.
    """

    profile = FaultProfile(
        name="value-corruption",
        failure_class=FailureClass.VALUE_CORRUPTION,
        detecting_module=DetectingModule.CERTIFICATION,
        description="CURRENT votes carry a corrupted estimate",
    )

    def broadcast(self, payload: Any) -> None:
        if isinstance(payload, Current):
            payload = payload.replace(est=POISON)
        super().broadcast(payload)


class CrashEquivocatingAttacker(HurfinRaynalProcess):
    """Sends different estimates to different receivers (two-faced votes).

    When coordinating, half the processes are told ``v``, the other half
    ``POISON``; vote counting in Figure 2 ignores vote *values*
    (``nb_current`` counts messages), so both camps can assemble a
    majority view and decide differently — an Agreement violation.
    """

    profile = FaultProfile(
        name="equivocation",
        failure_class=FailureClass.VALUE_CORRUPTION,
        detecting_module=DetectingModule.NON_MUTENESS_DETECTOR,
        description="different CURRENT values sent to different receivers",
    )

    def broadcast(self, payload: Any) -> None:
        if isinstance(payload, Current):
            for dst in range(self.n):
                branch = payload if dst % 2 == 0 else payload.replace(est=POISON)
                self.send(dst, branch)
            return
        super().broadcast(payload)


class CrashDuplicatingAttacker(HurfinRaynalProcess):
    """Sends every vote twice (duplication of a send statement).

    Inflates the receivers' ``nb_current`` / ``nb_next`` counters, so a
    "majority" can be assembled from fewer than a majority of processes —
    corrupting both safety and round progression.
    """

    profile = FaultProfile(
        name="duplication",
        failure_class=FailureClass.DUPLICATION,
        detecting_module=DetectingModule.NON_MUTENESS_DETECTOR,
        description="every CURRENT/NEXT vote is sent twice",
    )

    def broadcast(self, payload: Any) -> None:
        super().broadcast(payload)
        if isinstance(payload, (Current, Next)):
            super().broadcast(payload)


class CrashIdentityForgingAttacker(HurfinRaynalProcess):
    """Injects votes under other processes' identities.

    Without signatures the identity field of a message is taken at face
    value, so the attacker mints a full set of CURRENT votes "from"
    everyone, letting any receiver assemble an instant majority for the
    poison value.
    """

    profile = FaultProfile(
        name="identity-forgery",
        failure_class=FailureClass.IDENTITY_FALSIFICATION,
        detecting_module=DetectingModule.SIGNATURE,
        description="votes injected under every other process's identity",
    )

    def start_protocol(self) -> None:
        super().start_protocol()
        for forged in range(self.n):
            if forged != self.pid:
                self.broadcast(Current(sender=forged, round=1, est=POISON))


class CrashWrongRoundAttacker(HurfinRaynalProcess):
    """Votes carry displaced round numbers (out-of-order messages).

    Future-round votes poison the receivers' buffers: when round ``r+k``
    eventually starts, phantom votes are already counted.
    """

    profile = FaultProfile(
        name="wrong-round",
        failure_class=FailureClass.SPURIOUS_MESSAGE,
        detecting_module=DetectingModule.NON_MUTENESS_DETECTOR,
        description="votes sent with future round numbers",
    )

    ROUND_SHIFT = 3

    def broadcast(self, payload: Any) -> None:
        if isinstance(payload, Current):
            payload = payload.replace(round=payload.round + self.ROUND_SHIFT)
        elif isinstance(payload, Next):
            payload = payload.replace(round=payload.round + self.ROUND_SHIFT)
        super().broadcast(payload)


class CrashMuteAttacker(HurfinRaynalProcess):
    """Participates in nothing: permanent omission from the start.

    Indistinguishable from a crash for the other processes — the case the
    crash protocol *does* tolerate (it only costs liveness margin).
    """

    profile = FaultProfile(
        name="mute",
        failure_class=FailureClass.MUTENESS,
        detecting_module=DetectingModule.MUTENESS_DETECTOR,
        description="never sends any message",
        visible_in_messages=False,
    )

    def broadcast(self, payload: Any) -> None:
        del payload  # silent

    def send(self, dst: int, payload: Any) -> None:
        del dst, payload  # silent
