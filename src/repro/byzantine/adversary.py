"""Attack catalogues and adversary helpers.

Maps attack names to process factories with the signatures the system
builders expect, so experiments can be written as::

    build_transformed_system(proposals, byzantine=transformed_attack(0, "corrupt-vector"))
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.byzantine import crash_attacks, transformed_attacks
from repro.byzantine.faults import FaultProfile
from repro.consensus.base import ConsensusProcess
from repro.errors import ConfigurationError

#: name -> crash-model attacker class (Figure 2 victims, experiment E2).
CRASH_ATTACKS: dict[str, type] = {
    cls.profile.name: cls
    for cls in (
        crash_attacks.CrashSpuriousDecideAttacker,
        crash_attacks.CrashValueCorruptingAttacker,
        crash_attacks.CrashEquivocatingAttacker,
        crash_attacks.CrashDuplicatingAttacker,
        crash_attacks.CrashIdentityForgingAttacker,
        crash_attacks.CrashWrongRoundAttacker,
        crash_attacks.CrashMuteAttacker,
    )
}

#: name -> transformed-protocol attacker class (experiments E3/E4/E8).
TRANSFORMED_ATTACKS: dict[str, type] = {
    cls.profile.name: cls
    for cls in (
        transformed_attacks.TMuteAttacker,
        transformed_attacks.TCorruptVectorAttacker,
        transformed_attacks.TFalsifiedEntryAttacker,
        transformed_attacks.TForgedDecideAttacker,
        transformed_attacks.TPrematureDecideAttacker,
        transformed_attacks.TDuplicateCurrentAttacker,
        transformed_attacks.TWrongRoundAttacker,
        transformed_attacks.TBadSignatureAttacker,
        transformed_attacks.TImpersonationAttacker,
        transformed_attacks.TEquivocatingInitAttacker,
        transformed_attacks.TEquivocatingCurrentAttacker,
        transformed_attacks.TUnsignedAttacker,
        transformed_attacks.TWrongCertCurrentAttacker,
    )
}


def crash_attack_profile(name: str) -> FaultProfile:
    return _lookup(CRASH_ATTACKS, name).profile


def transformed_attack_profile(name: str) -> FaultProfile:
    return _lookup(TRANSFORMED_ATTACKS, name).profile


def crash_attack(pid: int, name: str) -> Mapping[int, Any]:
    """A ``byzantine=`` mapping installing one crash-model attacker."""
    cls = _lookup(CRASH_ATTACKS, name)

    def factory(
        _pid: int, proposal: Any, detector: Any
    ) -> ConsensusProcess:
        return cls(proposal, detector)

    return {pid: factory}


def transformed_attack(pid: int, name: str) -> Mapping[int, Any]:
    """A ``byzantine=`` mapping installing one transformed-model attacker."""
    cls = _lookup(TRANSFORMED_ATTACKS, name)

    def factory(
        _pid: int,
        proposal: Any,
        params: Any,
        authority: Any,
        detector: Any,
        config: Any,
    ) -> ConsensusProcess:
        return cls(
            proposal=proposal,
            params=params,
            authority=authority,
            detector=detector,
            config=config,
        )

    return {pid: factory}


def transformed_attacks_at(assignment: Mapping[int, str]) -> dict[int, Any]:
    """Multiple attackers: pid -> attack name."""
    combined: dict[int, Any] = {}
    for pid, name in assignment.items():
        combined.update(transformed_attack(pid, name))
    return combined


def _lookup(catalog: Mapping[str, type], name: str) -> type:
    try:
        return catalog[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown attack {name!r}; known: {sorted(catalog)}"
        ) from None
