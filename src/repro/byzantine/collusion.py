"""Colluding adversaries: multiple Byzantine processes with a shared brain.

The single-attacker gallery models independent faults; a real adversary
corrupts ``F`` processes and coordinates them. This module provides the
strongest coordinated attack available against the transformed protocol
— **amplified equivocation** — for systems with F >= 2:

* the *leader* (holding the round-1 coordinator seat) over-collects
  INITs and proposes two different certified vectors, branch X to one
  half of the system and branch Y to the other;
* the *amplifier* relays whichever branch its target saw *least*,
  keeping both branches alive as long as possible and equivocating its
  own relay in the process.

The quorum arithmetic defeats the attack (two same-vector quorums of
``n - F`` would need ``2(n - F) - F > n - F`` correct processes relaying
both branches, and a correct process relays once), which is exactly what
the collusion tests pin down: safety holds *and* both colluders end in
the correct processes' ``faulty`` sets.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.consensus.transformed import TransformedConsensusProcess
from repro.core.certificates import Certificate, EMPTY_CERTIFICATE, SignedMessage
from repro.messages.consensus import Init, NULL, VCurrent


class SharedBrain:
    """Out-of-band adversary state shared by the colluders.

    Simulated Byzantine processes may coordinate instantaneously — the
    adversary is one entity — so the brain is a plain shared object, not
    a network participant.
    """

    def __init__(self) -> None:
        self.branches: list[SignedMessage] = []  # the leader's two CURRENTs

    @property
    def ready(self) -> bool:
        return len(self.branches) == 2


class CollusionLeader(TransformedConsensusProcess):
    """Seat 0: equivocates two certified vectors and shares them."""

    def __init__(self, brain: SharedBrain, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.brain = brain
        self._all_inits: dict[int, SignedMessage] = {}
        self._fired = False

    def _on_init(self, message: SignedMessage) -> None:
        if self._fired:
            return
        self._all_inits[message.body.sender] = message
        if len(self._all_inits) <= self._quorum():
            return
        self._fired = True
        self.phase = "rounds"
        self.round = 1
        self.sent_current = True
        senders = sorted(self._all_inits)
        for subset in (senders[: self._quorum()], senders[-self._quorum():]):
            values = [NULL] * self.n
            for pid in subset:
                init = self._all_inits[pid]
                assert isinstance(init.body, Init)
                values[pid] = init.body.value
            cert = Certificate(tuple(self._all_inits[pid] for pid in subset))
            body = VCurrent(sender=self.pid, round=1, est_vect=tuple(values))
            self.brain.branches.append(self.authority.make(body, cert))
        branch_x, branch_y = self.brain.branches
        for dst in range(self.n):
            self.send(dst, branch_x if dst % 2 == 0 else branch_y)
        self.est_vect = branch_x.body.est_vect  # type: ignore[union-attr]
        self.est_cert = branch_x.full_cert()
        self.next_cert = EMPTY_CERTIFICATE
        self.current_cert = EMPTY_CERTIFICATE


class CollusionAmplifier(TransformedConsensusProcess):
    """Last seat: relays the branch each target did *not* get directly,
    equivocating its own relay."""

    def __init__(self, brain: SharedBrain, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.brain = brain
        self._amplified = False

    def _on_current(self, message: SignedMessage) -> None:
        if not self._amplified and self.brain.ready and self.phase == "rounds":
            self._amplified = True
            branch_x, branch_y = self.brain.branches
            for dst in range(self.n):
                # The leader sent X to even pids; amplify Y there (and
                # vice versa), relayed under our own signature.
                inner = branch_y if dst % 2 == 0 else branch_x
                assert isinstance(inner.body, VCurrent)
                relay = self.authority.make(
                    VCurrent(
                        sender=self.pid, round=1, est_vect=inner.body.est_vect
                    ),
                    Certificate((inner,)),
                )
                self.send(dst, relay)
            self.sent_current = True
            return
        super()._on_current(message)


def make_colluding_equivocators(n: int) -> Mapping[int, Any]:
    """A ``byzantine=`` mapping installing the colluding pair.

    Seats 0 (round-1 coordinator; the leader) and ``n - 1`` (the
    amplifier). Requires a deployment tolerating F >= 2 (e.g. n = 7).
    """
    brain = SharedBrain()

    def leader(_pid, proposal, params, authority, detector, config):
        return CollusionLeader(
            brain=brain,
            proposal=proposal,
            params=params,
            authority=authority,
            detector=detector,
            config=config,
        )

    def amplifier(_pid, proposal, params, authority, detector, config):
        return CollusionAmplifier(
            brain=brain,
            proposal=proposal,
            params=params,
            authority=authority,
            detector=detector,
            config=config,
        )

    return {0: leader, n - 1: amplifier}
