"""Arbitrary-fault behaviours against the *transformed* protocol.

The same attack intents as :mod:`repro.byzantine.crash_attacks`, now
launched against the five-module processes of Figure 3. Experiments E3
and E4 run this gallery to show that (a) the correct processes keep
Agreement / Termination / Vector Validity, and (b) each manifested fault
is detected by the module the methodology assigns to it.

Attackers hold only their own signing capability, so every forgery
attempt is a *real* attempt against the unforgeable-signature assumption
and fails verification at the receivers.
"""

from __future__ import annotations

from typing import Any

from repro.byzantine.faults import DetectingModule, FailureClass, FaultProfile
from repro.consensus.transformed import TransformedConsensusProcess
from repro.core.certificates import Certificate, EMPTY_CERTIFICATE, SignedMessage
from repro.messages.base import Message
from repro.messages.consensus import Init, NULL, VCurrent, VDecide, VNext

POISON = "<poison>"


def _poison_vector(n: int) -> tuple[Any, ...]:
    """A fabricated full vector no honest INIT set can witness."""
    return tuple(f"{POISON}{k}" for k in range(n))


class TMuteAttacker(TransformedConsensusProcess):
    """Sends its INIT then falls permanently silent.

    Pure muteness: invisible to the non-muteness machinery by definition,
    caught only by the ◇M module. Costs rounds when it holds the
    coordinator slot, never safety.
    """

    profile = FaultProfile(
        name="mute",
        failure_class=FailureClass.MUTENESS,
        detecting_module=DetectingModule.MUTENESS_DETECTOR,
        description="silent after its INIT; mute coordinator stalls a round",
        visible_in_messages=False,
    )

    def _broadcast_signed(self, body: Message, cert: Certificate) -> SignedMessage:
        message = self.authority.make(body, cert)
        if isinstance(body, Init):
            self.broadcast(message)  # keep the INIT so the phase completes
        return message


class TCorruptVectorAttacker(TransformedConsensusProcess):
    """Corrupts ``est_vect`` in every CURRENT it sends, keeping the
    honest certificate.

    The receivers' certificate analyser finds the vector inconsistent
    with its witnessing ``est_cert`` — the canonical value-corruption
    detection of Section 5.1.
    """

    profile = FaultProfile(
        name="corrupt-vector",
        failure_class=FailureClass.VALUE_CORRUPTION,
        detecting_module=DetectingModule.CERTIFICATION,
        description="CURRENT vector disagrees with its own certificate",
    )

    def _broadcast_signed(self, body: Message, cert: Certificate) -> SignedMessage:
        if isinstance(body, VCurrent):
            body = body.replace(est_vect=_poison_vector(self.n))
        return super()._broadcast_signed(body, cert)


class TFalsifiedEntryAttacker(TransformedConsensusProcess):
    """Falsifies one correct process's entry inside its vector.

    The paper's motivating check for Vector Validity: "if a process
    falsifies an entry from a process, it will be detected as faulty by
    correct processes" — the signed INIT in the certificate contradicts
    the altered entry.
    """

    profile = FaultProfile(
        name="falsified-entry",
        failure_class=FailureClass.VALUE_CORRUPTION,
        detecting_module=DetectingModule.CERTIFICATION,
        description="one entry of the vector contradicts its signed INIT",
    )

    def _broadcast_signed(self, body: Message, cert: Certificate) -> SignedMessage:
        if isinstance(body, VCurrent):
            victim = next(
                (
                    k
                    for k, value in enumerate(body.est_vect)
                    if k != self.pid and value != NULL
                ),
                None,
            )
            if victim is not None:
                vector = list(body.est_vect)
                vector[victim] = POISON
                body = body.replace(est_vect=tuple(vector))
        return super()._broadcast_signed(body, cert)


class TForgedDecideAttacker(TransformedConsensusProcess):
    """Broadcasts a DECIDE for a fabricated vector with an empty
    certificate (a spurious message).

    In the crash model this attack ends the game instantly; here the
    DECIDE predicate finds no CURRENT quorum and the receivers declare
    the attacker faulty.
    """

    profile = FaultProfile(
        name="forged-decide",
        failure_class=FailureClass.SPURIOUS_MESSAGE,
        detecting_module=DetectingModule.CERTIFICATION,
        description="DECIDE with no supporting CURRENT quorum",
    )

    def start_protocol(self) -> None:
        self._broadcast_signed(
            VDecide(sender=self.pid, est_vect=_poison_vector(self.n)),
            EMPTY_CERTIFICATE,
        )
        super().start_protocol()


class TPrematureDecideAttacker(TransformedConsensusProcess):
    """Decides (and announces) after a single CURRENT instead of ``n-F``.

    A misevaluation of the decision condition (line 20): the attached
    ``current_cert`` is genuine but too small, which the receivers'
    DECIDE predicate counts and rejects.
    """

    profile = FaultProfile(
        name="premature-decide",
        failure_class=FailureClass.MISEVALUATION,
        detecting_module=DetectingModule.CERTIFICATION,
        description="DECIDE sent with a sub-quorum current_cert",
    )

    def _on_current(self, message: SignedMessage) -> None:
        super()._on_current(message)
        if not self.decided and len(self.current_cert) == 1:
            self._broadcast_signed(
                VDecide(sender=self.pid, est_vect=self.est_vect),
                self.current_cert.union(self.est_cert),
            )
            self.decide_value(self.est_vect, round_number=self.round)


class TDuplicateCurrentAttacker(TransformedConsensusProcess):
    """Sends its CURRENT twice in the same round (duplicated statement).

    The second copy finds the peer automaton in q1, where no CURRENT is
    enabled — an out-of-order message.
    """

    profile = FaultProfile(
        name="duplicate-current",
        failure_class=FailureClass.DUPLICATION,
        detecting_module=DetectingModule.NON_MUTENESS_DETECTOR,
        description="the same CURRENT broadcast twice in one round",
    )

    def _broadcast_signed(self, body: Message, cert: Certificate) -> SignedMessage:
        message = super()._broadcast_signed(body, cert)
        if isinstance(body, VCurrent):
            self.broadcast(message)
        return message


class TWrongRoundAttacker(TransformedConsensusProcess):
    """Sends NEXT votes for a round it cannot be in (skipped rounds).

    The peer automata track each peer's round from its own FIFO stream;
    a vote jumping rounds without the intervening NEXTs is out-of-order.
    """

    profile = FaultProfile(
        name="wrong-round",
        failure_class=FailureClass.SPURIOUS_MESSAGE,
        detecting_module=DetectingModule.NON_MUTENESS_DETECTOR,
        description="NEXT vote for a far-future round",
    )

    ROUND_SHIFT = 3

    def _begin_round(self, round_number: int) -> None:
        super()._begin_round(round_number)
        if round_number == 1 and not self.decided:
            # A vote for a round the sender cannot have reached: the
            # receivers' automata track its stream at round 1.
            self._broadcast_signed(
                VNext(sender=self.pid, round=1 + self.ROUND_SHIFT),
                self.next_cert,
            )

    def _broadcast_signed(self, body: Message, cert: Certificate) -> SignedMessage:
        if isinstance(body, VNext) and body.round <= self.round:
            body = body.replace(round=body.round + self.ROUND_SHIFT)
        return super()._broadcast_signed(body, cert)


class TBadSignatureAttacker(TransformedConsensusProcess):
    """Broadcasts messages whose signature bytes are forged garbage.

    Exercises the unforgeability assumption: the signature module
    discards every such message and declares the channel's sender faulty.
    """

    profile = FaultProfile(
        name="bad-signature",
        failure_class=FailureClass.IDENTITY_FALSIFICATION,
        detecting_module=DetectingModule.SIGNATURE,
        description="messages carry forged (invalid) signatures",
    )

    def _broadcast_signed(self, body: Message, cert: Certificate) -> SignedMessage:
        draft = SignedMessage(
            body=body,
            cert=cert,
            signature=self.authority.scheme.forge(self.pid, None),
        )
        forged = SignedMessage(
            body=body,
            cert=cert,
            signature=self.authority.scheme.forge(
                self.pid, draft.signed_payload()
            ),
        )
        self.broadcast(forged)
        return forged


class TImpersonationAttacker(TransformedConsensusProcess):
    """Sends an INIT claiming another process's identity, signed with its
    own key (it has no other).

    The signature module sees an identity field inconsistent with both
    the signature and the arrival channel, discards the message and adds
    the channel's sender to ``faulty``.
    """

    profile = FaultProfile(
        name="impersonation",
        failure_class=FailureClass.IDENTITY_FALSIFICATION,
        detecting_module=DetectingModule.SIGNATURE,
        description="messages claim another process's identity",
    )

    def start_protocol(self) -> None:
        # Target a process that is neither ourselves nor the round-1
        # coordinator: the coordinator's own slot is immune (it holds its
        # own value), so poisoning it would demonstrate nothing.
        victim = next(
            pid for pid in range(1, self.n) if pid not in (self.pid, 0)
        )
        body = Init(sender=victim, value=POISON)
        # The attacker only holds its own capability, so the signature it
        # can produce names itself — inconsistent with the identity field.
        signature = self.authority.scheme.sign(
            self.authority.signer, (body, EMPTY_CERTIFICATE.digest().hex)
        )
        # Fake first, own INIT second: if the signature module is ablated
        # (E8) the forged identity reaches the vector builders.
        self.broadcast(
            SignedMessage(body=body, cert=EMPTY_CERTIFICATE, signature=signature)
        )
        super().start_protocol()


class TEquivocatingInitAttacker(TransformedConsensusProcess):
    """Signs two different INIT values and sends one to each half.

    Both branches verify in isolation; they meet inside the receivers'
    certificates (every CURRENT embeds an INIT set), where the
    equivocation ledger convicts the signer — the detectable core of
    Proposition 2.
    """

    profile = FaultProfile(
        name="equivocate-init",
        failure_class=FailureClass.VALUE_CORRUPTION,
        detecting_module=DetectingModule.NON_MUTENESS_DETECTOR,
        description="two different signed INIT values to different halves",
    )

    def start_protocol(self) -> None:
        branch_a = self.authority.make(
            Init(sender=self.pid, value=self.proposal), EMPTY_CERTIFICATE
        )
        branch_b = self.authority.make(
            Init(sender=self.pid, value=POISON), EMPTY_CERTIFICATE
        )
        for dst in range(self.n):
            self.send(dst, branch_a if dst % 2 == 0 else branch_b)


class TEquivocatingCurrentAttacker(TransformedConsensusProcess):
    """As coordinator, proposes two different (individually well-formed)
    vectors to the two halves of the system.

    It over-collects INITs so it can certify two distinct ``n - F``
    subsets. Relayed CURRENTs spread both branches everywhere; the
    ledger then convicts the coordinator, and the same-vector decision
    quorum keeps at most one branch decidable.
    """

    profile = FaultProfile(
        name="equivocate-current",
        failure_class=FailureClass.VALUE_CORRUPTION,
        detecting_module=DetectingModule.NON_MUTENESS_DETECTOR,
        description="two certified vectors proposed in the same round",
    )

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._all_inits: dict[int, SignedMessage] = {}
        self._equivocated = False

    def _on_init(self, message: SignedMessage) -> None:
        # Over-collect: keep every INIT so that two distinct (n - F)
        # subsets can be certified, and delay round 1 until the surplus
        # INIT needed for equivocation has arrived.
        if self._equivocated:
            return
        self._all_inits[message.body.sender] = message
        if len(self._all_inits) <= self._quorum():
            return
        if self.pid != 0:
            # Not round 1's coordinator: no equivocation slot; act as an
            # honest-but-slow process from here on.
            super()._on_init(message)
            for stashed in self._all_inits.values():
                super()._on_init(stashed)
            return
        self._equivocate_round_one()

    def _equivocate_round_one(self) -> None:
        self._equivocated = True
        self.phase = "rounds"
        self.round = 1
        self.sent_current = True
        self.sent_next = False
        senders = sorted(self._all_inits)
        subset_a = senders[: self._quorum()]
        subset_b = senders[-self._quorum():]
        branches = []
        for subset in (subset_a, subset_b):
            vector = [NULL] * self.n
            for pid in subset:
                init = self._all_inits[pid]
                assert isinstance(init.body, Init)
                vector[pid] = init.body.value
            cert = Certificate(tuple(self._all_inits[pid] for pid in subset))
            body = VCurrent(sender=self.pid, round=1, est_vect=tuple(vector))
            branches.append(self.authority.make(body, cert))
        # Adopt branch A as the local state so later rounds stay runnable.
        self.est_vect = branches[0].body.est_vect  # type: ignore[union-attr]
        self.est_cert = branches[0].full_cert()
        for dst in range(self.n):
            self.send(dst, branches[0] if dst % 2 == 0 else branches[1])
        self.next_cert = EMPTY_CERTIFICATE
        self.current_cert = EMPTY_CERTIFICATE


class TUnsignedAttacker(TransformedConsensusProcess):
    """Sends raw (unsigned) message bodies.

    The lowest-effort attack: rejected at the very first module.
    """

    profile = FaultProfile(
        name="unsigned",
        failure_class=FailureClass.SPURIOUS_MESSAGE,
        detecting_module=DetectingModule.SIGNATURE,
        description="raw protocol bodies without signature envelopes",
    )

    def start_protocol(self) -> None:
        super().start_protocol()
        self.broadcast(Init(sender=self.pid, value=POISON))


class TWrongCertCurrentAttacker(TransformedConsensusProcess):
    """As coordinator, attaches an empty certificate to its CURRENT.

    A transient omission of the certification step: the message itself is
    plausible, but its certificate cannot ground the vector, so the
    certificate analyser rejects it.
    """

    profile = FaultProfile(
        name="wrong-cert-current",
        failure_class=FailureClass.TRANSIENT_OMISSION,
        detecting_module=DetectingModule.CERTIFICATION,
        description="coordinator CURRENT with an empty certificate",
    )

    def _broadcast_signed(self, body: Message, cert: Certificate) -> SignedMessage:
        if isinstance(body, VCurrent) and body.sender == self.coordinator:
            cert = EMPTY_CERTIFICATE
        return super()._broadcast_signed(body, cert)
