"""Byzantine fault injection: the paper's failure taxonomy made executable."""

from repro.byzantine.adversary import (
    CRASH_ATTACKS,
    TRANSFORMED_ATTACKS,
    crash_attack,
    crash_attack_profile,
    transformed_attack,
    transformed_attack_profile,
    transformed_attacks_at,
)
from repro.byzantine.faults import (
    EXPECTED_DETECTOR,
    DetectingModule,
    FailureClass,
    FaultProfile,
)

__all__ = [
    "CRASH_ATTACKS",
    "DetectingModule",
    "EXPECTED_DETECTOR",
    "FailureClass",
    "FaultProfile",
    "TRANSFORMED_ATTACKS",
    "crash_attack",
    "crash_attack_profile",
    "transformed_attack",
    "transformed_attack_profile",
    "transformed_attacks_at",
]
