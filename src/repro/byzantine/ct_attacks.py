"""Arbitrary-fault behaviours against the transformed CT protocol."""

from __future__ import annotations

from typing import Any, Mapping

from repro.byzantine.faults import DetectingModule, FailureClass, FaultProfile
from repro.byzantine.transformed_attacks import POISON
from repro.consensus.certification_ct import build_justification
from repro.consensus.transformed_ct import TransformedCtProcess
from repro.core.certificates import EMPTY_CERTIFICATE, Certificate, SignedMessage
from repro.errors import ConfigurationError
from repro.messages.base import Message
from repro.messages.ct import CtDecide, CtEstimate, CtPropose


def _poison_vector(n: int) -> tuple[Any, ...]:
    return tuple(f"{POISON}{k}" for k in range(n))


class CtMuteAttacker(TransformedCtProcess):
    """Sends its INIT then falls silent (pure muteness)."""

    profile = FaultProfile(
        name="ct-mute",
        failure_class=FailureClass.MUTENESS,
        detecting_module=DetectingModule.MUTENESS_DETECTOR,
        description="silent after INIT; a mute coordinator stalls a round",
        visible_in_messages=False,
    )

    def _broadcast_signed(self, body: Message, cert: Certificate) -> SignedMessage:
        message = self.authority.make(body, cert)
        from repro.messages.consensus import Init

        if isinstance(body, Init):
            self.broadcast(message)
        return message


class CtCorruptEstimateAttacker(TransformedCtProcess):
    """Estimates carry a fabricated vector the certificate cannot witness."""

    profile = FaultProfile(
        name="ct-corrupt-estimate",
        failure_class=FailureClass.VALUE_CORRUPTION,
        detecting_module=DetectingModule.CERTIFICATION,
        description="ESTIMATE vector disagrees with its certificate",
    )

    def _broadcast_signed(self, body: Message, cert: Certificate) -> SignedMessage:
        if isinstance(body, CtEstimate):
            body = body.replace(est_vect=_poison_vector(self.n))
        return super()._broadcast_signed(body, cert)


class CtCorruptSelectionAttacker(TransformedCtProcess):
    """As coordinator, proposes a vector that is *not* the deterministic
    pick of its own justification — the corrupted phase-2 selection the
    verifiable justification was designed to catch."""

    profile = FaultProfile(
        name="ct-corrupt-selection",
        failure_class=FailureClass.MISEVALUATION,
        detecting_module=DetectingModule.CERTIFICATION,
        description="PROPOSE vector differs from the highest-ts pick",
    )

    def _broadcast_signed(self, body: Message, cert: Certificate) -> SignedMessage:
        if isinstance(body, CtPropose):
            body = body.replace(est_vect=_poison_vector(self.n))
        return super()._broadcast_signed(body, cert)


class CtSpuriousProposeAttacker(TransformedCtProcess):
    """Proposes without holding the coordinator seat."""

    profile = FaultProfile(
        name="ct-spurious-propose",
        failure_class=FailureClass.SPURIOUS_MESSAGE,
        detecting_module=DetectingModule.NON_MUTENESS_DETECTOR,
        description="PROPOSE sent by a non-coordinator",
    )

    def _begin_round(self, round_number: int) -> None:
        super()._begin_round(round_number)
        if round_number == 1 and self.pid != self.coordinator and not self.decided:
            self._broadcast_signed(
                CtPropose(
                    sender=self.pid, round=self.round, est_vect=self.est_vect
                ),
                self.est_cert,
            )


class CtPrematureDecideAttacker(TransformedCtProcess):
    """Announces a decision backed by no ack quorum (misevaluation)."""

    profile = FaultProfile(
        name="ct-premature-decide",
        failure_class=FailureClass.MISEVALUATION,
        detecting_module=DetectingModule.CERTIFICATION,
        description="DECIDE with an empty ack quorum",
    )

    def _begin_round(self, round_number: int) -> None:
        super()._begin_round(round_number)
        if round_number == 1 and not self.decided:
            self._broadcast_signed(
                CtDecide(sender=self.pid, est_vect=self.est_vect),
                EMPTY_CERTIFICATE,
            )


class CtFakeTimestampAttacker(TransformedCtProcess):
    """Claims its estimate was adopted in a round that never adopted it.

    A high fake ``ts`` would steer every coordinator's selection towards
    the attacker's vector; the estimate certificate (which must embed the
    acknowledged PROPOSE of round ``ts``) makes the lie checkable.
    """

    profile = FaultProfile(
        name="ct-fake-timestamp",
        failure_class=FailureClass.VALUE_CORRUPTION,
        detecting_module=DetectingModule.CERTIFICATION,
        description="ESTIMATE with an unwitnessed high timestamp",
    )

    def _broadcast_signed(self, body: Message, cert: Certificate) -> SignedMessage:
        if isinstance(body, CtEstimate) and body.round >= 2:
            body = body.replace(ts=body.round - 1)
        return super()._broadcast_signed(body, cert)


class CtPartialProposeAttacker(TransformedCtProcess):
    """As coordinator, shows its (valid!) proposal to only half the system.

    Without proposal extraction this wedges the round: half acks, half
    waits forever (the coordinator is not mute — it keeps estimating).
    With extraction the starved half recovers the proposal from the ack
    certificates and the round completes; the attack costs nothing, which
    is exactly what this behaviour is in the gallery to show.
    """

    profile = FaultProfile(
        name="ct-partial-propose",
        failure_class=FailureClass.TRANSIENT_OMISSION,
        detecting_module=DetectingModule.NON_MUTENESS_DETECTOR,
        description="PROPOSE delivered to half the processes only",
    )

    def _broadcast_signed(self, body: Message, cert: Certificate) -> SignedMessage:
        message = self.authority.make(body, cert)
        if isinstance(body, CtPropose):
            for dst in range(self.n):
                if dst % 2 == 0:
                    self.send(dst, message)
            return message
        self.broadcast(message)
        return message


CT_ATTACKS: dict[str, type] = {
    cls.profile.name: cls
    for cls in (
        CtMuteAttacker,
        CtCorruptEstimateAttacker,
        CtCorruptSelectionAttacker,
        CtSpuriousProposeAttacker,
        CtPrematureDecideAttacker,
        CtFakeTimestampAttacker,
        CtPartialProposeAttacker,
    )
}


def ct_attack(pid: int, name: str) -> Mapping[int, Any]:
    """A ``byzantine=`` mapping installing one transformed-CT attacker."""
    try:
        cls = CT_ATTACKS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown CT attack {name!r}; known: {sorted(CT_ATTACKS)}"
        ) from None

    def factory(_pid, proposal, params, authority, detector, config):
        return cls(
            proposal=proposal,
            params=params,
            authority=authority,
            detector=detector,
            config=config,
        )

    return {pid: factory}
