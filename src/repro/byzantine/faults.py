"""The paper's fault taxonomy (Section 2) as data.

Every Byzantine behaviour in :mod:`repro.byzantine.behaviors` is tagged
with the failure class it realises and the module that is responsible for
detecting it (the modularity claim of the paper: each failure type is
encapsulated in a specific module). Experiments E4 and E8 are driven off
this table.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class FailureClass(Enum):
    """The two top-level classes and their manifestations (Section 2/3)."""

    MUTENESS = "muteness"  # permanent message omission (includes crash)
    VALUE_CORRUPTION = "value-corruption"  # corrupted variable / message value
    DUPLICATION = "duplication"  # statement executed twice
    SPURIOUS_MESSAGE = "spurious-message"  # message the text cannot generate
    MISEVALUATION = "misevaluation"  # wrongly evaluated send/decide condition
    IDENTITY_FALSIFICATION = "identity-falsification"  # wrong sender
    TRANSIENT_OMISSION = "transient-omission"  # skipped statements


class DetectingModule(Enum):
    """Which of the five modules (Figure 1) catches a failure class."""

    SIGNATURE = "signature"
    MUTENESS_DETECTOR = "muteness-detector"
    NON_MUTENESS_DETECTOR = "non-muteness-detector"
    CERTIFICATION = "certification"


@dataclass(frozen=True, slots=True)
class FaultProfile:
    """Metadata describing one Byzantine behaviour in the gallery."""

    name: str
    failure_class: FailureClass
    detecting_module: DetectingModule
    description: str
    #: True when the fault manifests through messages (detectable by
    #: receivers); pure muteness is only visible as absence.
    visible_in_messages: bool = True


#: Expected detector for each failure class — the paper's encapsulation map.
EXPECTED_DETECTOR: dict[FailureClass, DetectingModule] = {
    FailureClass.MUTENESS: DetectingModule.MUTENESS_DETECTOR,
    FailureClass.VALUE_CORRUPTION: DetectingModule.CERTIFICATION,
    FailureClass.DUPLICATION: DetectingModule.NON_MUTENESS_DETECTOR,
    FailureClass.SPURIOUS_MESSAGE: DetectingModule.NON_MUTENESS_DETECTOR,
    FailureClass.MISEVALUATION: DetectingModule.CERTIFICATION,
    FailureClass.IDENTITY_FALSIFICATION: DetectingModule.SIGNATURE,
    FailureClass.TRANSIENT_OMISSION: DetectingModule.NON_MUTENESS_DETECTOR,
}
