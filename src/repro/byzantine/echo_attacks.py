"""Attacks against the echo-INIT variant (reliable-broadcast INIT phase)."""

from __future__ import annotations

from typing import Any, Mapping

from repro.broadcast.reliable import RbSend
from repro.byzantine.faults import DetectingModule, FailureClass, FaultProfile
from repro.byzantine.transformed_attacks import POISON
from repro.consensus.echo_init import EchoInitConsensusProcess
from repro.core.certificates import EMPTY_CERTIFICATE
from repro.messages.consensus import Init


class EchoInitEquivocator(EchoInitConsensusProcess):
    """Equivocates its INIT *underneath* the reliable broadcast.

    Sends RB ``SEND``s with different signed INITs to the two halves of
    the system — the strongest divergence attack available against the
    INIT phase. Bracha's echo-quorum intersection guarantees that at most
    one branch can ever be RB-delivered, so every correct process that
    obtains a value for this slot obtains the *same* value (experiment
    E11 measures the divergence being zero).
    """

    profile = FaultProfile(
        name="rb-equivocate-init",
        failure_class=FailureClass.VALUE_CORRUPTION,
        detecting_module=DetectingModule.NON_MUTENESS_DETECTOR,
        description="two signed INIT branches pushed into reliable broadcast",
    )

    def start_protocol(self) -> None:
        branch_a = self.authority.make(
            Init(sender=self.pid, value=self.proposal), EMPTY_CERTIFICATE
        )
        branch_b = self.authority.make(
            Init(sender=self.pid, value=POISON), EMPTY_CERTIFICATE
        )
        for dst in range(self.n):
            chosen = branch_a if dst % 2 == 0 else branch_b
            self.send(dst, RbSend(sender=self.pid, tag=0, payload=chosen))
        # Locally adopt branch A so the attacker stays runnable.
        self._vector_builder.add(branch_a)
        self._maybe_finish_init()


def echo_equivocation_attack(pid: int) -> Mapping[int, Any]:
    """A ``byzantine=`` mapping installing the RB-level INIT equivocator."""

    def factory(_pid, proposal, params, authority, detector, config):
        return EchoInitEquivocator(
            proposal=proposal,
            params=params,
            authority=authority,
            detector=detector,
            config=config,
        )

    return {pid: factory}
