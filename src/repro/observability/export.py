"""Versioned JSONL export of a run: metrics + trace in one artifact.

One run = one ``.jsonl`` file. Line 1 is a header carrying the schema
version and the run's configuration; then every metric (counters,
gauges, histograms) in a canonical sorted order; then every trace event
in simulation order. Each line is one JSON object serialised with sorted
keys and no whitespace, so a fixed-seed run exported twice is
**byte-identical** — the determinism tests pin exactly this.

Schema ``repro.observability/v1`` (full field tables in
``docs/OBSERVABILITY.md``):

* ``{"kind": "header", "schema": "...", "meta": {...}}``
* ``{"kind": "metric", "metric": "counter" | "gauge", "module": m,
  "name": n, "pid": p|null, "round": r|null, "value": v}``
* ``{"kind": "metric", "metric": "histogram", "module": m, "name": n,
  "pid": p|null, "round": r|null, "count": c, "sum": s, "min": lo,
  "max": hi}``
* ``{"kind": "event", "time": t, "type": trace-kind, "process": p|null,
  "detail": {...}}``

Wall-clock span profiles are intentionally absent: they are not
deterministic and live only in the in-memory registry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, IO, Iterable, Iterator, Mapping

from repro.errors import ReproError
from repro.observability.registry import MetricsRegistry
from repro.sim.trace import Trace, TraceEvent

SCHEMA_VERSION = "repro.observability/v1"


class ArtifactError(ReproError):
    """A JSONL artifact is malformed or has an unsupported schema."""


def dumps_canonical(record: Mapping[str, Any]) -> str:
    """One record as a canonical JSON line: sorted keys, no whitespace.

    Shared by every JSONL artifact family (``repro.observability/v1``,
    ``repro.campaign/v1``) — canonical serialisation is what makes
    fixed-seed artifacts byte-identical.
    """
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


_dumps = dumps_canonical


def _detail_value(value: Any) -> Any:
    """A JSON-ready rendering of one trace-event detail value."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # Payloads and other rich objects are summarised, not expanded: the
    # artifact is for accounting, the full objects stay in-process.
    from repro.analysis.tracefmt import describe_payload  # lazy: avoids cycle

    return describe_payload(value)


def event_record(event: TraceEvent) -> dict[str, Any]:
    """One trace event as a schema-v1 ``kind=event`` record."""
    return {
        "kind": "event",
        "time": round(event.time, 9),
        "type": event.kind,
        "process": event.process,
        "detail": {
            key: _detail_value(value) for key, value in event.detail.items()
        },
    }


def metric_records(metrics: MetricsRegistry) -> Iterator[dict[str, Any]]:
    """Every metric as schema-v1 ``kind=metric`` records, canonical order."""
    for (module, name, pid, rnd), value in metrics.iter_counters():
        yield {
            "kind": "metric",
            "metric": "counter",
            "module": module,
            "name": name,
            "pid": pid,
            "round": rnd,
            "value": value,
        }
    for (module, name, pid, rnd), value in metrics.iter_gauges():
        yield {
            "kind": "metric",
            "metric": "gauge",
            "module": module,
            "name": name,
            "pid": pid,
            "round": rnd,
            "value": value,
        }
    for (module, name, pid, rnd), (count, total, lo, hi) in (
        metrics.iter_histograms()
    ):
        yield {
            "kind": "metric",
            "metric": "histogram",
            "module": module,
            "name": name,
            "pid": pid,
            "round": rnd,
            "count": int(count),
            "sum": total,
            "min": lo,
            "max": hi,
        }


def run_to_lines(
    trace: Trace,
    metrics: MetricsRegistry,
    meta: Mapping[str, Any] | None = None,
) -> Iterator[str]:
    """The full artifact, one JSON line at a time (no trailing newlines)."""
    yield _dumps(
        {"kind": "header", "schema": SCHEMA_VERSION, "meta": dict(meta or {})}
    )
    for record in metric_records(metrics):
        yield _dumps(record)
    for event in trace:
        yield _dumps(event_record(event))


def write_run_jsonl(
    target: str | Path | IO[str],
    trace: Trace,
    metrics: MetricsRegistry,
    meta: Mapping[str, Any] | None = None,
) -> None:
    """Write the artifact to a path or an open text handle."""
    lines = run_to_lines(trace, metrics, meta)
    if hasattr(target, "write"):
        for line in lines:
            target.write(line + "\n")
        return
    with open(target, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")


@dataclass(slots=True)
class RunArtifact:
    """A parsed JSONL artifact: header meta, metrics, event records."""

    schema: str = SCHEMA_VERSION
    meta: dict[str, Any] = field(default_factory=dict)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    events: list[dict[str, Any]] = field(default_factory=list)

    def events_of_type(self, event_type: str) -> list[dict[str, Any]]:
        return [e for e in self.events if e["type"] == event_type]


def _load_metric(artifact: RunArtifact, record: dict[str, Any]) -> None:
    module, name = record["module"], record["name"]
    pid, rnd = record.get("pid"), record.get("round")
    metric = record.get("metric")
    if metric == "counter":
        artifact.metrics.inc(module, name, record["value"], pid=pid, round=rnd)
    elif metric == "gauge":
        artifact.metrics.gauge_set(module, name, record["value"], pid=pid)
    elif metric == "histogram":
        artifact.metrics._histograms[(module, name, pid, rnd)] = [
            int(record["count"]),
            record["sum"],
            record["min"],
            record["max"],
        ]
    else:
        raise ArtifactError(f"unknown metric type {metric!r}")


def parse_lines(lines: Iterable[str]) -> RunArtifact:
    """Parse artifact lines back into a :class:`RunArtifact`.

    Round-trips: serialising the result with :func:`artifact_to_lines`
    reproduces the input byte for byte.
    """
    artifact = RunArtifact()
    saw_header = False
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"line {number}: not JSON ({exc})") from exc
        kind = record.get("kind")
        if kind == "header":
            schema = record.get("schema", "")
            if not schema.startswith("repro.observability/"):
                raise ArtifactError(f"unsupported schema {schema!r}")
            artifact.schema = schema
            artifact.meta = record.get("meta", {})
            saw_header = True
        elif kind == "metric":
            _load_metric(artifact, record)
        elif kind == "event":
            artifact.events.append(
                {
                    "time": record["time"],
                    "type": record["type"],
                    "process": record["process"],
                    "detail": record.get("detail", {}),
                }
            )
        else:
            raise ArtifactError(f"line {number}: unknown record kind {kind!r}")
    if not saw_header:
        raise ArtifactError("artifact has no header line")
    return artifact


def read_run_jsonl(path: str | Path) -> RunArtifact:
    """Parse a ``.jsonl`` artifact file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_lines(handle)


def artifact_to_lines(artifact: RunArtifact) -> Iterator[str]:
    """Re-serialise a parsed artifact (canonical order, byte-stable)."""
    yield _dumps(
        {"kind": "header", "schema": artifact.schema, "meta": artifact.meta}
    )
    for record in metric_records(artifact.metrics):
        yield _dumps(record)
    for event in artifact.events:
        yield _dumps(
            {
                "kind": "event",
                "time": event["time"],
                "type": event["type"],
                "process": event["process"],
                "detail": event["detail"],
            }
        )
