"""Observability: per-module instrumentation, run metrics, JSONL export.

The paper's contribution is *modularity* — five cooperating modules per
process (signature, muteness FD, non-muteness FD, certification,
protocol). This package makes that structure observable: every module
reports counters, gauges and histograms into a per-run
:class:`MetricsRegistry`, attributed to the module that produced them,
and a run can be exported as a versioned JSONL artifact
(:mod:`repro.observability.export`) that pairs the metrics with the
event trace.

Everything recorded here is derived from virtual time and deterministic
event order, so a fixed-seed run exports **byte-identical** artifacts.
The only exception is wall-clock :class:`~repro.observability.span.Span`
profiles, which live in a separate section and are never exported.

See ``docs/OBSERVABILITY.md`` for the metric catalogue and the JSONL
schema.
"""

from repro.observability.registry import (
    MODULE_CERTIFICATION,
    MODULE_MUTENESS,
    MODULE_MONITOR,
    MODULE_NETWORK,
    MODULE_PROCESS,
    MODULE_PROTOCOL,
    MODULE_SCHEDULER,
    MODULE_SIGNATURE,
    NULL_METRICS,
    PAPER_MODULES,
    MetricsRegistry,
    ModuleMetrics,
)
from repro.observability.span import Span
from repro.observability.export import (
    SCHEMA_VERSION,
    ArtifactError,
    RunArtifact,
    artifact_to_lines,
    parse_lines,
    read_run_jsonl,
    run_to_lines,
    write_run_jsonl,
)

__all__ = [
    "MODULE_CERTIFICATION",
    "MODULE_MUTENESS",
    "MODULE_MONITOR",
    "MODULE_NETWORK",
    "MODULE_PROCESS",
    "MODULE_PROTOCOL",
    "MODULE_SCHEDULER",
    "MODULE_SIGNATURE",
    "NULL_METRICS",
    "PAPER_MODULES",
    "ArtifactError",
    "MetricsRegistry",
    "ModuleMetrics",
    "RunArtifact",
    "SCHEMA_VERSION",
    "Span",
    "artifact_to_lines",
    "parse_lines",
    "read_run_jsonl",
    "run_to_lines",
    "write_run_jsonl",
]
