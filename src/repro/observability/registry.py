"""The metrics registry: counters, gauges and histograms per module.

One :class:`MetricsRegistry` exists per simulated world (created by
:class:`~repro.sim.world.World`); every layer of the stack writes into it
through either the registry itself or a :class:`ModuleMetrics` scope that
pre-binds the (module, pid) attribution.

Metric identity is the tuple ``(module, name, pid, round)`` where ``pid``
and ``round`` are optional labels. Aggregation never double-counts: each
``inc``/``observe`` lands on exactly one key, and the per-module totals
sum over all keys of a (module, name) pair.

Determinism: everything stored here is a pure function of the simulated
run (virtual time, seeded randomness), so two runs with the same seed
produce equal registries and byte-identical exports. Wall-clock
:meth:`ModuleMetrics.span` profiles are the deliberate exception — they
are kept in a separate *profile* section that the JSONL exporter skips.
"""

from __future__ import annotations

import time
from typing import Any, Iterator

from repro.observability.span import Span

#: The five paper modules of Figure 1, as metric attribution labels.
MODULE_SIGNATURE = "signature"
MODULE_MUTENESS = "muteness_fd"
MODULE_MONITOR = "non_muteness_fd"
MODULE_CERTIFICATION = "certification"
MODULE_PROTOCOL = "protocol"

#: Simulation-substrate modules (not part of Figure 1).
MODULE_SCHEDULER = "scheduler"
MODULE_NETWORK = "network"
MODULE_TRANSPORT = "transport"
MODULE_PROCESS = "process"
#: The replicated-service runtime built on top of the five modules
#: (clients, batching, checkpoints, state transfer — docs/SERVICE.md).
MODULE_SERVICE = "service"
#: The real-socket deployment runtime (wire codec, peer transport,
#: replica nodes — docs/NET.md).
MODULE_NET = "net"
#: The small-scope model checker driving the stack through all
#: interleavings (docs/MODELCHECK.md).
MODULE_MC = "mc"
#: The cross-fidelity fault-injection engine (docs/FAULTS.md): link
#: tampering, bit-flips and the arbitrary-fault counters.
MODULE_FAULTS = "faults"
#: The multi-group routing layer above the per-group stacks
#: (docs/SHARDING.md): key→shard routing and cross-group orchestration.
MODULE_SHARD = "shard"
#: The adversary zoo (docs/ADVERSARIES.md): message-adversary
#: suppression, transient/at-rest state corruption and timing-attack
#: injection counters.
MODULE_ZOO = "zoo"

PAPER_MODULES = (
    MODULE_SIGNATURE,
    MODULE_MUTENESS,
    MODULE_MONITOR,
    MODULE_CERTIFICATION,
    MODULE_PROTOCOL,
)

#: (module, name, pid, round) — pid/round may be None.
MetricKey = tuple[str, str, int | None, int | None]


def _sort_key(key: MetricKey) -> tuple:
    module, name, pid, rnd = key
    return (module, name, pid is not None, pid or 0, rnd is not None, rnd or 0)


class MetricsRegistry:
    """Per-run store of counters, gauges, histograms and span profiles."""

    def __init__(self) -> None:
        self._counters: dict[MetricKey, int | float] = {}
        self._gauges: dict[MetricKey, float] = {}
        # histogram value: [count, sum, min, max]
        self._histograms: dict[MetricKey, list[float]] = {}
        # wall-clock span profile (never exported): same shape
        self._profile: dict[tuple[str, str, int | None], list[float]] = {}

    # -- writing -----------------------------------------------------------

    def inc(
        self,
        module: str,
        name: str,
        value: int | float = 1,
        pid: int | None = None,
        round: int | None = None,
    ) -> None:
        """Add ``value`` to the counter ``(module, name, pid, round)``."""
        key = (module, name, pid, round)
        self._counters[key] = self._counters.get(key, 0) + value

    def gauge_set(
        self, module: str, name: str, value: float, pid: int | None = None
    ) -> None:
        """Set the gauge to ``value`` (last write wins)."""
        self._gauges[(module, name, pid, None)] = value

    def gauge_max(
        self, module: str, name: str, value: float, pid: int | None = None
    ) -> None:
        """Raise the gauge to ``value`` if it exceeds the stored one."""
        key = (module, name, pid, None)
        current = self._gauges.get(key)
        if current is None or value > current:
            self._gauges[key] = value

    def observe(
        self,
        module: str,
        name: str,
        value: float,
        pid: int | None = None,
        round: int | None = None,
    ) -> None:
        """Record one histogram observation (count/sum/min/max summary)."""
        key = (module, name, pid, round)
        entry = self._histograms.get(key)
        if entry is None:
            self._histograms[key] = [1, value, value, value]
        else:
            entry[0] += 1
            entry[1] += value
            entry[2] = min(entry[2], value)
            entry[3] = max(entry[3], value)

    def profile_observe(
        self, module: str, name: str, seconds: float, pid: int | None = None
    ) -> None:
        """Record one wall-clock span duration (profile section only)."""
        key = (module, name, pid)
        entry = self._profile.get(key)
        if entry is None:
            self._profile[key] = [1, seconds, seconds, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds
            entry[2] = min(entry[2], seconds)
            entry[3] = max(entry[3], seconds)

    def span(self, module: str, name: str, pid: int | None = None) -> Span:
        """A wall-clock timer for a hot path, feeding the profile section."""
        return Span(
            sink=lambda seconds: self.profile_observe(module, name, seconds, pid),
            clock=time.perf_counter,
        )

    def scope(self, module: str, pid: int | None = None) -> "ModuleMetrics":
        """A writer with (module, pid) attribution pre-bound."""
        return ModuleMetrics(self, module, pid)

    # -- reading -----------------------------------------------------------

    def counter(
        self,
        module: str,
        name: str,
        pid: int | None = None,
        round: int | None = None,
    ) -> int | float:
        """The exact counter at ``(module, name, pid, round)`` (0 if unset)."""
        return self._counters.get((module, name, pid, round), 0)

    def counter_total(self, module: str, name: str) -> int | float:
        """Sum of a counter over all pid/round labels."""
        return sum(
            value
            for (mod, nm, _pid, _rnd), value in self._counters.items()
            if mod == module and nm == name
        )

    def totals_by_module(self) -> dict[str, dict[str, int | float]]:
        """``module -> name -> total`` over all labels, sorted for display."""
        totals: dict[str, dict[str, int | float]] = {}
        for (module, name, _pid, _rnd), value in self._counters.items():
            bucket = totals.setdefault(module, {})
            bucket[name] = bucket.get(name, 0) + value
        return {
            module: dict(sorted(names.items()))
            for module, names in sorted(totals.items())
        }

    def rounds_observed(self) -> list[int]:
        """Every distinct round label appearing on any counter, sorted."""
        return sorted(
            {rnd for (_m, _n, _p, rnd) in self._counters if rnd is not None}
        )

    def counters_for_round(self, rnd: int) -> dict[tuple[str, str], int | float]:
        """``(module, name) -> total`` restricted to one round label."""
        totals: dict[tuple[str, str], int | float] = {}
        for (module, name, _pid, key_rnd), value in self._counters.items():
            if key_rnd == rnd:
                pair = (module, name)
                totals[pair] = totals.get(pair, 0) + value
        return totals

    def profile_summary(self) -> dict[tuple[str, str], dict[str, float]]:
        """Aggregated wall-clock span stats: ``(module, name) -> summary``."""
        merged: dict[tuple[str, str], list[float]] = {}
        for (module, name, _pid), (count, total, lo, hi) in self._profile.items():
            entry = merged.get((module, name))
            if entry is None:
                merged[(module, name)] = [count, total, lo, hi]
            else:
                entry[0] += count
                entry[1] += total
                entry[2] = min(entry[2], lo)
                entry[3] = max(entry[3], hi)
        return {
            pair: {"count": int(c), "sum": s, "min": lo, "max": hi}
            for pair, (c, s, lo, hi) in sorted(merged.items())
        }

    # -- snapshots (the exporter's input) ----------------------------------

    def iter_counters(self) -> Iterator[tuple[MetricKey, int | float]]:
        for key in sorted(self._counters, key=_sort_key):
            yield key, self._counters[key]

    def iter_gauges(self) -> Iterator[tuple[MetricKey, float]]:
        for key in sorted(self._gauges, key=_sort_key):
            yield key, self._gauges[key]

    def iter_histograms(self) -> Iterator[tuple[MetricKey, list[float]]]:
        for key in sorted(self._histograms, key=_sort_key):
            yield key, self._histograms[key]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        # Profiles are wall-clock noise: excluded from equality on purpose.
        return (
            self._counters == other._counters
            and self._gauges == other._gauges
            and self._histograms == other._histograms
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )


class ModuleMetrics:
    """A registry writer with the (module, pid) attribution pre-bound.

    Hot-path instrumentation holds one of these instead of repeating the
    module name and pid at every call site; :data:`NULL_METRICS` is the
    no-op stand-in for components constructed outside a world.
    """

    __slots__ = ("_registry", "_module", "_pid")

    def __init__(
        self, registry: MetricsRegistry, module: str, pid: int | None
    ) -> None:
        self._registry = registry
        self._module = module
        self._pid = pid

    def inc(
        self, name: str, value: int | float = 1, round: int | None = None
    ) -> None:
        self._registry.inc(self._module, name, value, pid=self._pid, round=round)

    def observe(self, name: str, value: float, round: int | None = None) -> None:
        self._registry.observe(
            self._module, name, value, pid=self._pid, round=round
        )

    def gauge_max(self, name: str, value: float) -> None:
        self._registry.gauge_max(self._module, name, value, pid=self._pid)

    def span(self, name: str) -> Span:
        return self._registry.span(self._module, name, pid=self._pid)


class _NullMetrics:
    """No-op metrics sink: safe default outside a world.

    Accepts both the registry call shape (``inc(module, name, ...)``)
    and the scope call shape (``inc(name, ...)``), discarding everything.
    """

    __slots__ = ()

    def inc(self, *args: Any, **kwargs: Any) -> None:
        pass

    def observe(self, *args: Any, **kwargs: Any) -> None:
        pass

    def gauge_set(self, *args: Any, **kwargs: Any) -> None:
        pass

    def gauge_max(self, *args: Any, **kwargs: Any) -> None:
        pass

    def span(self, *args: Any, **kwargs: Any) -> Span:
        return _NULL_SPAN

    def scope(self, module: str, pid: int | None = None) -> "_NullMetrics":
        return self


_NULL_SPAN = Span(sink=lambda _seconds: None, clock=lambda: 0.0)

#: Shared no-op scope (also quacks like a registry via ``scope``).
NULL_METRICS = _NullMetrics()
