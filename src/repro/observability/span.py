"""Span: a context-managed timer for hot paths.

A :class:`Span` measures the duration of a code block against an
injectable clock and reports it to a sink callback on exit. The registry
hands out wall-clock spans (``time.perf_counter``) whose observations go
to the *profile* section — kept out of the exported JSONL because wall
time is not deterministic. A virtual-time clock can be injected instead,
but note that virtual time does not advance inside one event callback,
so spans around synchronous code need the wall clock to see anything.

Spans are reusable and reentrant-safe enough for the simulator's single
thread: each ``with`` entry snapshots its own start time.
"""

from __future__ import annotations

from typing import Callable


class Span:
    """Times a ``with`` block and reports the duration to ``sink``."""

    __slots__ = ("_sink", "_clock", "_starts", "last")

    def __init__(
        self, sink: Callable[[float], None], clock: Callable[[], float]
    ) -> None:
        self._sink = sink
        self._clock = clock
        self._starts: list[float] = []
        #: Duration of the most recently completed block (seconds).
        self.last: float = 0.0

    def __enter__(self) -> "Span":
        self._starts.append(self._clock())
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.last = self._clock() - self._starts.pop()
        self._sink(self.last)
