"""repro.shard — partition the key space across independent groups.

Each shard is a complete, unmodified replicated group (its own genesis,
seed, pid space, checkpoints and certified state transfer); this package
adds only what sits *above* the groups: the deterministic key→shard map
(:mod:`repro.shard.keymap`), the multi-group genesis artifact
(:mod:`repro.shard.genesis`), the routing client
(:mod:`repro.shard.client`), subprocess orchestration
(:mod:`repro.shard.cluster`) and the deterministic in-process twin
(:mod:`repro.shard.loopback`). See docs/SHARDING.md.
"""

from repro.shard.client import ShardedNetClient
from repro.shard.cluster import (
    ShardClusterError,
    ShardedLocalCluster,
    make_shard_genesis,
    run_shard_smoke,
    wait_shards_ready,
)
from repro.shard.genesis import ShardGenesis
from repro.shard.keymap import (
    key_for_shard,
    key_weight,
    route_counts,
    shard_of,
    shard_seed,
)
from repro.shard.loopback import (
    ShardedLoopbackCluster,
    loopback_scaling_cell,
    loopback_shard_genesis,
    run_loopback_smoke,
    smoke_json,
)

__all__ = [
    "ShardClusterError",
    "ShardGenesis",
    "ShardedLocalCluster",
    "ShardedLoopbackCluster",
    "ShardedNetClient",
    "key_for_shard",
    "key_weight",
    "loopback_scaling_cell",
    "loopback_shard_genesis",
    "make_shard_genesis",
    "route_counts",
    "run_loopback_smoke",
    "run_shard_smoke",
    "shard_of",
    "shard_seed",
    "smoke_json",
    "wait_shards_ready",
]
