"""Sharded cluster orchestration: N independent groups, one verdict.

:class:`ShardedLocalCluster` supervises one
:class:`~repro.net.cluster.LocalCluster` per shard (each in its own
``shard-{s}/`` workdir with its own genesis file, logs and metrics
directory), and :func:`run_shard_smoke` is the sharded analogue of the
single-group smoke: spawn every group as real OS subprocesses over TCP,
commit a workload through a :class:`~repro.shard.client.ShardedNetClient`,
SIGKILL one replica *in one shard* mid-run, restart it with ``--join``
(per-shard certified state transfer over sockets), and assert, **per
shard**:

* digest convergence across the shard's replicas;
* exactly-once: the shard committed exactly the commands the client
  routed to it — no loss, no duplication, no cross-shard leakage;
* the restarted replica completed at least one state transfer;
* a quorum ``get`` of a shard-addressed sentinel returns the value
  written last.

The untouched shards double as a blast-radius check: a crash in shard
``k`` must not cost any other shard a single commit.
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError, ReproError
from repro.net.client import NetClient
from repro.net.cluster import ClusterError, LocalCluster, free_port, wait_cluster_ready
from repro.shard.client import ShardedNetClient
from repro.shard.genesis import ShardGenesis
from repro.shard.keymap import key_for_shard


class ShardClusterError(ReproError):
    """The sharded cluster failed to start, converge, or pass assertions."""


def make_shard_genesis(
    n_shards: int = 2,
    replicas_per_shard: int = 4,
    *,
    seed: int = 7,
    name: str = "shard-smoke",
    **overrides: Any,
) -> ShardGenesis:
    """A loopback-interface shard genesis with freshly allocated ports."""
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    addresses = tuple(
        tuple(("127.0.0.1", free_port()) for _ in range(replicas_per_shard))
        for _ in range(n_shards)
    )
    genesis = ShardGenesis(
        name=name,
        seed=seed,
        n_shards=n_shards,
        replicas_per_shard=replicas_per_shard,
        addresses=addresses,
        metrics_interval=1.0,
        **overrides,
    )
    genesis.validate()
    return genesis


class ShardedLocalCluster:
    """Subprocess supervisor for every group of one shard genesis."""

    def __init__(self, genesis: ShardGenesis, workdir: str | Path) -> None:
        genesis.validate()
        self.genesis = genesis
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.genesis_path = genesis.save(self.workdir / "shard-genesis.json")
        self.clusters: dict[int, LocalCluster] = {
            shard: LocalCluster(
                genesis.genesis_for(shard), self.workdir / f"shard-{shard}"
            )
            for shard in range(genesis.n_shards)
        }

    def _cluster(self, shard: int) -> LocalCluster:
        cluster = self.clusters.get(shard)
        if cluster is None:
            raise ShardClusterError(
                f"shard {shard} outside the shard range "
                f"0..{self.genesis.n_shards - 1}"
            )
        return cluster

    def start_all(self) -> None:
        for cluster in self.clusters.values():
            cluster.start_all()

    def spawn(self, shard: int, pid: int, *, join: bool = False) -> None:
        self._cluster(shard).spawn(pid, join=join)

    def kill(self, shard: int, pid: int) -> None:
        """SIGKILL one replica of one shard (the blast radius under test)."""
        self._cluster(shard).kill(pid)

    def terminate_all(self, timeout: float = 10.0) -> dict[int, dict[int, int]]:
        """SIGTERM every group; returns shard -> pid -> exit code."""
        return {
            shard: cluster.terminate_all(timeout=timeout)
            for shard, cluster in sorted(self.clusters.items())
        }


async def wait_shards_ready(
    client: ShardedNetClient, *, timeout: float = 30.0
) -> None:
    """Block until every replica of every shard answers a status probe."""
    for shard, sub in sorted(client.clients.items()):
        try:
            await wait_cluster_ready(sub, timeout=timeout)
        except ClusterError as exc:
            raise ShardClusterError(f"shard {shard}: {exc}") from exc


async def _wait_shard_converged(
    client: NetClient,
    *,
    shard: int,
    expect_committed: int,
    nudge_key: str,
    restarted: int | None,
    timeout: float,
) -> dict[int, Any]:
    """Nudge-and-probe one shard until its replicas agree.

    The nudge key is shard-addressed: new commits in *this* group force
    new checkpoints, whose certificates reveal a restarted laggard's gap
    and trigger its certified transfer — the same liveness argument as
    the single-group smoke, scoped to the shard.
    """
    n = client.genesis.n_replicas
    deadline = time.monotonic() + timeout
    nudge = 0
    nudges_committed = 0
    replies: dict[int, Any] = {}
    while time.monotonic() < deadline:
        replies = await client.status(timeout=1.0)
        if len(replies) == n:
            digests = {status.digest for status in replies.values()}
            committed = {status.committed for status in replies.values()}
            transfers_ok = (
                restarted is None or replies[restarted].transfers >= 1
            )
            if (
                len(digests) == 1
                and committed == {expect_committed + nudges_committed}
                and transfers_ok
            ):
                return replies
        await client.set(nudge_key, f"n{nudge}")
        nudges_committed += 1
        nudge += 1
        await asyncio.sleep(0.3)
    detail = {
        pid: (status.committed, status.transfers, status.digest[:8])
        for pid, status in sorted(replies.items())
    }
    raise ShardClusterError(
        f"shard {shard} did not converge within {timeout}s: expected "
        f"{expect_committed}(+{nudges_committed} nudges) committed, "
        f"replicas report {detail}"
    )


async def run_shard_smoke(
    *,
    shards: int = 2,
    replicas_per_shard: int = 4,
    requests: int = 40,
    kill_shard: int = 1,
    kill_pid: int = 2,
    seed: int = 7,
    workdir: str | Path | None = None,
    concurrency: int = 8,
    converge_timeout: float = 60.0,
) -> dict[str, Any]:
    """The ``make shard-smoke`` TCP scenario; returns the verdict record."""
    if not 0 <= kill_shard < shards:
        raise ConfigurationError(
            f"kill_shard {kill_shard} outside the shard range 0..{shards - 1}"
        )
    owned_tmp = None
    if workdir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="repro-shard-")
        workdir = owned_tmp.name
    genesis = make_shard_genesis(shards, replicas_per_shard, seed=seed)
    cluster = ShardedLocalCluster(genesis, workdir)
    client = ShardedNetClient(genesis, 0)
    phase1 = max(1, (requests * 2) // 5)
    phase2 = max(1, (requests * 2) // 5)
    phase3 = max(1, requests - phase1 - phase2)
    try:
        cluster.start_all()
        await wait_shards_ready(client, timeout=30.0)

        await client.workload(phase1, concurrency=concurrency, tag="a")
        committed_before_kill = {
            shard: count
            for shard, count in client.sets_by_shard.items()
            if shard != kill_shard
        }
        cluster.kill(kill_shard, kill_pid)
        await client.workload(phase2, concurrency=concurrency, tag="b")
        cluster.spawn(kill_shard, kill_pid, join=True)
        await client.workload(phase3, concurrency=concurrency, tag="c")

        # One sentinel per shard, shard-addressed by construction.
        sentinels = {
            shard: key_for_shard(f"sentinel-{seed}-", shard, shards)
            for shard in range(shards)
        }
        for shard, key in sorted(sentinels.items()):
            await client.set(key, f"s{seed}-{shard}")

        shard_replies: dict[int, dict[int, Any]] = {}
        for shard in range(shards):
            shard_replies[shard] = await _wait_shard_converged(
                client.clients[shard],
                shard=shard,
                expect_committed=client.sets_by_shard[shard],
                nudge_key=key_for_shard(f"nudge-{seed}-", shard, shards),
                restarted=kill_pid if shard == kill_shard else None,
                timeout=converge_timeout,
            )

        for shard, key in sorted(sentinels.items()):
            found, value = await client.get(key)
            if not found or value != f"s{seed}-{shard}":
                raise ShardClusterError(
                    f"quorum get of shard {shard} sentinel returned "
                    f"{(found, value)!r}, expected (True, 's{seed}-{shard}')"
                )

        # Blast radius: the kill in one shard must not have cost the
        # untouched shards a single already-committed command.
        for shard, before in committed_before_kill.items():
            now = min(s.committed for s in shard_replies[shard].values())
            if now < before:
                raise ShardClusterError(
                    f"shard {shard} regressed from {before} to {now} "
                    f"committed commands after the kill in shard {kill_shard}"
                )

        verdict = {
            "ok": True,
            "shards": shards,
            "replicas_per_shard": replicas_per_shard,
            "killed": {"shard": kill_shard, "pid": kill_pid},
            "workload": requests,
            "committed": client.sets_completed,
            "sets_by_shard": dict(sorted(client.sets_by_shard.items())),
            "resubmissions": client.resubmissions,
            "digests": {
                shard: next(iter(replies.values())).digest
                for shard, replies in sorted(shard_replies.items())
            },
            "transfers": {
                shard: {
                    pid: status.transfers
                    for pid, status in sorted(replies.items())
                }
                for shard, replies in sorted(shard_replies.items())
            },
            "workdir": str(workdir),
        }
    finally:
        await client.close()
        exit_codes = cluster.terminate_all()
        if owned_tmp is not None:
            owned_tmp.cleanup()
    verdict["exit_codes"] = exit_codes
    bad = {
        (shard, pid): code
        for shard, codes in exit_codes.items()
        for pid, code in codes.items()
        if code != 0
    }
    if bad:
        raise ShardClusterError(
            f"replicas exited non-zero at shutdown: "
            f"{ {f's{s}/p{p}': c for (s, p), c in sorted(bad.items())} }"
        )
    # Cross-shard isolation: disjoint key material must yield disjoint
    # states — two shards with identical digests would mean the map
    # routed the same history to both.
    digests = list(verdict["digests"].values())
    if len(set(digests)) != len(digests):
        raise ShardClusterError(
            f"distinct shards report identical state digests: {digests}"
        )
    return verdict
