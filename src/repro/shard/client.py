"""Sharded TCP client: route by key, then trust f+1 per group as before.

A :class:`ShardedNetClient` is a thin routing layer over one ordinary
:class:`~repro.net.client.NetClient` per shard. The per-group trust
rules are untouched — ``set`` still needs f+1 distinct acks *from the
key's shard*, ``get`` still needs f+1 matching replies, exactly-once
dedup still lives in each group's replicas — because a key's entire
history lives in exactly one group: the deterministic map
(:mod:`repro.shard.keymap`) is the only cross-shard agreement needed,
and it is a pure function every participant computes identically.

The client carries the *same* client index in every shard (each group
has its own pid space, so the identities are per-group pids that never
meet), and aggregates its counters across shards for orchestration.
"""

from __future__ import annotations

from typing import Any

from repro.net.client import NetClient
from repro.net.messages import StatusReply
from repro.shard.genesis import ShardGenesis


class ShardedNetClient:
    """One client identity in every shard of a deployment."""

    def __init__(self, genesis: ShardGenesis, client_index: int = 0) -> None:
        genesis.validate()
        self.genesis = genesis
        self.clients: dict[int, NetClient] = {
            shard: NetClient(genesis.genesis_for(shard), client_index)
            for shard in range(genesis.n_shards)
        }
        #: Commands this client routed to each shard (sets only — the
        #: per-shard exactly-once oracle compares these against the
        #: shard replicas' committed counts).
        self.sets_by_shard: dict[int, int] = {
            shard: 0 for shard in range(genesis.n_shards)
        }

    # -- aggregated counters ----------------------------------------------

    @property
    def sets_completed(self) -> int:
        return sum(client.sets_completed for client in self.clients.values())

    @property
    def gets_completed(self) -> int:
        return sum(client.gets_completed for client in self.clients.values())

    @property
    def resubmissions(self) -> int:
        return sum(client.resubmissions for client in self.clients.values())

    # -- routing -----------------------------------------------------------

    def shard_for(self, key: str) -> int:
        return self.genesis.shard_of(key)

    def client_for(self, key: str) -> NetClient:
        return self.clients[self.shard_for(key)]

    # -- operations --------------------------------------------------------

    async def set(self, key: str, value: Any, *, attempts: int = 40) -> int:
        """Commit ``set key=value`` in the key's shard; returns the slot."""
        shard = self.shard_for(key)
        slot = await self.clients[shard].set(key, value, attempts=attempts)
        self.sets_by_shard[shard] += 1
        return slot

    async def get(self, key: str, *, attempts: int = 40) -> tuple[bool, Any]:
        """Quorum read from the key's shard (f+1 matching replies)."""
        return await self.client_for(key).get(key, attempts=attempts)

    async def status(
        self, *, timeout: float = 1.0
    ) -> dict[int, dict[int, StatusReply]]:
        """Best-effort per-replica status, grouped by shard."""
        return {
            shard: await client.status(timeout=timeout)
            for shard, client in sorted(self.clients.items())
        }

    async def workload(
        self,
        count: int,
        *,
        concurrency: int = 8,
        key_space: int | None = None,
        tag: str = "w",
    ) -> dict[str, Any]:
        """Issue ``count`` sets across the key space; returns stats.

        Keys cycle through ``k0..k{space-1}`` exactly like the
        single-group workload driver; the hash map spreads them over the
        shards, so the offered load is identical whatever the shard
        count — the property the scaling benchmark depends on.
        """
        import asyncio

        space = key_space or self.genesis.key_space
        loop = asyncio.get_running_loop()
        semaphore = asyncio.Semaphore(concurrency)
        latencies: list[float] = []
        pid = next(iter(self.clients.values())).pid

        async def one(index: int) -> None:
            async with semaphore:
                started = loop.time()
                await self.set(f"k{index % space}", f"{tag}{pid}-{index}")
                latencies.append(loop.time() - started)

        await asyncio.gather(*(one(index) for index in range(count)))
        latencies.sort()
        return {
            "issued": count,
            "completed": len(latencies),
            "resubmissions": self.resubmissions,
            "sets_by_shard": dict(sorted(self.sets_by_shard.items())),
            "latency_p50": latencies[len(latencies) // 2] if latencies else 0.0,
            "latency_max": latencies[-1] if latencies else 0.0,
        }

    async def close(self) -> None:
        for client in self.clients.values():
            await client.close()
