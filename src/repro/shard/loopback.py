"""The sharded loopback twin: a whole multi-group deployment, one process.

Real :class:`~repro.net.node.NetNode` hosts and the real wire codec on
every hop, per shard, exactly like the single-group loopback twin — but
*all* shards share one :class:`~repro.net.clock.ManualScheduler`, so the
groups genuinely run side by side in virtual time while the whole run
stays a pure function of the shard genesis and the workload schedule.
That buys two things:

* **byte-identical smoke records** — :func:`run_loopback_smoke` returns
  a canonical record that two runs reproduce bit for bit (the
  ``make shard-smoke`` double-run ``cmp`` pins it), kill/rejoin and all;
* **an honest scaling measurement in virtual time** — the benchmark's
  sweep (:func:`loopback_scaling_cell`) offers the *same* request
  schedule whatever the shard count and reads off the virtual completion
  time: with one group every command queues behind one total order, with
  S groups each order carries ~1/S of the keys, and the aggregate
  throughput is the ratio the E21 acceptance bar checks.

Each shard gets its own :class:`~repro.net.transport.LoopbackHub` — pid
spaces are group-local, and two groups must not share a fabric any more
than they share a total order. Routing happens in the client layer only,
via the same deterministic map the TCP client uses.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.net.clock import ManualScheduler
from repro.net.genesis import Genesis
from repro.net.node import NetNode
from repro.net.transport import LoopbackHub
from repro.net.wire import WireError, encode_frame
from repro.observability.registry import MODULE_SHARD, MetricsRegistry
from repro.replication.kvstore import Command
from repro.service.checkpoint import service_digest
from repro.service.messages import ClientReply, ClientRequest
from repro.shard.genesis import ShardGenesis

#: Fixed fake ports: the loopback fabric never binds a socket, but the
#: genesis schema wants addresses — fixed ones keep every shard genesis
#: id (hence every hello MAC) identical across runs, which the
#: byte-identity contract depends on. Shards get disjoint port ranges.
_PORT_BASE = 30001
_PORT_STRIDE = 100

#: Extra virtual seconds a run may settle past its workload window.
SETTLE_BUDGET = 120.0

#: Per-hop virtual latency of the shard twin's fabric (seconds).
HOP_DELAY = 0.005


class LatencyHub(LoopbackHub):
    """A :class:`LoopbackHub` whose every hop costs virtual time.

    The stock hub drains at zero delay, which is perfect for protocol
    correctness tests but useless for a *scaling* measurement: with free
    messages a group orders any backlog within one scheduler step, so
    virtual time cannot show the per-group ordering pipeline saturating.
    Charging a fixed ``delay`` per hop makes a protocol round cost what
    a round costs — a few hops — and the group's commit rate becomes
    ``window``-bounded the way a real deployment's is. Determinism is
    preserved: same schedule, same delays, same run.

    ``link_delays`` overrides the uniform ``delay`` per *directed* link,
    which is what heterogeneous deployments look like — one replica
    behind a slow WAN hop, asymmetric routes, a laggard rack. Per-
    ``(src, dst)`` FIFO order survives either way because a given link's
    delay is constant, so a link never reorders its own traffic; with
    heterogeneous delays *cross-link* interleavings shift, exactly the
    effect being modelled. The uniform default (``link_delays=None``)
    takes the same code path as before and stays byte-identical.
    """

    def __init__(
        self,
        scheduler: Any,
        *,
        delay: float = HOP_DELAY,
        link_delays: Mapping[tuple[int, int], float] | None = None,
    ) -> None:
        super().__init__(scheduler)
        self.delay = delay
        self.link_delays = dict(link_delays) if link_delays else None

    def delay_for(self, src: int, dst: int) -> float:
        """The virtual latency charged on the directed link ``src→dst``."""
        if self.link_delays is not None:
            return self.link_delays.get((src, dst), self.delay)
        return self.delay

    def submit(self, src: int, dst: int, payload: Any) -> None:
        delay = self.delay_for(src, dst)
        if delay <= 0.0:
            super().submit(src, dst, payload)
            return
        try:
            frame = encode_frame(payload)
        except WireError:
            self.frames_rejected += 1
            return
        self._scheduler.schedule_after(
            delay,
            "loopback-hop",
            lambda: self._arrive(src, dst, frame),
        )

    def _arrive(self, src: int, dst: int, frame: bytes) -> None:
        self._queue.append((src, dst, frame))
        self._drain()


def loopback_shard_genesis(
    n_shards: int,
    replicas_per_shard: int = 4,
    *,
    seed: int = 0,
    clients: int = 1,
    name: str = "shard-loopback",
    **overrides: Any,
) -> ShardGenesis:
    """A fixed-address shard genesis for deterministic in-process runs."""
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    addresses = tuple(
        tuple(
            ("127.0.0.1", _PORT_BASE + shard * _PORT_STRIDE + pid)
            for pid in range(replicas_per_shard)
        )
        for shard in range(n_shards)
    )
    knobs: dict[str, Any] = {
        "request_timeout": 0.6,
        "stall_probe": 2.0,
        "metrics_interval": 0.0,
    }
    knobs.update(overrides)
    genesis = ShardGenesis(
        name=name,
        seed=seed,
        n_shards=n_shards,
        replicas_per_shard=replicas_per_shard,
        max_clients=max(1, clients),
        addresses=addresses,
        **knobs,
    )
    genesis.validate()
    return genesis


class _ShardClient:
    """One client identity on one shard's hub: f+1 acks, resubmits."""

    def __init__(
        self,
        genesis: Genesis,
        hub: LoopbackHub,
        scheduler: ManualScheduler,
        index: int,
    ) -> None:
        self.genesis = genesis
        self.pid = genesis.n_replicas + index
        self.f = genesis.service_config().params().f
        self.scheduler = scheduler
        self.transport = hub.register(self.pid, self._on_message)
        self.next_id = 0
        self.outstanding: dict[int, ClientRequest] = {}
        self.attempts: dict[int, int] = {}
        self.acks: dict[int, set[int]] = {}
        self.completed: set[int] = set()

    def _on_message(self, src: int, message: Any) -> None:
        if isinstance(message, ClientReply) and message.client == self.pid:
            if message.req_id in self.completed:
                return
            self.acks.setdefault(message.req_id, set()).add(message.replica)
            if len(self.acks[message.req_id]) >= self.f + 1:
                self.completed.add(message.req_id)
                self.outstanding.pop(message.req_id, None)

    def set(self, key: str, value: str) -> int:
        req_id = self.next_id
        self.next_id += 1
        request = ClientRequest(
            client=self.pid, req_id=req_id, command=Command("set", key, value)
        )
        self.outstanding[req_id] = request
        self.attempts[req_id] = 0
        self._submit(req_id)
        return req_id

    def _submit(self, req_id: int) -> None:
        request = self.outstanding.get(req_id)
        if request is None:
            return
        attempt = self.attempts[req_id]
        self.attempts[req_id] += 1
        target = (self.pid + req_id + attempt) % self.genesis.n_replicas
        self.transport.send(target, request)
        self.scheduler.schedule_after(
            self.genesis.request_timeout,
            "resubmit",
            lambda: self._submit(req_id),
        )


class ShardedLoopbackCluster:
    """Every shard's nodes and clients on one deterministic clock."""

    def __init__(
        self,
        genesis: ShardGenesis,
        *,
        clients: int = 1,
        hop_delay: float = HOP_DELAY,
        link_delays: Mapping[tuple[int, int], float] | None = None,
    ) -> None:
        genesis.validate()
        if not 1 <= clients <= genesis.max_clients:
            raise ConfigurationError(
                f"clients must be in 1..{genesis.max_clients}, got {clients}"
            )
        self.genesis = genesis
        self.scheduler = ManualScheduler()
        self.metrics = MetricsRegistry()
        self.hubs: dict[int, LoopbackHub] = {}
        self.nodes: dict[int, dict[int, NetNode]] = {}
        #: shard -> client index -> in-process client.
        self.clients: dict[int, dict[int, _ShardClient]] = {}
        #: shard -> sets routed there (the exactly-once expectation).
        self.routed: dict[int, int] = {
            shard: 0 for shard in range(genesis.n_shards)
        }
        self._issued = 0
        # Per-link overrides apply to every shard's fabric alike: the
        # pid space is group-local, so one map describes "replica 0 is
        # behind a slow hop" for each group without enumerating shards.
        for shard in range(genesis.n_shards):
            hub = LatencyHub(
                self.scheduler, delay=hop_delay, link_delays=link_delays
            )
            self.hubs[shard] = hub
            self.nodes[shard] = {}
            for pid in range(genesis.replicas_per_shard):
                self._up(shard, pid)
            self.clients[shard] = {
                index: _ShardClient(
                    genesis.genesis_for(shard), hub, self.scheduler, index
                )
                for index in range(clients)
            }

    # -- node lifecycle ----------------------------------------------------

    def _up(self, shard: int, pid: int, *, join: bool = False) -> None:
        node = NetNode(
            self.genesis.genesis_for(shard), pid, self.scheduler, join=join
        )
        node.attach_transport(
            self.hubs[shard].register(pid, node.handle_message)
        )
        self.nodes[shard][pid] = node
        node.start()

    def kill(self, shard: int, pid: int) -> None:
        """Crash semantics: volatile state lost, timers orphaned."""
        node = self.nodes[shard].pop(pid, None)
        if node is None:
            return
        self.hubs[shard].unregister(pid)
        node.process.go_down()

    def rejoin(self, shard: int, pid: int) -> None:
        """Fresh node with ``join=True``: certified transfer is the way back."""
        self._up(shard, pid, join=True)

    # -- workload ----------------------------------------------------------

    def submit(self, key: str, value: str, *, client: int = 0) -> int:
        """Route one set to its shard's client; returns the shard."""
        shard = self.genesis.shard_of(key)
        self.clients[shard][client].set(key, value)
        self.routed[shard] += 1
        self._issued += 1
        self.metrics.inc(MODULE_SHARD, "commands_routed", pid=shard)
        return shard

    def schedule_workload(
        self, requests: int, *, span: float, clients: int = 1, key_space: int = 64
    ) -> None:
        """Spread ``requests`` sets over ``span`` virtual seconds.

        Request ``i`` goes to client ``i % clients`` at time
        ``i / requests * span`` with key ``k{i % key_space}`` — the
        schedule (hence the offered load) is independent of the shard
        count; only the routing differs.
        """
        for index in range(requests):
            at = (index / requests) * span
            self.scheduler.schedule_after(
                at,
                "shard-request",
                lambda i=index: self.submit(
                    f"k{i % key_space}", f"v{i}", client=i % clients
                ),
            )

    # -- progress ----------------------------------------------------------

    def completed(self) -> int:
        return sum(
            len(client.completed)
            for per_shard in self.clients.values()
            for client in per_shard.values()
        )

    def pump(self, seconds: float, *, step: float = 0.1) -> None:
        for _ in range(int(round(seconds / step))):
            self.scheduler.advance(step)

    def run_until_complete(self, *, budget: float, step: float = 0.1) -> bool:
        """Advance until every issued request completed; True on success."""
        spent = 0.0
        while spent < budget:
            if self.completed() >= self._issued and self._issued > 0:
                return True
            self.scheduler.advance(step)
            spent += step
        return self.completed() >= self._issued

    # -- per-shard verdicts ------------------------------------------------

    def shard_committed(self, shard: int) -> dict[int, int]:
        return {
            pid: node.process.committed_commands
            for pid, node in sorted(self.nodes[shard].items())
        }

    def shard_digests(self, shard: int) -> dict[int, str]:
        return {
            pid: service_digest(node.process.store, node.process.executed)
            for pid, node in sorted(self.nodes[shard].items())
        }

    def shard_converged(self, shard: int) -> bool:
        """Digest agreement + exactly-once against the routed count."""
        nodes = self.nodes[shard]
        if len(nodes) < self.genesis.replicas_per_shard:
            return False
        if len(set(self.shard_digests(shard).values())) != 1:
            return False
        return all(
            count == self.routed[shard]
            for count in self.shard_committed(shard).values()
        )

    def converged(self) -> bool:
        return all(
            self.shard_converged(shard)
            for shard in range(self.genesis.n_shards)
        )

    def settle(self, *, budget: float = SETTLE_BUDGET, step: float = 0.1) -> bool:
        spent = 0.0
        while spent < budget:
            if self.completed() >= self._issued and self.converged():
                return True
            self.scheduler.advance(step)
            spent += step
        return self.completed() >= self._issued and self.converged()


def run_loopback_smoke(
    *,
    shards: int = 2,
    replicas_per_shard: int = 4,
    requests: int = 24,
    seed: int = 0,
    kill_shard: int | None = 1,
    kill_pid: int = 2,
    key_space: int = 16,
) -> dict[str, Any]:
    """The deterministic half of ``make shard-smoke``: one canonical record.

    Runs the full multi-group deployment in-process — workload, one
    kill + rejoin inside ``kill_shard`` (``None`` disables it), per-shard
    convergence — and reduces it to a record whose canonical JSON
    (:func:`smoke_json`) is byte-identical across runs.
    """
    if kill_shard is not None and not 0 <= kill_shard < shards:
        raise ConfigurationError(
            f"kill_shard {kill_shard} outside the shard range 0..{shards - 1}"
        )
    genesis = loopback_shard_genesis(
        shards, replicas_per_shard, seed=seed, key_space=key_space
    )
    cluster = ShardedLoopbackCluster(genesis)
    span = 12.0
    cluster.schedule_workload(requests, span=span, key_space=key_space)
    if kill_shard is not None:
        cluster.scheduler.schedule_after(
            span * 0.3, "shard-kill", lambda: cluster.kill(kill_shard, kill_pid)
        )
        cluster.scheduler.schedule_after(
            span * 0.6,
            "shard-rejoin",
            lambda: cluster.rejoin(kill_shard, kill_pid),
        )
    cluster.pump(span)
    settled = cluster.settle()
    transfers = {}
    if kill_shard is not None:
        node = cluster.nodes[kill_shard].get(kill_pid)
        transfers = {
            str(kill_shard): {
                str(kill_pid): (
                    len(node.process.state_transfers_completed)
                    if node is not None
                    else 0
                )
            }
        }
    record = {
        "kind": "shard-loopback-smoke",
        "shards": shards,
        "replicas_per_shard": replicas_per_shard,
        "seed": seed,
        "requests": requests,
        "key_space": key_space,
        "kill": (
            {"shard": kill_shard, "pid": kill_pid}
            if kill_shard is not None
            else None
        ),
        "shard_genesis_id": genesis.shard_genesis_id(),
        "genesis_ids": {
            str(shard): genesis.genesis_for(shard).genesis_id()
            for shard in range(shards)
        },
        "completed": cluster.completed(),
        "routed": {
            str(shard): count for shard, count in sorted(cluster.routed.items())
        },
        "committed": {
            str(shard): {
                str(pid): count
                for pid, count in cluster.shard_committed(shard).items()
            }
            for shard in range(shards)
        },
        "digests": {
            str(shard): {
                str(pid): digest
                for pid, digest in cluster.shard_digests(shard).items()
            }
            for shard in range(shards)
        },
        "transfers": transfers,
        "end_time": round(cluster.scheduler.now, 9),
        "converged": cluster.converged(),
        "ok": bool(
            settled
            and cluster.converged()
            and (
                kill_shard is None
                or transfers[str(kill_shard)][str(kill_pid)] >= 1
            )
        ),
    }
    return record


def smoke_json(record: dict[str, Any]) -> str:
    """Canonical JSON: byte-identical for identical deterministic runs."""
    return (
        json.dumps(record, indent=2, sort_keys=True, separators=(",", ": "))
        + "\n"
    )


def loopback_scaling_cell(
    *,
    shards: int,
    clients: int = 4,
    requests: int = 768,
    replicas_per_shard: int = 4,
    seed: int = 0,
    key_space: int = 64,
    span: float = 0.0,
    hop_delay: float = 0.02,
    budget: float = 600.0,
    step: float = 0.05,
    **overrides: Any,
) -> dict[str, Any]:
    """One deterministic E21 sweep cell: same offered load, S groups.

    All ``requests`` sets are offered as an open-loop burst (``span`` 0)
    across ``clients`` client identities, so the system — not the
    schedule — is the bottleneck; the cell reads off the virtual time
    until the last command has its f+1th ack, plus the per-shard
    convergence + exactly-once oracles. The default knobs deliberately
    shrink per-group capacity (service-default ``batch_size=4`` /
    ``window=2``) and charge :class:`LatencyHub` hops, so the one-group
    ordering pipeline genuinely saturates at a load the benchmark can
    afford to run.
    """
    knobs: dict[str, Any] = {
        "batch_size": 4,
        "window": 2,
        "request_timeout": 3.0,
    }
    knobs.update(overrides)
    genesis = loopback_shard_genesis(
        shards,
        replicas_per_shard,
        seed=seed,
        clients=clients,
        key_space=key_space,
        **knobs,
    )
    cluster = ShardedLoopbackCluster(
        genesis, clients=clients, hop_delay=hop_delay
    )
    cluster.schedule_workload(
        requests, span=span, clients=clients, key_space=key_space
    )
    cluster.pump(span)
    done = cluster.run_until_complete(budget=budget, step=step)
    # The throughput denominator stops the moment the last client request
    # has its f+1th ack; the convergence check afterwards may advance the
    # clock further, but that settling time is not service time.
    complete_at = cluster.scheduler.now
    converged = cluster.settle(budget=60.0)
    return {
        "shards": shards,
        "clients": clients,
        "requests": requests,
        "replicas_per_shard": replicas_per_shard,
        "routed": {
            str(shard): count for shard, count in sorted(cluster.routed.items())
        },
        "completed": cluster.completed(),
        "virtual_time": round(complete_at, 9),
        "throughput": (
            round(cluster.completed() / complete_at, 9)
            if complete_at > 0
            else 0.0
        ),
        "all_complete": done,
        "converged": converged,
        "exactly_once": all(
            cluster.shard_converged(shard) for shard in range(shards)
        ),
    }
