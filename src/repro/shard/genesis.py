"""The shard genesis: one JSON document pinning a multi-group deployment.

A sharded deployment is a *set* of ordinary single-group deployments
plus a routing rule. The :class:`ShardGenesis` artifact pins exactly
that and nothing more: the shard count, the per-shard replica addresses,
the shared runtime knobs, and (implicitly, by construction) the
deterministic key→shard map of :mod:`repro.shard.keymap`. Everything
below the routing layer is the unmodified single-group machinery —
``genesis_for(shard)`` derives a perfectly ordinary
:class:`~repro.net.genesis.Genesis` per group, so replicas, clients,
checkpoints and certified state transfer run verbatim.

Isolation is structural, not aspirational:

* each shard's genesis gets its own derived seed
  (:func:`~repro.shard.keymap.shard_seed`), so key material — and with
  it every signature and certificate domain — is disjoint across shards;
* each shard's genesis gets its own name (``{name}/s{shard}``) and hence
  its own content hash, so the MAC'd hello handshake makes replicas of
  different shards refuse to talk even if misaddressed.

Like the single-group genesis, the document is content-addressed
(:meth:`ShardGenesis.shard_genesis_id`) and persists as validated JSON:
malformed or inconsistent documents raise
:class:`~repro.errors.ConfigurationError`, which the CLI turns into
exit status 2.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

from repro.crypto.encoding import canonical_bytes
from repro.errors import ConfigurationError
from repro.net.genesis import Genesis
from repro.shard.keymap import shard_of, shard_seed


@dataclass(frozen=True, slots=True)
class ShardGenesis:
    """Everything a sharded deployment's participants need to agree on."""

    name: str = "sharded"
    seed: int = 0
    n_shards: int = 2
    replicas_per_shard: int = 4
    #: Explicit per-shard fault bound; ``None`` derives F from replicas.
    f: int | None = None
    #: Client identity space *per shard* (a sharded client holds one
    #: identity in every group).
    max_clients: int = 4
    #: ``addresses[shard][replica] == (host, port)``.
    addresses: tuple[tuple[tuple[str, int], ...], ...] = ()
    # -- runtime knobs shared by every shard, in wall-clock seconds ------
    batch_size: int = 8
    batch_delay: float = 0.05
    window: int = 4
    checkpoint_interval: int = 4
    muteness_timeout: float = 1.5
    transfer_retry: float = 0.5
    stall_probe: float = 3.0
    request_timeout: float = 1.5
    metrics_interval: float = 2.0
    key_space: int = 64

    # -- validation ------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on any inconsistency."""
        if not self.name:
            raise ConfigurationError("shard genesis name must be non-empty")
        if self.n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be >= 1, got {self.n_shards}"
            )
        if len(self.addresses) != self.n_shards:
            raise ConfigurationError(
                f"shard genesis lists addresses for {len(self.addresses)} "
                f"shards, expected {self.n_shards}"
            )
        for shard, group in enumerate(self.addresses):
            if len(group) != self.replicas_per_shard:
                raise ConfigurationError(
                    f"shard {shard} lists {len(group)} addresses for "
                    f"{self.replicas_per_shard} replicas"
                )
        seen: dict[tuple[str, int], tuple[int, int]] = {}
        for shard, group in enumerate(self.addresses):
            for pid, address in enumerate(group):
                if address in seen:
                    raise ConfigurationError(
                        f"address {address[0]}:{address[1]} assigned to both "
                        f"shard {seen[address][0]} replica {seen[address][1]} "
                        f"and shard {shard} replica {pid}"
                    )
                seen[address] = (shard, pid)
        # Every shard-local constraint (ports, client counts, knob
        # ranges, resilience arithmetic) is the single-group check,
        # applied to each derived genesis.
        for shard in range(self.n_shards):
            self.genesis_for(shard).validate()

    # -- derived views ---------------------------------------------------

    def shard_of(self, key: str) -> int:
        """The shard that orders every command touching ``key``."""
        return shard_of(key, self.n_shards)

    def genesis_for(self, shard: int) -> Genesis:
        """The ordinary single-group genesis of one shard."""
        if not 0 <= shard < self.n_shards:
            raise ConfigurationError(
                f"shard {shard} outside the shard range 0..{self.n_shards - 1}"
            )
        return Genesis(
            name=f"{self.name}/s{shard}",
            seed=shard_seed(self.seed, shard),
            n_replicas=self.replicas_per_shard,
            f=self.f,
            max_clients=self.max_clients,
            addresses=tuple(self.addresses[shard]),
            batch_size=self.batch_size,
            batch_delay=self.batch_delay,
            window=self.window,
            checkpoint_interval=self.checkpoint_interval,
            muteness_timeout=self.muteness_timeout,
            transfer_retry=self.transfer_retry,
            stall_probe=self.stall_probe,
            request_timeout=self.request_timeout,
            metrics_interval=self.metrics_interval,
            key_space=self.key_space,
        )

    def shard_genesis_id(self) -> str:
        """Content hash binding every participant to this exact document."""
        payload = canonical_bytes(
            tuple(sorted(self.to_json().items(), key=repr))
        )
        return hashlib.sha256(payload).hexdigest()[:16]

    # -- persistence -----------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        data = asdict(self)
        data["addresses"] = [
            [list(address) for address in group] for group in self.addresses
        ]
        return data

    @classmethod
    def from_json(cls, data: Any) -> "ShardGenesis":
        if not isinstance(data, dict):
            raise ConfigurationError(
                "shard genesis document must be a JSON object"
            )
        known = {field for field in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown shard genesis keys: {sorted(unknown)}"
            )
        kwargs = dict(data)
        if "addresses" in kwargs:
            try:
                kwargs["addresses"] = tuple(
                    tuple((str(host), int(port)) for host, port in group)
                    for group in kwargs["addresses"]
                )
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"malformed shard genesis addresses: {exc}"
                ) from exc
        try:
            genesis = cls(**kwargs)
        except TypeError as exc:
            raise ConfigurationError(f"malformed shard genesis: {exc}") from exc
        genesis.validate()
        return genesis

    def save(self, path: str | Path) -> Path:
        self.validate()
        target = Path(path)
        target.write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target

    @classmethod
    def load(cls, path: str | Path) -> "ShardGenesis":
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(f"cannot read shard genesis: {exc}") from exc
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"shard genesis is not valid JSON: {exc}"
            ) from exc
        return cls.from_json(data)
