"""The deterministic key→shard map: one hash, every process agrees.

Sharding only works if *every* participant — clients, orchestrators,
benchmarks, operators on other machines — routes a key to the same
group without coordination. The map is therefore a pure function of the
key bytes and the shard count, built on SHA-256 rather than Python's
``hash()`` (which is salted per process): two processes that disagree on
``shard_of`` would split one key's history across two total orders.

The map is intentionally *not* consistent hashing: a shard genesis pins
``n_shards`` for the deployment's lifetime (changing the shard count is
a new deployment with a new content hash), so stability-under-resize is
a non-goal and the plain modulus keeps the routing contract auditable:

    shard_of(key, n) = int(sha256(utf8(key))[:8]) mod n
"""

from __future__ import annotations

import hashlib

from repro.errors import ConfigurationError

#: Bytes of the SHA-256 digest folded into the routing integer. 64 bits
#: keeps the modulus bias below 2^-60 for any realistic shard count.
_DIGEST_BYTES = 8


def key_weight(key: str) -> int:
    """The 64-bit routing integer of ``key`` (before the modulus)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:_DIGEST_BYTES], "big")


def shard_of(key: str, n_shards: int) -> int:
    """The shard that orders every command touching ``key``."""
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    return key_weight(key) % n_shards


def shard_seed(seed: int, shard: int) -> int:
    """The genesis seed of one shard, derived from the deployment seed.

    Each shard must own *disjoint* key material: per-process HMAC keys
    derive from ``(seed, pid)`` (:mod:`repro.crypto.keys`), so two shards
    sharing a seed would share signing keys, and a replica of one group
    could forge certificates for another. The prime stride keeps the
    affine signature domains (``seed·1000003 + slot`` and friends,
    :mod:`repro.net.genesis`) of neighbouring shards far apart.
    """
    if shard < 0:
        raise ConfigurationError(f"shard must be >= 0, got {shard}")
    return seed + (shard + 1) * 1_000_033


def key_for_shard(prefix: str, shard: int, n_shards: int, *, limit: int = 100_000) -> str:
    """A key ``{prefix}{i}`` that routes to ``shard`` (smallest ``i``).

    Orchestration needs shard-addressed keys (per-shard sentinels and
    convergence nudges); with a uniform map the expected scan length is
    ``n_shards`` tries, and the ``limit`` is an unreachable safety net.
    """
    if not 0 <= shard < n_shards:
        raise ConfigurationError(
            f"shard {shard} outside the shard range 0..{n_shards - 1}"
        )
    for index in range(limit):
        candidate = f"{prefix}{index}"
        if shard_of(candidate, n_shards) == shard:
            return candidate
    raise ConfigurationError(  # pragma: no cover - astronomically unlikely
        f"no key with prefix {prefix!r} routes to shard {shard} "
        f"within {limit} candidates"
    )


def route_counts(keys, n_shards: int) -> dict[int, int]:
    """How many of ``keys`` land on each shard (all shards present)."""
    counts = {shard: 0 for shard in range(n_shards)}
    for key in keys:
        counts[shard_of(key, n_shards)] += 1
    return counts
