"""Signing and verifying structured values.

Builds on :mod:`repro.crypto.keys` and :mod:`repro.crypto.encoding` to sign
arbitrary canonicalizable values. The :meth:`SignatureScheme.forge` helper
exists purely so Byzantine behaviours can *attempt* forgery and exercise
the rejection path; forged signatures verify with probability ~2^-256.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

from repro.crypto.cache import SignatureCache, caching_enabled
from repro.crypto.encoding import canonical_bytes
from repro.crypto.keys import KeyAuthority, Signer


@dataclass(frozen=True, slots=True)
class Signature:
    """A signature: the claimed signer identity plus the MAC bytes."""

    signer: int
    mac: bytes

    def canonical(self) -> Any:
        return (self.signer, self.mac)


class SignatureScheme:
    """Signs and verifies canonicalizable values for a fixed process set."""

    def __init__(
        self, authority: KeyAuthority, cache: SignatureCache | None = None
    ) -> None:
        self._authority = authority
        self._cache = cache if cache is not None else SignatureCache()

    @property
    def authority(self) -> KeyAuthority:
        return self._authority

    @property
    def cache(self) -> SignatureCache:
        """The verdict cache consulted by :meth:`verify_digest`."""
        return self._cache

    def sign(self, signer: Signer, value: Any) -> Signature:
        """Sign ``value`` with the capability ``signer``."""
        return Signature(signer=signer.pid, mac=signer.sign(canonical_bytes(value)))

    def verify(self, value: Any, signature: Signature) -> bool:
        """True iff ``signature`` is valid for ``value`` under its claimed signer."""
        return self._authority.verify(
            signature.signer, canonical_bytes(value), signature.mac
        )

    def verify_digest(
        self, data: bytes, digest: bytes, signature: Signature
    ) -> bool:
        """Cached :meth:`verify` over pre-encoded bytes and their digest.

        ``digest`` must be the SHA-256 of ``data``; callers that memoize
        it per envelope (:class:`~repro.core.certificates.SignedMessage`)
        turn every repeat verification into a dict lookup. The cache key
        includes the authority's key domain, the claimed signer and the
        MAC, so a hit is exactly as discriminating as the real check
        (safety argument: :mod:`repro.crypto.cache`).
        """
        if not caching_enabled():
            return self._authority.verify(signature.signer, data, signature.mac)
        key = (self._authority.domain, signature.signer, digest, signature.mac)
        verdict = self._cache.lookup(key)
        if verdict is None:
            verdict = self._authority.verify(signature.signer, data, signature.mac)
            self._cache.store(key, verdict)
        return verdict

    def forge(self, claimed_signer: int, value: Any, nonce: int = 0) -> Signature:
        """Produce a *bogus* signature claiming ``claimed_signer`` signed ``value``.

        Used by Byzantine behaviours to attack the signature module; the
        result never verifies (except with negligible probability), which
        is precisely the unforgeability assumption of the model.
        """
        fake = hashlib.sha256(
            b"forgery" + nonce.to_bytes(8, "big") + canonical_bytes(value)
        ).digest()
        return Signature(signer=claimed_signer, mac=fake)
