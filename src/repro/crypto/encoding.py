"""Canonical byte encoding of message values.

Signatures are computed over a *canonical* encoding so that two equal
values always produce identical bytes (and two different values different
bytes). The encoding is a simple tag-length-value scheme over the small
vocabulary of types that protocol messages are built from.

Objects may participate by implementing ``canonical()`` returning a value
built from that vocabulary; dataclass-based messages do this generically.

Performance (docs/PERFORMANCE.md): this function dominates the simulator
profile — every signature check and certificate fingerprint re-encodes
nested message trees. Two optimizations keep it off the flame graph
without changing a single output byte:

* object dispatch via ``getattr(value, "canonical", ...)`` instead of an
  ``isinstance`` check against a ``runtime_checkable`` Protocol (the
  protocol instance check walks ``typing`` internals on every call and
  alone accounted for ~30% of a certificate-heavy run);
* a per-object memo of the finished encoding, stored in the instance
  ``__dict__`` of objects that have one (immutable envelopes opt in by
  not declaring ``__slots__``). The memo is sound because participating
  objects are frozen: equal object, equal bytes, forever. The global
  kill-switch in :mod:`repro.crypto.cache` disables the memo for honest
  benchmark baselines.
"""

from __future__ import annotations

from typing import Any, Iterable, Protocol, runtime_checkable

from repro.crypto import cache as _cache
from repro.errors import EncodingError

#: Instance-dict key of the per-object encoding memo.
_MEMO_ATTR = "_canonical_memo"


@runtime_checkable
class Canonicalizable(Protocol):
    """Objects that can describe themselves as encodable structure."""

    def canonical(self) -> Any:  # pragma: no cover - protocol stub
        ...


def canonical_bytes(value: Any) -> bytes:
    """Deterministically encode ``value`` to bytes.

    Supported vocabulary: ``None``, ``bool``, ``int``, ``float``, ``str``,
    ``bytes``, ``tuple``/``list`` (order-preserving), ``dict`` (sorted by
    encoded key), ``set``/``frozenset`` (sorted by encoding), and any
    object exposing ``canonical()``.
    """
    return _encode(value)


def tuple_bytes(payloads: Iterable[bytes]) -> bytes:
    """The encoding of a tuple whose items are already encoded.

    ``tuple_bytes(map(canonical_bytes, items)) == canonical_bytes(tuple(items))``
    — lets certificate fingerprints reuse per-entry memoized encodings.
    """
    return _tlv(b"T", b"".join(payloads))


def _tlv(tag: bytes, payload: bytes) -> bytes:
    return tag + len(payload).to_bytes(8, "big") + payload


def _encode(value: Any) -> bytes:
    if value is None:
        return _tlv(b"N", b"")
    if isinstance(value, bool):  # must precede int: bool is an int subclass
        return _tlv(b"B", b"\x01" if value else b"\x00")
    if isinstance(value, int):
        return _tlv(b"I", str(value).encode("ascii"))
    if isinstance(value, float):
        return _tlv(b"F", value.hex().encode("ascii"))
    if isinstance(value, str):
        return _tlv(b"S", value.encode("utf-8"))
    if isinstance(value, bytes):
        return _tlv(b"Y", value)
    if isinstance(value, (tuple, list)):
        return _tlv(b"T", b"".join(_encode(item) for item in value))
    if isinstance(value, dict):
        items = sorted(
            (_encode(key), _encode(val)) for key, val in value.items()
        )
        return _tlv(b"D", b"".join(key + val for key, val in items))
    if isinstance(value, (set, frozenset)):
        return _tlv(b"E", b"".join(sorted(_encode(item) for item in value)))
    canonical = getattr(value, "canonical", None)
    if canonical is not None and callable(canonical):
        memo = getattr(value, "__dict__", None) if _cache.caching_enabled() else None
        if memo is not None:
            cached = memo.get(_MEMO_ATTR)
            if cached is not None:
                return cached
        # Tag with the class name so structurally-equal values of distinct
        # message types never collide.
        name = type(value).__qualname__.encode("utf-8")
        encoded = _tlv(b"O", _tlv(b"S", name) + _encode(canonical()))
        if memo is not None:
            # Direct __dict__ store: works on frozen dataclasses too.
            memo[_MEMO_ATTR] = encoded
        return encoded
    raise EncodingError(f"cannot canonically encode {type(value).__name__}: {value!r}")
