"""Key management for the simulated signature scheme.

The paper assumes each process owns a private key used to sign outgoing
messages in an *unforgeable* way (Section 2, citing RSA [13]). Inside the
simulation we replace public-key signatures with keyed MACs held by a
:class:`KeyAuthority`:

* the authority derives one secret key per process from the run seed;
* a process receives a :class:`Signer` capability that can only sign *as
  that process* — the secret bytes are never handed out, so a simulated
  Byzantine process cannot sign on behalf of anyone else;
* verification goes through the authority, which plays the role of the
  public-key directory.

This preserves the two properties the paper uses — unforgeability and
sender authentication — which is all the substitution needs (DESIGN.md
records it).
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import UnknownKeyError


class KeyAuthority:
    """Derives and guards the per-process secret keys of one run."""

    def __init__(self, n: int, seed: int = 0) -> None:
        self._n = n
        self._seed = seed
        self._keys: dict[int, bytes] = {
            pid: hashlib.sha256(f"key/{seed}/{pid}".encode("utf-8")).digest()
            for pid in range(n)
        }

    @property
    def n(self) -> int:
        return self._n

    @property
    def domain(self) -> tuple[int, int]:
        """The key-derivation domain ``(n, seed)``.

        Two authorities with the same domain derive identical keys, so
        the domain is the correct namespace for cached verification
        verdicts (:mod:`repro.crypto.cache`): a verdict cached under one
        slot's authority must never answer for another slot's.
        """
        return (self._n, self._seed)

    def signer_for(self, pid: int) -> "Signer":
        """Hand out the signing capability of process ``pid``."""
        if pid not in self._keys:
            raise UnknownKeyError(f"no key registered for process {pid}")
        return Signer(self, pid)

    def _mac(self, pid: int, data: bytes) -> bytes:
        key = self._keys.get(pid)
        if key is None:
            raise UnknownKeyError(f"no key registered for process {pid}")
        return hmac.new(key, data, hashlib.sha256).digest()

    def verify(self, pid: int, data: bytes, mac: bytes) -> bool:
        """Check that ``mac`` is ``pid``'s signature over ``data``."""
        if pid not in self._keys:
            return False
        return hmac.compare_digest(self._mac(pid, data), mac)


class Signer:
    """Capability to sign bytes as exactly one process."""

    __slots__ = ("_authority", "_pid")

    def __init__(self, authority: KeyAuthority, pid: int) -> None:
        self._authority = authority
        self._pid = pid

    @property
    def pid(self) -> int:
        return self._pid

    def sign(self, data: bytes) -> bytes:
        return self._authority._mac(self._pid, data)
