"""Simulated unforgeable signatures (the paper's private/public key pairs).

See DESIGN.md for the substitution note: RSA in the paper becomes keyed
MACs behind a capability API here; unforgeability and sender
authentication — the only properties the methodology relies on — are
preserved inside the simulation.
"""

from repro.crypto.encoding import Canonicalizable, canonical_bytes
from repro.crypto.keys import KeyAuthority, Signer
from repro.crypto.signatures import Signature, SignatureScheme

__all__ = [
    "Canonicalizable",
    "KeyAuthority",
    "Signature",
    "SignatureScheme",
    "Signer",
    "canonical_bytes",
]
