"""Verified-signature caching (ROADMAP item 2, docs/PERFORMANCE.md).

Profiling the certificate-heavy service path shows the simulator is
dominated by re-verifying the *same* signed envelopes: every receiver of
a quorum certificate re-encodes and re-MACs entries that some module of
the same OS process already checked. :class:`SignatureCache` memoizes
verification *verdicts* so each distinct signature is checked once per
process instead of once per receiver.

Safety argument (the full version lives in docs/PERFORMANCE.md): a cache
entry is keyed by ``(key domain, claimed signer, SHA-256 digest of the
signed bytes, MAC bytes)``. A hit therefore requires byte-identical
signed content *and* an identical MAC under the same key domain and
signer identity — exactly the inputs of the real check. A tampered
envelope changes the signed bytes, so its digest matches nothing cached
and it falls through to a real (failing) verification; a cached accept
can never launder content that was not itself verified. Cross-slot and
cross-run confusion is impossible because the key-authority *domain*
(``n``, derivation seed) is part of the key.

The module also owns the global kill-switch used by the saturation
benchmarks to measure honest pre-cache baselines: :func:`set_caching`
and the :func:`caching_disabled` context manager turn off both the
verdict caches and the per-object canonical-encoding memos
(:mod:`repro.crypto.encoding`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.observability.registry import ModuleMetrics, NULL_METRICS

#: Process-wide switch covering every verification/encoding memo.
_CACHING = True


def caching_enabled() -> bool:
    """True iff verification caches and encoding memos are active."""
    return _CACHING


def set_caching(enabled: bool) -> bool:
    """Set the global caching switch; returns the previous value."""
    global _CACHING
    previous = _CACHING
    _CACHING = bool(enabled)
    return previous


@contextmanager
def caching_disabled() -> Iterator[None]:
    """Run a block with every cache off — the benchmark baseline mode."""
    previous = set_caching(False)
    try:
        yield
    finally:
        set_caching(previous)


class SignatureCache:
    """Bounded memo of signature-verification verdicts.

    Keys are ``(domain, signer, payload_digest, mac)`` tuples (see module
    docstring for why that keying is sound). Both accepts and rejects are
    cached: a reject is as content-pinned as an accept, and Byzantine
    peers replaying a bad envelope should not buy a MAC computation per
    replay.
    """

    __slots__ = ("max_entries", "hits", "misses", "_verdicts", "_metrics")

    def __init__(self, max_entries: int = 1 << 16) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._verdicts: dict[tuple, bool] = {}
        self._metrics: ModuleMetrics = NULL_METRICS

    def attach_metrics(self, metrics: ModuleMetrics) -> None:
        """Export hit/miss counters through ``metrics`` (first bind wins).

        A cache may be shared by several verifying components of one
        process (all slot engines of a service replica, for instance);
        the first scope attached keeps the counters, so totals are not
        split across rebinding.
        """
        if self._metrics is NULL_METRICS:
            self._metrics = metrics

    def lookup(self, key: tuple) -> bool | None:
        """The cached verdict for ``key``, or ``None`` on a miss."""
        verdict = self._verdicts.get(key)
        if verdict is None:
            self.misses += 1
            self._metrics.inc("sig_cache_misses")
        else:
            self.hits += 1
            self._metrics.inc("sig_cache_hits")
        return verdict

    def store(self, key: tuple, verdict: bool) -> None:
        if len(self._verdicts) >= self.max_entries:
            # Drop the oldest entry (insertion order); the cache is a
            # memo, so eviction costs a re-verification, never safety.
            self._verdicts.pop(next(iter(self._verdicts)))
            self._metrics.inc("sig_cache_evictions")
        self._verdicts[key] = verdict

    def clear(self) -> None:
        """Forget every verdict (a restarting process starts cold)."""
        self._verdicts.clear()

    def __len__(self) -> int:
        return len(self._verdicts)
