"""Per-peer behaviour automaton for the transformed CT protocol.

The Figure 4 construction re-applied to Chandra–Toueg's round shape. A
peer's per-round stream (on FIFO channels) is::

    ESTIMATE(r) [ -> PROPOSE(r) if the peer coordinates r ]
                [ -> ACK(r) | NACK(r) ]  -> ESTIMATE(r+1) ...

with a ``DECIDE`` terminal from any state, at most one message of each
kind per round, proposals only from the round's coordinator, acks only
after that peer could have seen a proposal, and no NACK from a round's
own coordinator (a correct process never suspects itself).
"""

from __future__ import annotations

from repro.consensus import certification_ct as certs
from repro.consensus.hurfin_raynal import coordinator_of
from repro.core.automaton import BehaviorViolation, StateMachine, Step
from repro.core.certificates import SignedMessage
from repro.core.specs import SystemParameters
from repro.consensus.certification import SignatureCheck
from repro.consensus.certification import init_message_problems
from repro.messages.consensus import Init
from repro.messages.ct import CtAck, CtDecide, CtEstimate, CtNack, CtPropose
from repro.observability.registry import NULL_METRICS

START = "start"
WAIT = "between-phases"
EST = "estimated"
PROPOSED = "proposed"
REPLIED = "replied"
FINAL = "final"


class CtPeerMonitor:
    """``SM_p(q)`` instantiated for the transformed CT protocol."""

    def __init__(
        self,
        peer: int,
        params: SystemParameters,
        verify: SignatureCheck,
        check_certificates: bool = True,
    ) -> None:
        self.peer = peer
        self.params = params
        self.verify = verify
        self.check_certificates = check_certificates
        self.round = 0
        self._machine = StateMachine(initial=START)
        self._wire_rules()
        self.cert_metrics = NULL_METRICS

    def attach_metrics(self, cert_metrics) -> None:
        """Bind certificate-check counters (certification module scope)."""
        self.cert_metrics = cert_metrics

    @property
    def state(self) -> str:
        return self._machine.state

    @property
    def faulty(self) -> bool:
        return self._machine.faulty

    @property
    def fault_reason(self) -> str | None:
        return self._machine.fault_reason

    def feed(self, message: SignedMessage) -> Step:
        return self._machine.feed(message)

    # -- rules ----------------------------------------------------------------

    def _wire_rules(self) -> None:
        machine = self._machine
        machine.add_rule(START, Init, self._on_init)
        machine.add_rule(WAIT, CtEstimate, self._on_estimate)
        for state in (EST, PROPOSED, REPLIED):
            machine.add_rule(state, CtDecide, self._on_decide)
            machine.add_rule(state, CtEstimate, self._on_estimate)
        machine.add_rule(EST, CtPropose, self._on_propose)
        machine.add_rule(EST, CtAck, self._on_ack)
        machine.add_rule(EST, CtNack, self._on_nack)
        machine.add_rule(PROPOSED, CtAck, self._on_ack)
        machine.add_rule(WAIT, CtDecide, self._on_decide)

    # -- handlers ----------------------------------------------------------------

    def _on_init(self, message: SignedMessage) -> str:
        self._clean(init_message_problems(message, self.params, self.verify))
        self.round = 0
        return WAIT

    def _on_estimate(self, message: SignedMessage) -> str:
        body = message.body
        assert isinstance(body, CtEstimate)
        self._identity(message)
        if body.round != self.round + 1:
            raise BehaviorViolation(
                f"out-of-order: ESTIMATE for round {body.round}, the peer's "
                f"stream is leaving round {self.round}"
            )
        self._clean(certs.estimate_problems(message, self.params, self.verify))
        self.round += 1
        return EST

    def _on_propose(self, message: SignedMessage) -> str:
        body = message.body
        assert isinstance(body, CtPropose)
        self._identity(message)
        if body.round != self.round:
            raise BehaviorViolation(
                f"out-of-order: PROPOSE for round {body.round} in the peer's "
                f"round {self.round}"
            )
        if self.peer != coordinator_of(self.round, self.params.n):
            raise BehaviorViolation(
                f"spurious: peer {self.peer} proposed in round {self.round} "
                "without holding the coordinator seat"
            )
        self._clean(certs.propose_problems(message, self.params, self.verify))
        return PROPOSED

    def _on_ack(self, message: SignedMessage) -> str:
        body = message.body
        assert isinstance(body, CtAck)
        self._identity(message)
        if body.round != self.round:
            raise BehaviorViolation(
                f"out-of-order: ACK for round {body.round} in the peer's "
                f"round {self.round}"
            )
        self._clean(certs.ack_problems(message, self.params, self.verify))
        return REPLIED

    def _on_nack(self, message: SignedMessage) -> str:
        body = message.body
        assert isinstance(body, CtNack)
        self._identity(message)
        if body.round != self.round:
            raise BehaviorViolation(
                f"out-of-order: NACK for round {body.round} in the peer's "
                f"round {self.round}"
            )
        if self.peer == coordinator_of(self.round, self.params.n):
            raise BehaviorViolation(
                "misevaluation: a round's coordinator nacked itself"
            )
        return REPLIED

    def _on_decide(self, message: SignedMessage) -> str:
        self._clean(certs.decide_problems(message, self.params, self.verify))
        return FINAL

    # -- shared -----------------------------------------------------------------

    def _identity(self, message: SignedMessage) -> None:
        if message.body.sender != self.peer:
            raise BehaviorViolation(
                f"identity mismatch: message claims sender "
                f"{message.body.sender} on the channel of peer {self.peer}"
            )

    def _clean(self, problems: list[str]) -> None:
        if not self.check_certificates:
            return
        self.cert_metrics.inc("certificates_checked", round=self.round)
        if problems:
            self.cert_metrics.inc("certificates_rejected", round=self.round)
            raise BehaviorViolation("; ".join(problems))
