"""Well-formedness predicates for the transformed protocol's certificates.

Implements Section 5.1 of the paper: what it means for ``est_cert``,
``next_cert`` and ``current_cert`` to be *well-formed* with respect to a
value, a round, and a send decision. These predicates are the certificate
analyser that the non-muteness failure detection module (the Figure 4
automaton) runs at the receiving side — the ``PF`` predicates.

Every function returns a list of human-readable problems; an empty list
means well-formed. Reporting all problems (rather than the first) keeps
the experiment E4 coverage tables informative.

Certificate shapes accepted (see DESIGN.md §5 for the pruning scheme):

* **initial est_cert** — ``n - F`` signed ``INIT`` messages from distinct
  senders, witnessing the entries of an estimate vector;
* **adopted est_cert** — the certificate of the first valid ``CURRENT``
  of a round: either the coordinator form (``est_cert ∪ next_cert`` =
  INITs + NEXTs) or the relay form (one signed ``CURRENT``), followed
  recursively until an INIT set is reached;
* **next_cert** — signed ``NEXT`` messages of one round from at least
  ``n - F`` distinct senders;
* **current_cert** — signed ``CURRENT`` messages of one round, all
  carrying the same vector, from at least ``n - F`` distinct senders.
"""

from __future__ import annotations

from typing import Callable

from repro.consensus.hurfin_raynal import coordinator_of
from repro.core.certificates import Certificate, SignedMessage
from repro.core.specs import SystemParameters
from repro.core.vector_certification import certified_vector_problems
from repro.crypto.cache import caching_enabled
from repro.messages.consensus import Init, VCurrent, VDecide, VNext, Vector
from repro.observability.registry import ModuleMetrics, NULL_METRICS

#: Verifier callback: validates one signed message's signature + identity.
SignatureCheck = Callable[[SignedMessage], bool]


class PredicateCache:
    """Memo of *clean* PF verdicts, keyed by envelope digest.

    The envelope digest (:meth:`SignedMessage.envelope_digest`) pins the
    body, the certificate digest and the signature, so two envelopes with
    equal digests certify identical content. Once a process has fully
    analysed a CURRENT or DECIDE and found it well-formed, re-deriving
    the same verdict for the same envelope — a quorum certificate's
    entries get re-analysed by every DECIDE that embeds them — is pure
    waste; the cache answers instead.

    Only clean verdicts are stored, and the asymmetry is deliberate: a
    full envelope and its pruned variant share one digest (pruning
    preserves the light canonical form), but only the full variant can
    be analysed to a clean verdict. Caching "clean" lets the pruned
    sibling ride on the full expansion this process has already checked
    (exactly the once-per-process semantics we want); caching "dirty"
    would let a pruned sibling's "cannot be analysed" verdict wrongly
    condemn the full one. Verdict kinds ("current", "decide") are part
    of the key so a clean DECIDE can never answer for a CURRENT check.

    One cache serves exactly one ``verify`` callback (one key domain):
    banks own their cache and never share it across slot engines, since
    a verdict is only meaningful under the authority that produced it.
    """

    __slots__ = ("max_entries", "hits", "misses", "_clean", "_metrics")

    def __init__(self, max_entries: int = 1 << 16) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._clean: dict[tuple[str, str], None] = {}
        self._metrics: ModuleMetrics = NULL_METRICS

    def attach_metrics(self, metrics: ModuleMetrics) -> None:
        """Export hit/miss counters through ``metrics`` (first bind wins)."""
        if self._metrics is NULL_METRICS:
            self._metrics = metrics

    def seen_clean(self, kind: str, digest: str) -> bool:
        """True iff ``(kind, digest)`` was recorded clean by this process."""
        if (kind, digest) in self._clean:
            self.hits += 1
            self._metrics.inc("pf_cache_hits")
            return True
        self.misses += 1
        self._metrics.inc("pf_cache_misses")
        return False

    def record_clean(self, kind: str, digest: str) -> None:
        if len(self._clean) >= self.max_entries:
            self._clean.pop(next(iter(self._clean)))
        self._clean[(kind, digest)] = None

    def __len__(self) -> int:
        return len(self._clean)


def _entry_signature_problems(
    cert: Certificate, verify: SignatureCheck
) -> list[str]:
    """Every certificate entry must carry a valid signature."""
    problems = []
    for entry in cert:
        if not verify(entry):
            problems.append(
                f"entry {type(entry.body).__name__} claiming sender "
                f"{entry.body.sender} has an invalid signature"
            )
    return problems


def init_set_problems(
    inits: list[SignedMessage],
    est_vect: Vector,
    params: SystemParameters,
    verify: SignatureCheck,
) -> list[str]:
    """Check an INIT set against a vector (initial ``est_cert`` form).

    This is the paper's "est_cert is well-formed with respect to
    est_vect" for the initial form; the actual analysis is the generic
    vector-certification check of the core methodology.
    """
    return certified_vector_problems(inits, est_vect, params, verify)


def est_cert_problems(
    cert: Certificate,
    est_vect: Vector,
    params: SystemParameters,
    verify: SignatureCheck,
    _depth: int = 0,
) -> list[str]:
    """Check an ``est_cert`` (initial or adopted form) against a vector.

    Adopted certificates are followed through relay chains: a relay-form
    certificate holds one signed ``CURRENT`` whose own certificate is
    checked recursively until the INIT set that grounds the vector is
    reached. Chains longer than ``n`` cannot be produced by correct
    processes (each relays at most once per round), so deeper nesting is
    itself a fault.
    """
    if _depth > params.n + 1:
        return ["certificate relay chain deeper than n (cannot be honest)"]
    inits = cert.of_type(Init)
    currents = cert.of_type(VCurrent)
    if inits and not currents:
        return init_set_problems(inits, est_vect, params, verify)
    if len(currents) == 1:
        inner = currents[0]
        problems: list[str] = []
        if not verify(inner):
            return [f"embedded CURRENT from {inner.body.sender}: bad signature"]
        if inner.body.est_vect != est_vect:
            problems.append(
                "embedded CURRENT carries a different vector than the one "
                "it is supposed to certify"
            )
        if not inner.has_full_cert:
            problems.append(
                "embedded CURRENT's certificate was pruned; cannot ground "
                "the vector in an INIT set"
            )
        else:
            problems.extend(
                est_cert_problems(
                    inner.full_cert(), est_vect, params, verify, _depth + 1
                )
            )
        return problems
    return [
        f"est_cert has neither an INIT set nor a single embedded CURRENT "
        f"(inits=0, currents={len(currents)})"
    ]


def next_set_problems(
    nexts: list[SignedMessage],
    expected_round: int,
    params: SystemParameters,
    verify: SignatureCheck,
) -> list[str]:
    """Check a NEXT quorum against a round (``next_cert`` well-formed
    w.r.t. ``expected_round``): at least ``n - F`` distinct, correctly
    signed senders, every entry referring to ``expected_round``.

    Round 1 is special (paper): it cannot be certified by NEXT messages,
    so its well-formed ``next_cert`` is the empty set — callers pass
    ``expected_round = 0`` and an empty list.
    """
    if expected_round < 1:
        if nexts:
            return [
                f"round {expected_round + 1} must carry an empty next_cert, "
                f"found {len(nexts)} NEXT entries"
            ]
        return []
    problems: list[str] = []
    senders: set[int] = set()
    for sm in nexts:
        if not verify(sm):
            problems.append(f"NEXT claiming sender {sm.body.sender}: bad signature")
            continue
        if sm.body.round != expected_round:
            problems.append(
                f"NEXT from {sm.body.sender} refers to round {sm.body.round}, "
                f"expected {expected_round}"
            )
            continue
        senders.add(sm.body.sender)
    if len(senders) < params.quorum:
        problems.append(
            f"next_cert has {len(senders)} valid distinct senders for round "
            f"{expected_round}, needs n-F = {params.quorum}"
        )
    return problems


def current_message_problems(
    message: SignedMessage,
    params: SystemParameters,
    verify: SignatureCheck,
    _depth: int = 0,
    cache: PredicateCache | None = None,
) -> list[str]:
    """The ``PF`` predicate for a ``CURRENT`` message (both forms).

    Coordinator form (sender leads the message's round): the certificate
    is ``est_cert ∪ next_cert`` — an INIT set grounding ``est_vect`` plus,
    for rounds after the first, a NEXT quorum for the previous round.

    Relay form (any other sender): the certificate is the single signed
    ``CURRENT`` the relayer received first, carrying the same round and
    vector; it is checked recursively.
    """
    if _depth > params.n + 1:
        return ["CURRENT relay chain deeper than n (cannot be honest)"]
    body = message.body
    if not isinstance(body, VCurrent):
        return [f"expected a CURRENT body, found {type(body).__name__}"]
    use_cache = cache is not None and caching_enabled()
    if use_cache and cache.seen_clean("current", message.envelope_digest()):
        return []
    problems: list[str] = []
    if body.round < 1:
        problems.append(f"CURRENT carries invalid round {body.round}")
    if len(body.est_vect) != params.n:
        problems.append(
            f"CURRENT vector has length {len(body.est_vect)}, expected {params.n}"
        )
    if not message.has_full_cert:
        problems.append("CURRENT certificate was pruned; cannot be analysed")
        return problems
    cert = message.full_cert()
    coordinator = coordinator_of(body.round, params.n)
    if body.sender == coordinator:
        # Coordinator form: est_cert ∪ next_cert. The est part is either
        # the initial INIT set or an adopted certificate (which may itself
        # contain one CURRENT of an earlier round and residual NEXTs of
        # rounds before body.round - 1); the next part is the NEXT quorum
        # for body.round - 1. Entries of future rounds are impossible.
        nexts = cert.of_type(VNext)
        fresh_nexts = [sm for sm in nexts if sm.body.round == body.round - 1]
        for sm in cert:
            entry_round = getattr(sm.body, "round", None)
            if entry_round is not None and entry_round >= body.round:
                problems.append(
                    f"coordinator CURRENT for round {body.round} embeds a "
                    f"{type(sm.body).__name__} of round {entry_round} "
                    "(evidence from the future)"
                )
        est_part = cert.filter(
            lambda sm: not isinstance(sm.body, VNext)
            or sm.body.round < body.round - 1
        )
        problems.extend(
            est_cert_problems(est_part, body.est_vect, params, verify, _depth)
        )
        problems.extend(
            next_set_problems(fresh_nexts, body.round - 1, params, verify)
        )
        if not problems and use_cache:
            cache.record_clean("current", message.envelope_digest())
        return problems
    # Relay form.
    currents = cert.of_type(VCurrent)
    if len(currents) != 1 or len(cert) != 1:
        problems.append(
            f"relayed CURRENT certificate must be exactly one signed CURRENT, "
            f"found {len(currents)} CURRENTs among {len(cert)} entries"
        )
        return problems
    inner = currents[0]
    if not verify(inner):
        problems.append(
            f"relayed certificate CURRENT claiming {inner.body.sender}: "
            "bad signature"
        )
        return problems
    assert isinstance(inner.body, VCurrent)
    if inner.body.round != body.round:
        problems.append(
            f"relayed CURRENT round {body.round} does not match the certified "
            f"CURRENT round {inner.body.round}"
        )
    if inner.body.est_vect != body.est_vect:
        problems.append(
            "relayed CURRENT vector differs from the vector of the CURRENT "
            "it relays — the relayer corrupted est_vect"
        )
    if inner.body.sender == body.sender:
        problems.append("a CURRENT cannot be certified by its own sender")
    problems.extend(
        current_message_problems(inner, params, verify, _depth + 1, cache=cache)
    )
    if not problems and use_cache:
        cache.record_clean("current", message.envelope_digest())
    return problems


def next_message_problems(
    message: SignedMessage,
    params: SystemParameters,
    verify: SignatureCheck,
    cache: PredicateCache | None = None,
) -> list[str]:
    """The ``PF`` predicate for a ``NEXT`` message.

    A NEXT is sent in exactly three situations (Figure 3); the attached
    certificate must match at least one of the corresponding shapes:

    * **q0 → q2** (line 24, suspicion of the coordinator): certificate is
      ``current_cert ∪ next_cert ∪ est_cert`` with no CURRENT entry — the
      suspicion itself is local and unverifiable, so the certificate only
      witnesses the sender's state;
    * **q1 → q2** (line 29, ``change_mind``): certificate is
      ``current_cert ∪ next_cert`` with votes from at least ``n - F``
      distinct senders (the ``REC_FROM`` test);
    * **round end** (line 31): certificate is ``next_cert`` with a full
      NEXT quorum for the sender's round.

    All embedded entries must be correctly signed and refer to the NEXT's
    own round (INIT entries excepted).
    """
    # NEXT verdicts are not memoized: their shapes depend on per-entry
    # round arithmetic that is cheap next to the (already sig-cached)
    # entry verifications, and NEXTs are never embedded quorum-deep the
    # way CURRENTs are. The kwarg exists for call-site uniformity.
    del cache
    body = message.body
    if not isinstance(body, VNext):
        return [f"expected a NEXT body, found {type(body).__name__}"]
    problems: list[str] = []
    if body.round < 1:
        problems.append(f"NEXT carries invalid round {body.round}")
    if not message.has_full_cert:
        problems.append("NEXT certificate was pruned; cannot be analysed")
        return problems
    cert = message.full_cert()
    inits = cert.of_type(Init)
    currents = cert.of_type(VCurrent)
    nexts = cert.of_type(VNext)
    stray = len(cert) - len(inits) - len(currents) - len(nexts)
    if stray:
        problems.append(f"NEXT certificate contains {stray} foreign entries")
    problems.extend(_entry_signature_problems(cert, verify))
    # Entries of the NEXT's own round are the *votes* justifying the send;
    # entries of earlier rounds are residue of the adopted est_cert (the
    # q0 -> q2 certificate unions est_cert in); future rounds are
    # impossible for an honest sender.
    for sm in currents + nexts:
        entry_round = sm.body.round  # type: ignore[union-attr]
        if entry_round > body.round:
            problems.append(
                f"{type(sm.body).__name__} entry from {sm.body.sender} refers "
                f"to round {entry_round}, after the NEXT's round {body.round} "
                "(evidence from the future)"
            )
    if problems:
        return problems
    fresh_currents = [sm for sm in currents if sm.body.round == body.round]
    fresh_nexts = [sm for sm in nexts if sm.body.round == body.round]
    vote_senders = {sm.body.sender for sm in fresh_currents} | {
        sm.body.sender for sm in fresh_nexts
    }
    suspicion_shape = not fresh_currents  # q0 -> q2: no CURRENT received yet
    change_mind_shape = (
        bool(fresh_currents) and len(vote_senders) >= params.quorum
    )
    round_end_shape = (
        len({sm.body.sender for sm in fresh_nexts}) >= params.quorum
    )
    if not (suspicion_shape or change_mind_shape or round_end_shape):
        problems.append(
            "NEXT certificate matches no legitimate send condition: "
            f"currents={len(fresh_currents)}, distinct voters="
            f"{len(vote_senders)}, quorum={params.quorum} — the sender "
            "misevaluated its guard"
        )
    return problems


def decide_message_problems(
    message: SignedMessage,
    params: SystemParameters,
    verify: SignatureCheck,
    cache: PredicateCache | None = None,
) -> list[str]:
    """The ``PF`` predicate for a ``DECIDE`` message.

    The certificate must contain signed ``CURRENT`` messages of one round,
    all carrying exactly the decided vector, from at least ``n - F``
    distinct senders, each itself passing the CURRENT predicate — this
    witnesses that the sender's decision condition (line 20) was evaluated
    correctly and grounds the decided vector in certified initial values.

    With a :class:`PredicateCache` the quorum's per-entry deep checks are
    *lazy*: a CURRENT entry this process already analysed (on its sender's
    channel, or inside an earlier DECIDE) is accepted by digest lookup, so
    a quorum certificate costs one full analysis per process, not one per
    embedding message.
    """
    body = message.body
    if not isinstance(body, VDecide):
        return [f"expected a DECIDE body, found {type(body).__name__}"]
    use_cache = cache is not None and caching_enabled()
    if use_cache and cache.seen_clean("decide", message.envelope_digest()):
        return []
    if not message.has_full_cert:
        return ["DECIDE certificate was pruned; cannot be analysed"]
    cert = message.full_cert()
    currents = cert.of_type(VCurrent)
    problems: list[str] = []
    senders_by_round: dict[int, set[int]] = {}
    for sm in currents:
        if not verify(sm):
            problems.append(
                f"CURRENT entry claiming {sm.body.sender}: bad signature"
            )
            continue
        assert isinstance(sm.body, VCurrent)
        if sm.body.est_vect != body.est_vect:
            problems.append(
                f"CURRENT entry from {sm.body.sender} carries a different "
                "vector than the decided one"
            )
            continue
        senders_by_round.setdefault(sm.body.round, set()).add(sm.body.sender)
    # The decision round must exhibit a full quorum; entries of earlier
    # rounds may legitimately appear as residue of the adopted est_cert.
    best = max((len(s) for s in senders_by_round.values()), default=0)
    if best < params.quorum:
        problems.append(
            f"DECIDE certificate has at most {best} valid CURRENT senders in "
            f"any one round, needs n-F = {params.quorum} — the sender "
            "misevaluated its decision condition"
        )
    if problems:
        return problems
    for sm in currents:
        inner_problems = current_message_problems(sm, params, verify, cache=cache)
        if inner_problems:
            problems.extend(
                f"CURRENT entry from {sm.body.sender}: {p}" for p in inner_problems
            )
    if not problems and use_cache:
        cache.record_clean("decide", message.envelope_digest())
    return problems


def init_message_problems(
    message: SignedMessage,
    params: SystemParameters,
    verify: SignatureCheck,
    cache: PredicateCache | None = None,
) -> list[str]:
    """The ``PF`` predicate for an ``INIT`` message: empty certificate."""
    body = message.body
    if not isinstance(body, Init):
        return [f"expected an INIT body, found {type(body).__name__}"]
    if message.has_full_cert and len(message.full_cert()) != 0:
        return ["INIT messages must carry an empty certificate"]
    del params, verify, cache  # signature checked upstream; no content rule
    return []
