"""Chandra–Toueg ◇S consensus (crash model) — an independent baseline.

The classic rotating-coordinator protocol of Chandra & Toueg [3], used by
experiment E10 to put the Hurfin–Raynal protocol's costs in context. Each
asynchronous round has four phases:

1. every process sends its timestamped estimate to the round coordinator;
2. the coordinator gathers a majority of estimates, adopts the one with
   the highest timestamp and broadcasts it as a proposal;
3. every process either acknowledges the proposal (adopting it) or, upon
   suspecting the coordinator, sends a negative acknowledgement;
4. the coordinator gathers a majority of replies; if all are positive it
   reliably broadcasts the decision.

The decision is propagated with a relay-on-first-receipt reliable
broadcast, as in the original paper. Assumes ``f <= floor((n-1)/2)``
crashes and a ◇S detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.consensus.base import ConsensusProcess
from repro.detectors.base import FailureDetector
from repro.messages.base import Message


@dataclass(frozen=True, slots=True)
class Estimate(Message):
    """Phase-1 message: a timestamped estimate sent to the coordinator."""

    round: int
    est: Any
    ts: int


@dataclass(frozen=True, slots=True)
class Propose(Message):
    """Phase-2 message: the coordinator's proposal for this round."""

    round: int
    est: Any


@dataclass(frozen=True, slots=True)
class Ack(Message):
    """Phase-3 positive reply."""

    round: int


@dataclass(frozen=True, slots=True)
class Nack(Message):
    """Phase-3 negative reply (sent upon suspecting the coordinator)."""

    round: int


@dataclass(frozen=True, slots=True)
class CtDecide(Message):
    """Reliably-broadcast decision."""

    est: Any


class ChandraTouegProcess(ConsensusProcess):
    """One participant in the Chandra–Toueg ◇S protocol."""

    def __init__(
        self,
        proposal: Any,
        detector: FailureDetector,
        suspicion_poll: float = 0.5,
    ) -> None:
        super().__init__(proposal, detector, suspicion_poll)
        self.round = 0
        self.est: Any = proposal
        self.ts = 0
        self.replied = False  # this round's phase-3 reply already sent
        self._estimates: dict[int, Estimate] = {}  # coordinator: phase-1 inbox
        self._replies: list[bool] = []  # coordinator: phase-4 inbox
        self._proposed = False  # coordinator: phase-2 proposal sent
        self._counted = False  # coordinator: phase-4 tally done
        self._future: dict[int, list[tuple[int, Message]]] = {}

    # -- round management ------------------------------------------------------

    def start_protocol(self) -> None:
        self._begin_round(1)

    @property
    def coordinator(self) -> int:
        return (self.round - 1) % self.n

    def _majority(self) -> int:
        return self.n // 2 + 1

    def _begin_round(self, round_number: int) -> None:
        self.round = round_number
        self.replied = False
        self._estimates = {}
        self._replies = []
        self._proposed = False
        self._counted = False
        self.record("round-start", round=round_number)
        # Phase 1: send the timestamped estimate to the coordinator.
        self.send(
            self.coordinator,
            Estimate(sender=self.pid, round=self.round, est=self.est, ts=self.ts),
        )
        self._replay_buffered()
        self.evaluate_guards()

    def _replay_buffered(self) -> None:
        for src, payload in self._future.pop(self.round, []):
            if not self.decided:
                self.handle_message(src, payload)

    # -- message handling ---------------------------------------------------------

    def handle_message(self, src: int, payload: Any) -> None:
        if self.detector is not None:
            self.detector.on_protocol_message(src)
        if isinstance(payload, CtDecide):
            self.broadcast(CtDecide(sender=self.pid, est=payload.est))
            self.decide_value(payload.est, round_number=self.round)
            return
        round_number = getattr(payload, "round", None)
        if round_number is None:
            return
        if round_number < self.round:
            return
        if round_number > self.round:
            self._future.setdefault(round_number, []).append((src, payload))
            return
        if isinstance(payload, Estimate):
            self._on_estimate(payload)
        elif isinstance(payload, Propose):
            self._on_propose(payload)
        elif isinstance(payload, (Ack, Nack)):
            self._on_reply(isinstance(payload, Ack))

    def _on_estimate(self, payload: Estimate) -> None:
        if self.pid != self.coordinator or self._proposed:
            return
        self._estimates[payload.sender] = payload
        if len(self._estimates) >= self._majority():
            # Phase 2: adopt the estimate with the highest timestamp.
            best = max(self._estimates.values(), key=lambda e: e.ts)
            self._proposed = True
            self.broadcast(Propose(sender=self.pid, round=self.round, est=best.est))

    def _on_propose(self, payload: Propose) -> None:
        if payload.sender != self.coordinator or self.replied:
            return
        # Phase 3 (positive branch): adopt and acknowledge.
        self.est = payload.est
        self.ts = self.round
        self.replied = True
        self.send(self.coordinator, Ack(sender=self.pid, round=self.round))
        if self.pid != self.coordinator:
            self._begin_round(self.round + 1)

    def _on_reply(self, positive: bool) -> None:
        if self.pid != self.coordinator or self._counted:
            return
        self._replies.append(positive)
        if len(self._replies) >= self._majority():
            self._counted = True
            if all(self._replies):
                # Phase 4: unanimous majority — reliably broadcast decide.
                self.broadcast(CtDecide(sender=self.pid, est=self.est))
                self.decide_value(self.est, round_number=self.round)
            else:
                self._begin_round(self.round + 1)

    # -- guards ----------------------------------------------------------------------

    def evaluate_guards(self) -> None:
        # Phase 3 (negative branch): suspecting the coordinator.
        if (
            not self.replied
            and self.pid != self.coordinator
            and self.coordinator in self.suspected
        ):
            self.replied = True
            self.send(self.coordinator, Nack(sender=self.pid, round=self.round))
            self._begin_round(self.round + 1)
