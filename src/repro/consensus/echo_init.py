"""Echo-INIT variant: vector certification over reliable broadcast.

An extension of the transformed protocol (documented in DESIGN.md): the
INIT phase of Figure 3 disseminates proposals by plain (signed)
broadcast, which leaves a window for *INIT equivocation* — a Byzantine
process showing different signed proposals to different halves. The
signatures make the equivocation detectable once the branches cross, but
correct processes may meanwhile have built vectors that disagree on the
equivocator's slot.

Routing INITs through Byzantine reliable broadcast
(:mod:`repro.broadcast.reliable`) closes the window: RB's consistency
property guarantees that no two correct processes ever accept different
INITs for the same origin, so the equivocator's slot is *uniform* (one
branch everywhere, or null everywhere). Experiment E11 measures exactly
this slot divergence, plain vs echo.

Protocol changes relative to :class:`TransformedConsensusProcess`:

* the signed INIT travels inside RB ``SEND``/``ECHO``/``READY`` wrappers
  instead of directly; everything from the first round on is unchanged;
* the per-peer automata start in ``q0`` (round 1) — the INIT is no
  longer part of the peer's direct channel stream, so a CURRENT may
  legitimately arrive before the peer's INIT finishes its RB rounds;
* RB-delivered INITs still pass the signature module (RB authenticates
  the *origin channel*, the signature authenticates the *content*).
"""

from __future__ import annotations

from typing import Any

from repro.broadcast.reliable import ReliableBroadcast
from repro.consensus.monitor import MonitorBank, Q0
from repro.consensus.transformed import TransformedConsensusProcess
from repro.core.certificates import (
    CertificationAuthority,
    EMPTY_CERTIFICATE,
    SignedMessage,
)
from repro.core.modules import ModuleConfig
from repro.core.specs import SystemParameters
from repro.detectors.base import FailureDetector
from repro.messages.consensus import Init
from repro.sim.process import ProcessEnv


class EchoInitConsensusProcess(TransformedConsensusProcess):
    """Transformed consensus whose INIT phase runs over reliable broadcast."""

    def __init__(
        self,
        proposal: Any,
        params: SystemParameters,
        authority: CertificationAuthority,
        detector: FailureDetector,
        suspicion_poll: float = 0.5,
        config: ModuleConfig | None = None,
    ) -> None:
        super().__init__(
            proposal, params, authority, detector, suspicion_poll, config
        )
        # Re-create the monitor bank with streams opening at q0: INITs no
        # longer appear on the peers' direct channels.
        self.monitor_bank = MonitorBank(
            own_pid=authority.pid,
            params=params,
            verify=authority.signature_valid,
            use_ledger=self.config.track_equivocation,
            check_certificates=self.config.verify_certificates,
            initial_state=Q0,
        )
        self.rb = ReliableBroadcast(f=params.f, deliver=self._on_rb_deliver)

    def bind(self, env: ProcessEnv) -> None:
        super().bind(env)
        self.rb.attach(env)

    # -- layering: RB sits beneath the five modules ---------------------------

    def on_message(self, src: int, payload: Any) -> None:
        if self.rb.filter_message(src, payload):
            return
        super().on_message(src, payload)

    # -- INIT phase over RB ------------------------------------------------------

    def start_protocol(self) -> None:
        own_init = self.authority.make(
            Init(sender=self.pid, value=self.proposal), EMPTY_CERTIFICATE
        )
        self._vector_builder.add(own_init)
        self.rb.broadcast(own_init, tag=0)
        self._maybe_finish_init()

    def _on_rb_deliver(self, origin: int, tag: int, payload: Any) -> None:
        del tag
        # The RB layer authenticated the origin *channel*; the signature
        # module still authenticates the content.
        if not isinstance(payload, SignedMessage) or not isinstance(
            payload.body, Init
        ):
            self._declare(origin, "echo-init: RB payload is not a signed INIT")
            return
        if payload.body.sender != origin:
            self._declare(
                origin,
                "echo-init: RB-delivered INIT claims another process's identity",
            )
            return
        if not self.authority.signature_valid(payload):
            self._declare(origin, "echo-init: invalid INIT signature")
            return
        if self.phase != "init" or self.decided:
            return
        self._vector_builder.add(payload)
        self._maybe_finish_init()

    def _maybe_finish_init(self) -> None:
        if self.phase != "init" or not self._vector_builder.ready:
            return
        self.est_vect, self.est_cert = self._vector_builder.build()
        self.record("vector-built", vector=self.est_vect)
        self.phase = "rounds"
        self._begin_round(1)

    def handle_valid(self, message: SignedMessage) -> None:
        if isinstance(message.body, Init):
            # Direct-channel INITs do not exist in this variant; a signed
            # INIT outside RB is a protocol violation by its sender.
            self._declare(
                message.body.sender, "echo-init: INIT outside reliable broadcast"
            )
            return
        super().handle_valid(message)
