"""The methodology applied a second time: transformed Chandra–Toueg.

The paper insists its contribution is the *methodology*, not the
transformed protocol of Figure 3. This module substantiates the claim by
re-applying the recipe to the other classic ◇S protocol:

1. a vector-certified INIT phase (identical to Figure 3's);
2. every message signed + certified (:mod:`certification_ct` holds the
   hand-designed certificates, per the Section 3 guidelines);
3. a per-peer behaviour automaton (:mod:`monitor_ct`);
4. a ◇M muteness detector consulted through ``suspected_i ∪ faulty_i`` —
   protocol-relative: for the round's coordinator only its *expected*
   messages (PROPOSE / DECIDE) re-arm the timer, so a chatty coordinator
   withholding its proposal is still "mute w.r.t. the algorithm" [6];
5. majorities replaced by ``n - F`` quorums.

Two CT-specific adaptations (recorded in DESIGN.md §5):

* **all-to-all rounds** — estimates and acks are broadcast rather than
  sent to the coordinator only, giving the protocol the *regular
  communication pattern* the methodology requires (and letting every
  process, not only the coordinator, evaluate the decision condition);
* **proposal extraction** — a process that missed the coordinator's
  PROPOSE (e.g. a Byzantine coordinator sends it to half the system)
  recovers it from the certificate of any valid ACK, which embeds the
  acknowledged proposal. Partial proposal delivery therefore costs
  nothing; *withheld* proposals are handled by the protocol-relative ◇M.

The transformed CT protocol's phase-2 justification makes the
coordinator's *selection* verifiable (receivers re-run the highest-ts
rule over the attached estimate quorum) — a check the HR transformation
has no analogue for.
"""

from __future__ import annotations

from typing import Any

from repro.consensus.base import ConsensusProcess
from repro.consensus.certification_ct import (
    ack_problems,
    build_justification,
    select_proposal,
)
from repro.consensus.hurfin_raynal import coordinator_of
from repro.consensus.monitor import MonitorBank
from repro.consensus.monitor_ct import CtPeerMonitor
from repro.core.certificates import (
    Certificate,
    CertificationAuthority,
    EMPTY_CERTIFICATE,
    SignedMessage,
)
from repro.core.modules import ModuleConfig
from repro.core.specs import SystemParameters
from repro.core.vector_certification import CertifiedVectorBuilder
from repro.detectors.base import FailureDetector
from repro.messages.base import Message
from repro.messages.consensus import Init, Vector
from repro.messages.ct import CtAck, CtDecide, CtEstimate, CtNack, CtPropose
from repro.observability.registry import (
    MODULE_CERTIFICATION,
    MODULE_PROTOCOL,
    MODULE_SIGNATURE,
    NULL_METRICS,
)
from repro.sim.process import ProcessEnv

PHASE_INIT = "init"
PHASE_ROUNDS = "rounds"


class TransformedCtProcess(ConsensusProcess):
    """One correct participant in the transformed Chandra–Toueg protocol."""

    def __init__(
        self,
        proposal: Any,
        params: SystemParameters,
        authority: CertificationAuthority,
        detector: FailureDetector,
        suspicion_poll: float = 0.5,
        config: ModuleConfig | None = None,
    ) -> None:
        super().__init__(proposal, detector, suspicion_poll)
        self.params = params
        self.authority = authority
        self.config = config if config is not None else ModuleConfig.full()
        self.monitor_bank = MonitorBank(
            own_pid=authority.pid,
            params=params,
            verify=authority.signature_valid,
            use_ledger=self.config.track_equivocation,
            monitor_factory=lambda peer: CtPeerMonitor(
                peer,
                params,
                authority.signature_valid,
                check_certificates=self.config.verify_certificates,
            ),
        )
        self.phase = PHASE_INIT
        self.round = 0
        self.est_vect: Vector | None = None
        self.est_cert: Certificate = EMPTY_CERTIFICATE  # witnesses (vect, ts)
        self.ts = 0
        self.replied = False
        self._proposed = False
        self._estimates: dict[int, SignedMessage] = {}  # this round, by sender
        self._replies: dict[int, bool] = {}  # sender -> is_ack
        self._round_propose: SignedMessage | None = None
        self._vector_builder = CertifiedVectorBuilder(params)
        self._future: dict[int, list[SignedMessage]] = {}
        # Per-module metric scopes; rebound in bind() once a world exists.
        self._sig_metrics = NULL_METRICS
        self._cert_metrics = NULL_METRICS
        self._proto_metrics = NULL_METRICS

    def bind(self, env: ProcessEnv) -> None:
        super().bind(env)
        self._sig_metrics = env.metrics.scope(MODULE_SIGNATURE, self.pid)
        self._cert_metrics = env.metrics.scope(MODULE_CERTIFICATION, self.pid)
        self._proto_metrics = env.metrics.scope(MODULE_PROTOCOL, self.pid)
        self.monitor_bank.attach_metrics(env.metrics, self.pid)

    # -- views ------------------------------------------------------------------

    @property
    def faulty(self) -> frozenset[int]:
        return self.monitor_bank.faulty

    @property
    def coordinator(self) -> int:
        return coordinator_of(self.round, self.n)

    def _quorum(self) -> int:
        return self.params.quorum

    # -- five-module ingress pipeline ------------------------------------------------

    def on_message(self, src: int, payload: Any) -> None:
        message = self._admit_signature(src, payload)
        if message is None:
            return
        if self.detector is not None and self._feeds_muteness(src, message):
            self.detector.on_protocol_message(src)
        if self.config.monitor_behavior and not self.monitor_bank.admit(
            src, message, self.now
        ):
            self.evaluate_guards()
            return
        if not self.decided:
            self.handle_valid(message)

    def _feeds_muteness(self, src: int, message: SignedMessage) -> bool:
        """◇M is protocol-relative: a coordinator is mute unless it sends
        the messages the algorithm expects *of the coordinator*."""
        if self.phase != PHASE_ROUNDS or src != self.coordinator:
            return True
        return isinstance(message.body, (CtPropose, CtDecide))

    def _admit_signature(self, src: int, payload: Any) -> SignedMessage | None:
        if not isinstance(payload, SignedMessage):
            self._sig_metrics.inc("messages_rejected")
            self._declare(src, "signature module: unsigned payload")
            return None
        if not self.config.verify_signatures:
            return payload
        if payload.body.sender != src:
            self._sig_metrics.inc("messages_rejected")
            self._declare(
                src,
                f"signature module: identity field {payload.body.sender} "
                f"inconsistent with the sending channel {src}",
            )
            return None
        with self._sig_metrics.span("verify"):
            valid = self.authority.signature_valid(payload)
        if not valid:
            self._sig_metrics.inc("messages_rejected")
            self._declare(src, "signature module: invalid signature")
            return None
        self._sig_metrics.inc("messages_verified")
        return payload

    def _declare(self, culprit: int, reason: str) -> None:
        if culprit == self.pid:
            return
        before = culprit in self.monitor_bank.faulty
        self.monitor_bank.declare(culprit, reason, self.now)
        if not before:
            self.record("declare_faulty", target=culprit, reason=reason)
        self.evaluate_guards()

    def _broadcast_signed(self, body: Message, cert: Certificate) -> SignedMessage:
        with self._sig_metrics.span("sign"):
            message = self.authority.make(body, cert)
        self._sig_metrics.inc("messages_signed")
        round_label = self.round if self.phase == PHASE_ROUNDS else None
        self._cert_metrics.inc("certificates_attached", round=round_label)
        self._cert_metrics.observe("certificate_entries", len(cert))
        self.broadcast(message)
        return message

    # -- INIT phase (identical construction to Figure 3) ------------------------------

    def start_protocol(self) -> None:
        own_init = self._broadcast_signed(
            Init(sender=self.pid, value=self.proposal), EMPTY_CERTIFICATE
        )
        self._vector_builder.add(own_init)

    def _on_init(self, message: SignedMessage) -> None:
        if self.phase != PHASE_INIT:
            return
        self._vector_builder.add(message)
        if not self._vector_builder.ready:
            return
        self.est_vect, self.est_cert = self._vector_builder.build()
        self.ts = 0
        self.record("vector-built", vector=self.est_vect)
        self.phase = PHASE_ROUNDS
        self._begin_round(1)

    # -- round machinery ------------------------------------------------------------------

    def _begin_round(self, round_number: int) -> None:
        self.round = round_number
        self._proto_metrics.inc("rounds_started", round=round_number)
        self.replied = False
        self._proposed = False
        self._estimates = {}
        self._replies = {}
        self._round_propose = None
        self._ack_messages: list[SignedMessage] = []
        notify = getattr(self.detector, "notify_round", None)
        if notify is not None:
            notify(round_number)  # round-aware ◇M variants scale patience
        self.record("round-start", round=round_number)
        # Phase 1 (all-to-all): broadcast the certified estimate.
        self._broadcast_signed(
            CtEstimate(
                sender=self.pid,
                round=self.round,
                est_vect=self.est_vect,
                ts=self.ts,
            ),
            self.est_cert,
        )
        self._replay_buffered()
        if not self.decided:
            self.evaluate_guards()

    def _replay_buffered(self) -> None:
        for message in self._future.pop(self.round, []):
            if self.decided:
                return
            self._dispatch_round_message(message)

    def handle_valid(self, message: SignedMessage) -> None:
        body = message.body
        if isinstance(body, CtDecide):
            self._on_decide(message)
            return
        if isinstance(body, Init):
            self._on_init(message)
            return
        if not isinstance(body, (CtEstimate, CtPropose, CtAck, CtNack)):
            return
        if self.phase == PHASE_INIT:
            self._proto_metrics.inc("messages_buffered")
            self._future.setdefault(body.round, []).append(message)
            return
        if body.round < self.round:
            self._proto_metrics.inc("messages_stale")
            return
        if body.round > self.round:
            self._proto_metrics.inc("messages_buffered")
            self._future.setdefault(body.round, []).append(message)
            return
        self._dispatch_round_message(message)

    def _dispatch_round_message(self, message: SignedMessage) -> None:
        body = message.body
        if isinstance(body, CtEstimate):
            self._on_estimate(message)
        elif isinstance(body, CtPropose):
            self._on_propose(message)
        elif isinstance(body, CtAck):
            self._on_ack(message)
        elif isinstance(body, CtNack):
            self._on_nack(message)

    def _on_estimate(self, message: SignedMessage) -> None:
        # Phase 2 trigger (coordinator only).
        if self.pid != self.coordinator or self._proposed:
            return
        self._estimates.setdefault(message.body.sender, message)
        if len(self._estimates) < self._quorum():
            return
        estimates = list(self._estimates.values())
        picked = select_proposal(estimates)
        assert isinstance(picked.body, CtEstimate)
        self._proposed = True
        self._broadcast_signed(
            CtPropose(
                sender=self.pid, round=self.round, est_vect=picked.body.est_vect
            ),
            build_justification(estimates),
        )

    def _on_propose(self, message: SignedMessage) -> None:
        # Phase 3, positive branch: adopt and acknowledge.
        if self._round_propose is None:
            self._round_propose = message
        if self.replied:
            return
        assert isinstance(message.body, CtPropose)
        self.est_vect = message.body.est_vect
        self.ts = self.round
        self.est_cert = Certificate((message,))
        self.replied = True
        self._broadcast_signed(
            CtAck(sender=self.pid, round=self.round), Certificate((message,))
        )
        self._check_completion()

    def _on_ack(self, message: SignedMessage) -> None:
        self._replies[message.body.sender] = True
        # Decide certificates only need the acks' bodies and signatures.
        self._ack_messages.append(message.light())
        # Proposal extraction: recover a proposal the coordinator withheld
        # from us out of the acknowledger's certificate.
        if self._round_propose is None and message.has_full_cert:
            embedded = message.full_cert().of_type(CtPropose)
            if embedded and not ack_problems(
                message, self.params, self.authority.signature_valid
            ):
                self._on_propose(embedded[0])
                if self.decided:
                    return
        self._check_completion()

    def _on_nack(self, message: SignedMessage) -> None:
        self._replies[message.body.sender] = False
        self._check_completion()

    def _check_completion(self) -> None:
        # Phase 4, evaluated by everyone (all-to-all adaptation).
        if self.decided or len(self._replies) < self._quorum():
            return
        ack_senders = [pid for pid, is_ack in self._replies.items() if is_ack]
        if len(ack_senders) >= self._quorum() and self._round_propose is not None:
            proposal = self._round_propose
            assert isinstance(proposal.body, CtPropose)
            decide_cert = Certificate(
                (proposal, *self._ack_messages)
            )
            self._broadcast_signed(
                CtDecide(sender=self.pid, est_vect=proposal.body.est_vect),
                decide_cert,
            )
            self.decide_value(proposal.body.est_vect, round_number=self.round)
            return
        self._begin_round(self.round + 1)

    def _on_decide(self, message: SignedMessage) -> None:
        assert isinstance(message.body, CtDecide)
        cert = message.cert if isinstance(message.cert, Certificate) else None
        if cert is None:
            return
        self._broadcast_signed(
            CtDecide(sender=self.pid, est_vect=message.body.est_vect), cert
        )
        self.decide_value(message.body.est_vect, round_number=self.round)

    # -- suspicion guard -------------------------------------------------------------------

    def evaluate_guards(self) -> None:
        if self.decided or self.phase != PHASE_ROUNDS or self.replied:
            return
        coordinator = self.coordinator
        if coordinator == self.pid:
            return
        suspected = self.suspected if self.config.detect_muteness else frozenset()
        if coordinator not in suspected and coordinator not in self.faulty:
            return
        self.replied = True
        self._broadcast_signed(
            CtNack(sender=self.pid, round=self.round), EMPTY_CERTIFICATE
        )
        self._check_completion()
