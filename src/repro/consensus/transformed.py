"""The transformed protocol: Byzantine-resilient Vector Consensus (Figure 3).

This is the Hurfin–Raynal protocol after applying the paper's methodology.
Each process is the composition of the five modules of Figure 1:

* the **signature module** (`CertificationAuthority` + the ingress check
  in :meth:`TransformedConsensusProcess.on_message`) signs egress and
  authenticates ingress, discarding messages whose signature is
  inconsistent with their identity field;
* the **muteness failure detection module** (a ◇M detector) maintains
  ``suspected_i``;
* the **non-muteness failure detection module**
  (:class:`~repro.consensus.monitor.MonitorBank`, the Figure 4 automata)
  maintains ``faulty_i`` and drops wrong messages;
* the **certification module** (the ``est_cert`` / ``next_cert`` /
  ``current_cert`` variables and the cert constructions at each send)
  appends and stores certificates;
* the **round-based protocol module** is the transformed algorithm below.

Differences from the crash protocol (Figure 2), per Section 5:

* a preliminary **INIT phase** builds a certified vector of proposals
  (Vector Consensus — decisions are vectors, giving Vector Validity);
* every quorum is ``n - F`` instead of a majority;
* every message is signed and carries a certificate witnessing both its
  values and the decision to send it;
* the coordinator-suspicion guard consults ``suspected_i ∪ faulty_i``.

One deliberate deviation, recorded in DESIGN.md §5: the paper expresses
the automaton state of a process through certificate membership of its
*received-back* own messages (``NEXT(p_i) ∈ next_cert_i``), which leaves a
window where a correct process could relay a CURRENT after broadcasting a
NEXT (its own NEXT still in flight on the loopback channel) — and FIFO
receivers would then correctly flag it. We close the window by tracking
``sent_current`` / ``sent_next`` as local booleans: truthful for correct
processes, and lies by Byzantine processes are exactly what the receivers'
monitors catch.
"""

from __future__ import annotations

from typing import Any

from repro.consensus.base import ConsensusProcess
from repro.consensus.hurfin_raynal import coordinator_of
from repro.consensus.monitor import MonitorBank
from repro.core.certificates import (
    Certificate,
    CertificationAuthority,
    EMPTY_CERTIFICATE,
    SignedMessage,
)
from repro.core.modules import ModuleConfig
from repro.core.specs import SystemParameters
from repro.core.vector_certification import CertifiedVectorBuilder
from repro.detectors.base import FailureDetector
from repro.messages.base import Message
from repro.messages.consensus import Init, VCurrent, VDecide, VNext, Vector
from repro.observability.registry import (
    MODULE_CERTIFICATION,
    MODULE_PROTOCOL,
    MODULE_SIGNATURE,
    NULL_METRICS,
)
from repro.sim.process import ProcessEnv

#: Protocol phases.
PHASE_INIT = "init"
PHASE_ROUNDS = "rounds"


class TransformedConsensusProcess(ConsensusProcess):
    """One correct participant in the transformed (Figure 3) protocol."""

    def __init__(
        self,
        proposal: Any,
        params: SystemParameters,
        authority: CertificationAuthority,
        detector: FailureDetector,
        suspicion_poll: float = 0.5,
        config: ModuleConfig | None = None,
    ) -> None:
        super().__init__(proposal, detector, suspicion_poll)
        self.params = params
        self.authority = authority
        self.config = config if config is not None else ModuleConfig.full()
        self.monitor_bank = MonitorBank(
            own_pid=authority.pid,
            params=params,
            verify=authority.signature_valid,
            use_ledger=self.config.track_equivocation,
            check_certificates=self.config.verify_certificates,
        )
        self.phase = PHASE_INIT
        self.round = 0
        self.est_vect: Vector | None = None
        self.est_cert: Certificate = EMPTY_CERTIFICATE
        self.next_cert: Certificate = EMPTY_CERTIFICATE
        self.current_cert: Certificate = EMPTY_CERTIFICATE
        self.sent_current = False
        self.sent_next = False
        self._vector_builder = CertifiedVectorBuilder(params)
        self._future: dict[int, list[SignedMessage]] = {}
        #: The signed DECIDE this process broadcast when it decided. Its
        #: certificate carries the (n - F) matching CURRENT quorum that
        #: justified the decision, so the message doubles as transferable
        #: per-slot evidence: the service state-transfer path re-verifies
        #: it before replaying a decided vector it did not witness
        #: (docs/SERVICE.md).
        self.decision_justification: SignedMessage | None = None
        # Per-module metric scopes; rebound in bind() once a world exists.
        self._sig_metrics = NULL_METRICS
        self._cert_metrics = NULL_METRICS
        self._proto_metrics = NULL_METRICS

    def bind(self, env: ProcessEnv) -> None:
        super().bind(env)
        self._sig_metrics = env.metrics.scope(MODULE_SIGNATURE, self.pid)
        self._cert_metrics = env.metrics.scope(MODULE_CERTIFICATION, self.pid)
        self._proto_metrics = env.metrics.scope(MODULE_PROTOCOL, self.pid)
        self.monitor_bank.attach_metrics(env.metrics, self.pid)
        # Export the signature-verdict cache's hit/miss counters. The
        # scheme (and hence its cache) may be shared by several processes
        # of one simulated world; attach is first-bind-wins, so the
        # counters land on one scope instead of being split.
        self.authority.scheme.cache.attach_metrics(self._sig_metrics)

    # -- derived views -------------------------------------------------------

    @property
    def faulty(self) -> frozenset[int]:
        """``faulty_i`` — maintained by the non-muteness module."""
        return self.monitor_bank.faulty

    @property
    def coordinator(self) -> int:
        return coordinator_of(self.round, self.n)

    def _quorum(self) -> int:
        return self.params.quorum

    # -- the five-module ingress pipeline (Figure 1) ------------------------------

    def on_message(self, src: int, payload: Any) -> None:
        # The detection modules stay live even after the decision — they
        # sit upstream of the protocol module in Figure 1, and late
        # evidence of a fault still belongs in ``faulty_i``.
        # 1. Signature module.
        message = self._admit_signature(src, payload)
        if message is None:
            return
        # 2. Muteness failure detection module.
        if self.detector is not None:
            self.detector.on_protocol_message(src)
        # 3. Non-muteness failure detection module (Figure 4 automata).
        if self.config.monitor_behavior and not self.monitor_bank.admit(
            src, message, self.now
        ):
            self.evaluate_guards()  # the coordinator may just have turned faulty
            return
        # 4.+5. Certification module updates and protocol module, which are
        # merged in Figure 3 exactly as here.
        if not self.decided:
            self.handle_valid(message)

    def _admit_signature(self, src: int, payload: Any) -> SignedMessage | None:
        """The signature module's ingress check.

        A payload that is not a signed message, claims an identity other
        than its channel of arrival, or fails verification is discarded
        and its (channel-identified) sender is declared faulty.
        """
        if not isinstance(payload, SignedMessage):
            self._sig_metrics.inc("messages_rejected")
            self._declare(src, "signature module: unsigned payload")
            return None
        if not self.config.verify_signatures:
            return payload  # ablated: admit without authentication (E8)
        if payload.body.sender != src:
            self._sig_metrics.inc("messages_rejected")
            self._declare(
                src,
                f"signature module: identity field {payload.body.sender} "
                f"inconsistent with the sending channel {src}",
            )
            return None
        with self._sig_metrics.span("verify"):
            valid = self.authority.signature_valid(payload)
        if not valid:
            self._sig_metrics.inc("messages_rejected")
            self._declare(src, "signature module: invalid signature")
            return None
        self._sig_metrics.inc("messages_verified")
        return payload

    def _declare(self, culprit: int, reason: str) -> None:
        if culprit == self.pid:
            return
        before = culprit in self.monitor_bank.faulty
        self.monitor_bank.declare(culprit, reason, self.now)
        if not before:
            self.record("declare_faulty", target=culprit, reason=reason)
        self.evaluate_guards()

    # -- egress: sign, certify, broadcast ----------------------------------------

    def _broadcast_signed(self, body: Message, cert: Certificate) -> SignedMessage:
        with self._sig_metrics.span("sign"):
            message = self.authority.make(body, cert)
        self._sig_metrics.inc("messages_signed")
        round_label = self.round if self.phase == PHASE_ROUNDS else None
        self._cert_metrics.inc("certificates_attached", round=round_label)
        self._cert_metrics.observe("certificate_entries", len(cert))
        self.broadcast(message)
        return message

    # -- protocol module ------------------------------------------------------------

    def start_protocol(self) -> None:
        # Lines 4-5: empty vector; broadcast the signed INIT. The own INIT
        # is also recorded directly: Proposition 1 requires
        # ``est_vect_i[i] = v_i``, which must not depend on the loopback
        # delivery winning the race into the first n - F arrivals.
        own_init = self._broadcast_signed(
            Init(sender=self.pid, value=self.proposal), EMPTY_CERTIFICATE
        )
        self._vector_builder.add(own_init)

    def handle_valid(self, message: SignedMessage) -> None:
        body = message.body
        if isinstance(body, VDecide):
            self._on_decide(message)
            return
        if isinstance(body, Init):
            self._on_init(message)
            return
        if not isinstance(body, (VCurrent, VNext)):
            return  # unknown type; monitors only admit protocol messages
        if self.phase == PHASE_INIT:
            # Votes can arrive while we are still collecting INITs (a fast
            # peer finished its INIT phase first): buffer them.
            self._proto_metrics.inc("messages_buffered")
            self._future.setdefault(body.round, []).append(message)
            return
        if body.round < self.round:
            self._proto_metrics.inc("messages_stale")
            return  # stale vote (footnote 5)
        if body.round > self.round:
            self._proto_metrics.inc("messages_buffered")
            self._future.setdefault(body.round, []).append(message)
            return
        if isinstance(body, VCurrent):
            self._on_current(message)
        else:
            self._on_next(message)

    # -- INIT phase (lines 4-9) --------------------------------------------------------

    def _on_init(self, message: SignedMessage) -> None:
        if self.phase != PHASE_INIT:
            return  # straggler INIT after the vector was fixed: ignored
        self._vector_builder.add(message)
        if not self._vector_builder.ready:
            return
        # Lines 6-9 complete: build the certified vector.
        self.est_vect, self.est_cert = self._vector_builder.build()
        self.record("vector-built", vector=self.est_vect)
        self.phase = PHASE_ROUNDS
        self._begin_round(1)

    # -- round machinery (lines 10-31) ----------------------------------------------------

    def _begin_round(self, round_number: int) -> None:
        self.round = round_number
        self.sent_current = False
        self.sent_next = False
        self._proto_metrics.inc("rounds_started", round=round_number)
        notify = getattr(self.detector, "notify_round", None)
        if notify is not None:
            notify(round_number)  # round-aware ◇M variants scale patience
        self.record("round-start", round=round_number)
        # Line 12: the coordinator proposes, certified by est ∪ next.
        if self.pid == self.coordinator:
            self._broadcast_signed(
                VCurrent(sender=self.pid, round=self.round, est_vect=self.est_vect),
                self.est_cert.union(self.next_cert),
            )
            self.sent_current = True
        # Line 13: reset the round certificates.
        self.next_cert = EMPTY_CERTIFICATE
        self.current_cert = EMPTY_CERTIFICATE
        self._replay_buffered()
        if not self.decided:
            self.evaluate_guards()

    def _replay_buffered(self) -> None:
        for message in self._future.pop(self.round, []):
            if self.decided:
                return
            if isinstance(message.body, VCurrent):
                self._on_current(message)
            elif isinstance(message.body, VNext):
                self._on_next(message)

    def _on_current(self, message: SignedMessage) -> None:
        # Line 16: store the signed CURRENT.
        self.current_cert = self.current_cert.add(message)
        # Line 17: adopt the first CURRENT's vector and certificate.
        if len(self.current_cert) == 1:
            assert isinstance(message.body, VCurrent)
            if message.has_full_cert:
                self.est_cert = message.full_cert()
            self.est_vect = message.body.est_vect
            # Lines 18-19: relay (q0 -> q1 for i != c).
            if (
                not self.sent_current
                and not self.sent_next
                and self.pid != self.coordinator
            ):
                self._broadcast_signed(
                    VCurrent(
                        sender=self.pid, round=self.round, est_vect=self.est_vect
                    ),
                    self.current_cert,
                )
                self.sent_current = True
        self._check_progress()

    def _on_next(self, message: SignedMessage) -> None:
        # Lines 26-27: store the signed NEXT (pruned: receivers of our
        # future certificates only need its body and signature).
        self.next_cert = self.next_cert.add(message.light())
        self._check_progress()

    def _check_progress(self) -> None:
        if self.decided:
            return
        # Lines 20-21: decide on an (n - F) CURRENT quorum. Only CURRENTs
        # carrying *our* adopted vector count: the DECIDE certificate must
        # be well-formed w.r.t. the decided vector (§5.1), and under an
        # equivocating coordinator a round can contain valid CURRENTs with
        # different vectors.
        matching = self.current_cert.filter(
            lambda sm: isinstance(sm.body, VCurrent)
            and sm.body.est_vect == self.est_vect
        )
        if len(matching.senders()) >= self._quorum():
            decide_cert = matching.union(self.est_cert)
            self.decision_justification = self._broadcast_signed(
                VDecide(sender=self.pid, est_vect=self.est_vect), decide_cert
            )
            self.decide_value(self.est_vect, round_number=self.round)
            return
        current_senders = self.current_cert.senders()
        # Lines 28-29: change_mind (q1 -> q2).
        rec_from = current_senders | self.next_cert.senders()
        if (
            self.sent_current
            and not self.sent_next
            and len(rec_from) >= self._quorum()
        ):
            self._broadcast_signed(
                VNext(sender=self.pid, round=self.round),
                self.current_cert.union(self.next_cert),
            )
            self.sent_next = True
        # Line 14 exit + line 31: an (n - F) NEXT quorum ends the round.
        if len(self.next_cert.senders()) >= self._quorum():
            if not self.sent_next:
                self._broadcast_signed(
                    VNext(sender=self.pid, round=self.round), self.next_cert
                )
                self.sent_next = True
            self._begin_round(self.round + 1)

    def _on_decide(self, message: SignedMessage) -> None:
        # Lines 2-3: relay the DECIDE with the same certificate, decide.
        assert isinstance(message.body, VDecide)
        cert = message.cert if isinstance(message.cert, Certificate) else None
        if cert is None:
            return  # a pruned DECIDE certificate would have been rejected
        self.decision_justification = self._broadcast_signed(
            VDecide(sender=self.pid, est_vect=message.body.est_vect), cert
        )
        self.decide_value(message.body.est_vect, round_number=self.round)

    # -- guards (lines 22-25) ---------------------------------------------------------------

    def evaluate_guards(self) -> None:
        if self.decided or self.phase != PHASE_ROUNDS:
            return
        coordinator = self.coordinator
        if coordinator == self.pid:
            return
        suspected = self.suspected if self.config.detect_muteness else frozenset()
        if coordinator not in suspected and coordinator not in self.faulty:
            return
        # q0 -> q2: only from the initial state (no vote sent, no CURRENT
        # received).
        if self.sent_current or self.sent_next or len(self.current_cert) > 0:
            return
        self._broadcast_signed(
            VNext(sender=self.pid, round=self.round),
            self.current_cert.union(self.next_cert).union(self.est_cert),
        )
        self.sent_next = True
        self._check_progress()
