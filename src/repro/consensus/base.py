"""Shared shape of consensus processes.

Both crash-model protocols and the transformed arbitrary-fault protocol
are *regular round-based* algorithms (the class the paper's methodology
applies to): a process repeatedly exchanges messages in asynchronous
rounds until it decides. This module factors the common skeleton —
proposal, decision bookkeeping, failure-detector wiring and the periodic
suspicion poll that turns the pseudocode's ``upon (p_c in suspected)``
guard into discrete events.
"""

from __future__ import annotations

from typing import Any

from repro.detectors.base import FailureDetector
from repro.observability.registry import MODULE_PROTOCOL
from repro.sim.process import Process, ProcessEnv

#: Timer name used for the recurring suspicion-guard evaluation.
SUSPICION_POLL_TIMER = "suspicion-poll"


class ConsensusProcess(Process):
    """A process participating in one consensus instance.

    Subclasses implement the round logic; this base owns the proposal, the
    decision slot (write-once), and the detector plumbing. ``decide`` and
    round starts are recorded in the run trace, which is what the property
    checkers consume.
    """

    def __init__(
        self,
        proposal: Any,
        detector: FailureDetector | None = None,
        suspicion_poll: float = 0.5,
    ) -> None:
        super().__init__()
        self.proposal = proposal
        self.detector = detector
        self._suspicion_poll = suspicion_poll
        self.decision: Any = None
        self.decided = False
        self.decision_round: int | None = None
        self.decision_time: float | None = None

    # -- wiring ------------------------------------------------------------

    def bind(self, env: ProcessEnv) -> None:
        super().bind(env)
        if self.detector is not None:
            self.detector.attach(env)

    def on_start(self) -> None:
        if self.detector is not None:
            self.detector.start()
            self.set_timer(SUSPICION_POLL_TIMER, self._suspicion_poll)
        self.record("propose", value=self.proposal)
        self.start_protocol()

    def on_timer(self, name: str) -> None:
        if name == SUSPICION_POLL_TIMER:
            if not self.decided:
                self.evaluate_guards()
                self.set_timer(SUSPICION_POLL_TIMER, self._suspicion_poll)
            return
        self.handle_timer(name)

    def on_message(self, src: int, payload: Any) -> None:
        if self.detector is not None and self.detector.filter_message(src, payload):
            return
        if self.decided:
            return
        self.handle_message(src, payload)

    # -- decision ------------------------------------------------------------

    @property
    def suspected(self) -> frozenset[int]:
        """The ``suspected`` set exposed by the attached detector."""
        if self.detector is None:
            return frozenset()
        return self.detector.suspected

    def decide_value(self, value: Any, round_number: int | None = None) -> None:
        """Fix the decision (write-once) and record it in the trace."""
        if self.decided:
            return
        self.decided = True
        self.decision = value
        self.decision_round = round_number
        self.decision_time = self.now
        self.env.metrics.inc(
            MODULE_PROTOCOL, "decisions", pid=self.pid, round=round_number
        )
        self.env.metrics.observe(
            MODULE_PROTOCOL, "decision_latency", self.now, pid=self.pid
        )
        self.cancel_timer(SUSPICION_POLL_TIMER)
        if self.detector is not None:
            self.detector.stop()
        self.record("decide", value=value, round=round_number)

    # -- hooks for subclasses ---------------------------------------------------

    def start_protocol(self) -> None:
        """Begin the protocol (called once at start)."""
        raise NotImplementedError

    def handle_message(self, src: int, payload: Any) -> None:
        """Handle a protocol message (detector traffic already filtered)."""
        raise NotImplementedError

    def evaluate_guards(self) -> None:
        """Re-evaluate state guards that depend on the detector output."""

    def handle_timer(self, name: str) -> None:
        """Handle a subclass-specific timer."""
