"""Certificate well-formedness predicates for the transformed CT protocol.

Designed by re-applying the Section 3 guidelines ("certificates must
witness the values carried by messages and the correct evaluation of the
conditions enabling their send events") to the Chandra–Toueg protocol —
the second case study demonstrating that the methodology, not the
Figure 3 artefact, is the paper's contribution.

Embedding depth (same pruning discipline as the HR case):

* an ``ESTIMATE`` with ``ts = 0`` carries its INIT set in full;
* an ``ESTIMATE`` with ``ts = r'`` carries the round-``r'`` ``PROPOSE``
  it acknowledged, with that proposal's own justification kept one level
  (estimate bodies + signatures) so the selection rule stays checkable;
* a ``PROPOSE`` carries its ``n - F`` justifying estimates, each with
  certificate pruned to the shape above;
* ``ACK`` carries the proposal it acknowledges; ``NACK`` carries nothing
  (suspicion is local); ``DECIDE`` carries the proposal plus the ack
  quorum.
"""

from __future__ import annotations

from typing import Callable

from repro.consensus.hurfin_raynal import coordinator_of
from repro.core.certificates import Certificate, SignedMessage
from repro.core.specs import SystemParameters
from repro.core.vector_certification import certified_vector_problems
from repro.messages.consensus import Init
from repro.messages.ct import CtAck, CtDecide, CtEstimate, CtPropose

SignatureCheck = Callable[[SignedMessage], bool]


def select_proposal(
    estimates: list[SignedMessage],
) -> SignedMessage:
    """CT's deterministic phase-2 rule: highest ts, ties to lowest pid.

    Both the coordinator and every verifier run this over the same
    justification set, which is what makes a corrupted selection
    detectable.
    """
    return max(
        estimates,
        key=lambda sm: (sm.body.ts, -sm.body.sender),  # type: ignore[union-attr]
    )


def estimate_problems(
    message: SignedMessage,
    params: SystemParameters,
    verify: SignatureCheck,
    shallow: bool = False,
) -> list[str]:
    """PF for an ESTIMATE: the certificate witnesses (est_vect, ts).

    ``shallow=True`` is used for estimates embedded inside a proposal's
    justification, whose own certificates are pruned one level deeper:
    only the body invariants are checked there (the full check already
    ran at the direct receivers of those estimates).
    """
    body = message.body
    if not isinstance(body, CtEstimate):
        return [f"expected an ESTIMATE body, found {type(body).__name__}"]
    problems: list[str] = []
    if len(body.est_vect) != params.n:
        problems.append(
            f"estimate vector has length {len(body.est_vect)}, expected {params.n}"
        )
    if body.ts < 0 or body.ts >= body.round:
        problems.append(
            f"estimate carries ts={body.ts}, impossible for round {body.round}"
        )
    if shallow or problems:
        return problems
    if not message.has_full_cert:
        return ["estimate certificate was pruned; cannot be analysed"]
    cert = message.full_cert()
    if body.ts == 0:
        inits = cert.of_type(Init)
        problems.extend(
            certified_vector_problems(inits, body.est_vect, params, verify)
        )
        return problems
    proposes = cert.of_type(CtPropose)
    if len(proposes) != 1:
        return [
            f"estimate with ts={body.ts} must embed exactly the acknowledged "
            f"PROPOSE, found {len(proposes)}"
        ]
    inner = proposes[0]
    if not verify(inner):
        return ["embedded PROPOSE has an invalid signature"]
    assert isinstance(inner.body, CtPropose)
    if inner.body.round != body.ts:
        problems.append(
            f"embedded PROPOSE is for round {inner.body.round}, estimate "
            f"claims adoption at ts={body.ts}"
        )
    if inner.body.sender != coordinator_of(body.ts, params.n):
        problems.append(
            "embedded PROPOSE was not signed by its round's coordinator"
        )
    if inner.body.est_vect != body.est_vect:
        problems.append(
            "estimate vector differs from the acknowledged proposal's vector"
        )
    if not problems and inner.has_full_cert:
        problems.extend(propose_problems(inner, params, verify, shallow=True))
    return problems


def propose_problems(
    message: SignedMessage,
    params: SystemParameters,
    verify: SignatureCheck,
    shallow: bool = False,
) -> list[str]:
    """PF for a PROPOSE: quorum justification + the selection rule.

    ``shallow=True`` (proposal embedded inside an estimate's certificate)
    checks the justification with the embedded estimates in shallow mode.
    """
    body = message.body
    if not isinstance(body, CtPropose):
        return [f"expected a PROPOSE body, found {type(body).__name__}"]
    problems: list[str] = []
    if body.sender != coordinator_of(body.round, params.n):
        problems.append(
            f"PROPOSE for round {body.round} signed by {body.sender}, not the "
            f"coordinator {coordinator_of(body.round, params.n)}"
        )
    if len(body.est_vect) != params.n:
        problems.append("proposal vector has the wrong length")
    if not message.has_full_cert:
        problems.append("PROPOSE certificate was pruned; cannot be analysed")
        return problems
    cert = message.full_cert()
    estimates: list[SignedMessage] = []
    senders: set[int] = set()
    for sm in cert.of_type(CtEstimate):
        if not verify(sm):
            problems.append(
                f"justifying estimate claiming {sm.body.sender}: bad signature"
            )
            continue
        assert isinstance(sm.body, CtEstimate)
        if sm.body.round != body.round:
            problems.append(
                f"justifying estimate from {sm.body.sender} is for round "
                f"{sm.body.round}, proposal is for round {body.round}"
            )
            continue
        inner_problems = estimate_problems(sm, params, verify, shallow=shallow)
        if inner_problems:
            problems.extend(
                f"justifying estimate from {sm.body.sender}: {p}"
                for p in inner_problems
            )
            continue
        if sm.body.sender in senders:
            continue
        senders.add(sm.body.sender)
        estimates.append(sm)
    if len(senders) < params.quorum:
        problems.append(
            f"proposal justified by {len(senders)} valid estimates, needs "
            f"n-F = {params.quorum} — the coordinator misevaluated phase 2"
        )
        return problems
    picked = select_proposal(estimates)
    assert isinstance(picked.body, CtEstimate)
    if picked.body.est_vect != body.est_vect:
        problems.append(
            "proposal vector is not the deterministic pick (highest ts, "
            "lowest pid) of its own justification — corrupted selection"
        )
    return problems


def ack_problems(
    message: SignedMessage,
    params: SystemParameters,
    verify: SignatureCheck,
) -> list[str]:
    """PF for an ACK: it must embed the proposal being acknowledged."""
    body = message.body
    if not isinstance(body, CtAck):
        return [f"expected an ACK body, found {type(body).__name__}"]
    if not message.has_full_cert:
        return ["ACK certificate was pruned; cannot be analysed"]
    proposes = message.full_cert().of_type(CtPropose)
    if len(proposes) != 1:
        return [
            f"ACK must embed exactly the acknowledged PROPOSE, found "
            f"{len(proposes)}"
        ]
    inner = proposes[0]
    problems: list[str] = []
    if not verify(inner):
        return ["acknowledged PROPOSE has an invalid signature"]
    assert isinstance(inner.body, CtPropose)
    if inner.body.round != body.round:
        problems.append(
            f"ACK for round {body.round} embeds a PROPOSE for round "
            f"{inner.body.round}"
        )
    problems.extend(propose_problems(inner, params, verify, shallow=True))
    return problems


def decide_problems(
    message: SignedMessage,
    params: SystemParameters,
    verify: SignatureCheck,
) -> list[str]:
    """PF for a DECIDE: the proposal plus an ``n - F`` ack quorum."""
    body = message.body
    if not isinstance(body, CtDecide):
        return [f"expected a DECIDE body, found {type(body).__name__}"]
    if not message.has_full_cert:
        return ["DECIDE certificate was pruned; cannot be analysed"]
    cert = message.full_cert()
    proposes = cert.of_type(CtPropose)
    if len(proposes) != 1:
        return [
            f"DECIDE must embed exactly one PROPOSE, found {len(proposes)}"
        ]
    proposal = proposes[0]
    problems: list[str] = []
    if not verify(proposal):
        return ["embedded PROPOSE has an invalid signature"]
    assert isinstance(proposal.body, CtPropose)
    if proposal.body.est_vect != body.est_vect:
        problems.append("decided vector differs from the embedded proposal's")
    problems.extend(propose_problems(proposal, params, verify, shallow=True))
    ack_senders: set[int] = set()
    for sm in cert.of_type(CtAck):
        if not verify(sm):
            problems.append(
                f"ACK entry claiming {sm.body.sender}: bad signature"
            )
            continue
        assert isinstance(sm.body, CtAck)
        if sm.body.round != proposal.body.round:
            problems.append(
                f"ACK entry from {sm.body.sender} is for round {sm.body.round}, "
                f"proposal is for round {proposal.body.round}"
            )
            continue
        ack_senders.add(sm.body.sender)
    if len(ack_senders) < params.quorum:
        problems.append(
            f"DECIDE backed by {len(ack_senders)} valid acks, needs "
            f"n-F = {params.quorum} — the sender misevaluated its decision"
        )
    return problems


def build_justification(estimates: list[SignedMessage]) -> Certificate:
    """The coordinator's proposal certificate, with the embedded
    estimates' own certificates pruned to the documented shape."""
    pruned = []
    for sm in estimates:
        assert isinstance(sm.body, CtEstimate)
        if sm.body.ts == 0:
            pruned.append(sm)  # INIT sets stay (they are leaves)
        else:
            pruned.append(sm.pruned(1))  # keep the acked PROPOSE, light
    return Certificate(tuple(pruned))
