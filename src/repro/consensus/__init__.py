"""Consensus protocols: the crash-model originals and the transformed one."""

from repro.consensus.base import ConsensusProcess
from repro.consensus.chandra_toueg import ChandraTouegProcess
from repro.consensus.hurfin_raynal import HurfinRaynalProcess, coordinator_of
from repro.consensus.monitor import (
    EquivocationLedger,
    FaultReport,
    MonitorBank,
    PeerMonitor,
)
from repro.consensus.transformed import TransformedConsensusProcess
from repro.consensus.transformed_ct import TransformedCtProcess

__all__ = [
    "ChandraTouegProcess",
    "ConsensusProcess",
    "EquivocationLedger",
    "FaultReport",
    "HurfinRaynalProcess",
    "MonitorBank",
    "PeerMonitor",
    "TransformedConsensusProcess",
    "TransformedCtProcess",
    "coordinator_of",
]
