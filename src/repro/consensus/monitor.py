"""Non-muteness failure detection for the transformed protocol (Figure 4).

For each peer ``p_k``, process ``p_i`` runs a :class:`PeerMonitor` — the
state machine ``SM_pi(p_k)`` of the paper — over the stream of signed
messages received from ``p_k``. Because channels are FIFO, that stream
reflects ``p_k``'s send order, so the monitor can track which round
``p_k`` is in and which automaton state (q0 / q1 / q2) it occupies, and
flag:

* **out-of-order messages** — a type not enabled in the current state
  (duplicated CURRENT, a vote for a skipped round, traffic after DECIDE,
  a second INIT, ...);
* **wrong expected messages** — enabled type but wrong syntax or a
  certificate that is not well-formed w.r.t. its arguments or its send
  decision (the ``PF_{a,b}`` predicates, implemented by the analysers in
  :mod:`repro.consensus.certification`).

States mirror Figure 4: ``start`` (before INIT), per-round ``q0`` (no vote
sent), ``q1`` (CURRENT sent), ``q2`` (NEXT sent), ``final`` (DECIDE seen)
and the absorbing ``faulty``. The ``r -> r+1`` arcs of the figure are the
round-rollover transitions out of ``q2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from repro.consensus import certification as certs
from repro.core.automaton import FAULTY, BehaviorViolation, StateMachine, Step
from repro.core.certificates import SignedMessage
from repro.core.specs import SystemParameters
from repro.consensus.certification import PredicateCache, SignatureCheck
from repro.consensus.hurfin_raynal import coordinator_of
from repro.messages.consensus import Init, VCurrent, VDecide, VNext
from repro.observability.registry import (
    MODULE_CERTIFICATION,
    MODULE_MONITOR,
    MetricsRegistry,
    NULL_METRICS,
)

START = "start"
Q0 = "q0"
Q1 = "q1"
Q2 = "q2"
FINAL = "final"


@dataclass(frozen=True, slots=True)
class FaultReport:
    """A declaration that ``culprit`` exhibited a non-muteness failure."""

    culprit: int
    reason: str
    time: float


class PeerMonitorLike(Protocol):
    """What the monitor bank requires of a per-peer behaviour automaton."""

    faulty: bool

    def feed(self, message: SignedMessage) -> Step:  # pragma: no cover
        ...

    @property
    def state(self) -> str:  # pragma: no cover
        ...


#: Builds the behaviour automaton for one peer.
MonitorFactory = Callable[[int], "PeerMonitorLike"]


class PeerMonitor:
    """``SM_p(q)``: the behaviour automaton ``p`` runs for one peer ``q``."""

    def __init__(
        self,
        peer: int,
        params: SystemParameters,
        verify: SignatureCheck,
        check_certificates: bool = True,
        initial_state: str = START,
        pf_cache: PredicateCache | None = None,
    ) -> None:
        self.peer = peer
        self.params = params
        self.verify = verify
        self.check_certificates = check_certificates
        # Clean-verdict memo, shared with the sibling monitors of one
        # bank (same verify, same key domain — docs/PERFORMANCE.md).
        self.pf_cache = pf_cache
        # Streams normally open with the peer's INIT; variants that move
        # the INIT phase off-channel (echo-INIT over reliable broadcast)
        # start the stream directly in round 1 / q0.
        self.round = 0 if initial_state == START else 1
        # Certification-module accounting; rebound by the owning bank
        # once the hosting process joins a world.
        self.cert_metrics = NULL_METRICS
        self._machine = StateMachine(initial=initial_state)
        self._wire_rules()

    def attach_metrics(self, cert_metrics) -> None:
        """Bind the certification-module metrics scope (host's pid)."""
        self.cert_metrics = cert_metrics

    # -- public surface ---------------------------------------------------------

    @property
    def state(self) -> str:
        return self._machine.state

    @property
    def faulty(self) -> bool:
        return self._machine.faulty

    @property
    def fault_reason(self) -> str | None:
        return self._machine.fault_reason

    def feed(self, message: SignedMessage) -> Step:
        """Advance on a receipt from this peer (signature pre-checked)."""
        return self._machine.feed(message)

    # -- rule wiring -------------------------------------------------------------

    def _wire_rules(self) -> None:
        machine = self._machine
        machine.add_rule(START, Init, self._on_init)
        for state in (Q0, Q1, Q2):
            machine.add_rule(state, VDecide, self._on_decide)
        machine.add_rule(Q0, VCurrent, self._on_current_same_round)
        machine.add_rule(Q0, VNext, self._on_next_same_round)
        machine.add_rule(Q1, VNext, self._on_next_same_round)
        machine.add_rule(Q2, VCurrent, self._on_current_new_round)
        machine.add_rule(Q2, VNext, self._on_next_new_round)
        # q1 receiving a second CURRENT and final receiving anything have
        # no rules on purpose: those receipts are out-of-order faults.

    # -- handlers -------------------------------------------------------------------

    def _on_init(self, message: SignedMessage) -> str:
        self._require_clean(self._analyse(certs.init_message_problems, message))
        self.round = 1
        return Q0

    def _on_current_same_round(self, message: SignedMessage) -> str:
        self._check_current(message, expected_round=self.round)
        return Q1

    def _on_current_new_round(self, message: SignedMessage) -> str:
        self._check_current(message, expected_round=self.round + 1)
        self.round += 1
        return Q1

    def _on_next_same_round(self, message: SignedMessage) -> str:
        self._check_next(message, expected_round=self.round)
        return Q2

    def _on_next_new_round(self, message: SignedMessage) -> str:
        self._check_next(message, expected_round=self.round + 1)
        self.round += 1
        return Q2

    def _on_decide(self, message: SignedMessage) -> str:
        self._require_clean(
            self._analyse(certs.decide_message_problems, message)
        )
        return FINAL

    # -- shared checks ------------------------------------------------------------------

    def _check_current(self, message: SignedMessage, expected_round: int) -> None:
        body = message.body
        assert isinstance(body, VCurrent)
        if body.round != expected_round:
            raise BehaviorViolation(
                f"out-of-order: CURRENT for round {body.round} while the peer's "
                f"stream is at round {expected_round} "
                "(skipped or repeated round)"
            )
        coordinator = coordinator_of(body.round, self.params.n)
        if self.peer != body.sender:
            raise BehaviorViolation(
                f"identity mismatch: CURRENT claims sender {body.sender} on "
                f"the channel of peer {self.peer}"
            )
        del coordinator  # form dispatch happens inside the predicate
        self._require_clean(
            self._analyse(certs.current_message_problems, message)
        )

    def _check_next(self, message: SignedMessage, expected_round: int) -> None:
        body = message.body
        assert isinstance(body, VNext)
        if body.round != expected_round:
            raise BehaviorViolation(
                f"out-of-order: NEXT for round {body.round} while the peer's "
                f"stream is at round {expected_round}"
            )
        if self.peer != body.sender:
            raise BehaviorViolation(
                f"identity mismatch: NEXT claims sender {body.sender} on the "
                f"channel of peer {self.peer}"
            )
        self._require_clean(self._analyse(certs.next_message_problems, message))

    def _analyse(self, predicate, message: SignedMessage) -> list[str]:
        """Run one PF predicate under the certification span timer."""
        with self.cert_metrics.span("pf_predicate"):
            return predicate(message, self.params, self.verify, cache=self.pf_cache)

    def _require_clean(self, problems: list[str]) -> None:
        if not self.check_certificates:
            return
        self.cert_metrics.inc("certificates_checked", round=self.round)
        if problems:
            self.cert_metrics.inc("certificates_rejected", round=self.round)
            raise BehaviorViolation("; ".join(problems))


class EquivocationLedger:
    """Cross-channel uniqueness tracking of signed per-round messages.

    A correct process signs at most one CURRENT and one NEXT per round and
    one INIT overall. Signed messages surface both directly (on the
    sender's channel) and *embedded in certificates* relayed by third
    parties; collecting every sighting in one ledger turns an
    equivocation — two differently-valued signed messages for the same
    (sender, type, round) slot — into verifiable evidence against the
    signer, whichever channels the two branches travelled.

    This realises the paper's check that "the right message has been sent
    by the right process at the right time with the right arguments"
    across *all* observed history.

    The ledger *declares* equivocators faulty but does not veto otherwise
    well-formed messages: an innocent process may have built its state on
    one branch of an equivocation before anyone could know, and rejecting
    its messages would sacrifice Termination (see DESIGN.md §5 for the
    liveness/safety trade-off analysis).
    """

    def __init__(self, verify: SignatureCheck) -> None:
        self._verify = verify
        self._seen: dict[tuple[int, str, int | None], bytes] = {}

    def snapshot(self) -> tuple[tuple[int, str, int, str], ...]:
        """Canonical view of every recorded signing slot.

        One ``(sender, type, round, fingerprint-hex)`` tuple per
        ``(sender, type, round)`` slot seen so far (round ``-1`` for
        unrounded bodies), sorted — the model checker's state digest
        includes this so two states that differ only in recorded
        equivocation evidence are not conflated.
        """
        return tuple(
            sorted(
                (sender, kind, -1 if rnd is None else rnd, fingerprint.hex())
                for (sender, kind, rnd), fingerprint in self._seen.items()
            )
        )

    def conflicts(self, message: SignedMessage) -> list[tuple[int, str]]:
        """Record ``message`` and everything embedded in its certificate.

        Returns ``(culprit, description)`` pairs for every *newly proven*
        equivocation. Unverifiable entries are skipped (they are handled
        by the signature predicates, not the ledger).
        """
        found: list[tuple[int, str]] = []
        self._walk(message, found)
        return found

    def _walk(self, message: SignedMessage, found: list[tuple[int, str]]) -> None:
        if not self._verify(message):
            return
        body = message.body
        key = (body.sender, type(body).__name__, getattr(body, "round", None))
        fingerprint = message.light_bytes()
        previous = self._seen.get(key)
        if previous is None:
            self._seen[key] = fingerprint
        elif previous != fingerprint:
            found.append(
                (
                    body.sender,
                    f"equivocation: two different signed "
                    f"{type(body).__name__} messages for round "
                    f"{getattr(body, 'round', '-')}",
                )
            )
        if message.has_full_cert:
            for entry in message.full_cert():
                self._walk(entry, found)


class MonitorBank:
    """All of one process's peer monitors plus its ``faulty`` set.

    This is the complete non-muteness failure detection module of
    Figure 1: it admits or rejects each incoming signed message, and
    maintains the set ``faulty_i`` that the protocol module may read.
    """

    def __init__(
        self,
        own_pid: int,
        params: SystemParameters,
        verify: SignatureCheck,
        use_ledger: bool = True,
        check_certificates: bool = True,
        initial_state: str = START,
        monitor_factory: "MonitorFactory | None" = None,
    ) -> None:
        self.own_pid = own_pid
        self.params = params
        # One clean-verdict memo for the whole bank: every monitor runs
        # the same verify under the same key domain, so a CURRENT checked
        # on one channel needs no re-analysis when it reappears inside a
        # certificate on another.
        self.pf_cache = PredicateCache()
        if monitor_factory is None:
            def monitor_factory(peer: int):  # the Figure 4 default
                return PeerMonitor(
                    peer,
                    params,
                    verify,
                    check_certificates=check_certificates,
                    initial_state=initial_state,
                    pf_cache=self.pf_cache,
                )
        self.monitors: dict[int, "PeerMonitorLike"] = {
            peer: monitor_factory(peer)
            for peer in range(params.n)
            if peer != own_pid
        }
        self.ledger = EquivocationLedger(verify) if use_ledger else None
        self._faulty: set[int] = set()
        self._reports: list[FaultReport] = []
        # Metrics scopes; rebound via attach_metrics once the hosting
        # process is in a world.
        self.metrics = NULL_METRICS
        self.cert_metrics = NULL_METRICS

    def attach_metrics(self, registry: MetricsRegistry, pid: int) -> None:
        """Bind the bank (and its monitors) to the world's registry.

        Automaton admissions are attributed to the non-muteness module;
        the PF predicate checks the monitors run are attributed to the
        certification module — they analyse certificates, per Figure 1.
        """
        self.metrics = registry.scope(MODULE_MONITOR, pid)
        self.cert_metrics = registry.scope(MODULE_CERTIFICATION, pid)
        self.pf_cache.attach_metrics(self.cert_metrics)
        for monitor in self.monitors.values():
            attach = getattr(monitor, "attach_metrics", None)
            if attach is not None:
                attach(self.cert_metrics)

    @property
    def faulty(self) -> frozenset[int]:
        """The ``faulty_i`` set (read-only view for the protocol module)."""
        return frozenset(self._faulty)

    @property
    def reports(self) -> tuple[FaultReport, ...]:
        return tuple(self._reports)

    def admit(self, src: int, message: SignedMessage, now: float) -> bool:
        """Run the peer's automaton; ``False`` means drop (sender declared
        faulty or already faulty)."""
        equivocations = (
            self.ledger.conflicts(message) if self.ledger is not None else []
        )
        if equivocations:
            self.metrics.inc("equivocations_detected", len(equivocations))
        for culprit, description in equivocations:
            if culprit != self.own_pid:
                self.declare(culprit, description, now)
        monitor = self.monitors.get(src)
        if monitor is None:  # own loopback messages are trusted
            return True
        already_faulty = monitor.faulty
        step = monitor.feed(message)
        self.metrics.inc("automaton_transitions")
        if step.accepted:
            self.metrics.inc("messages_admitted")
            return True
        self.metrics.inc("messages_rejected")
        if not already_faulty:
            self.declare(src, step.reason or "behaviour violation", now)
        return False

    def declare(self, culprit: int, reason: str, now: float) -> None:
        """Add ``culprit`` to the faulty set (used also by the signature
        module for identity/signature failures)."""
        if culprit not in self._faulty:
            self._faulty.add(culprit)
            self.metrics.inc("faults_declared")
            self._reports.append(
                FaultReport(culprit=culprit, reason=reason, time=now)
            )

    def state_of(self, peer: int) -> str:
        if peer == self.own_pid:
            return "self"
        if peer in self._faulty and not self.monitors[peer].faulty:
            return FAULTY
        return self.monitors[peer].state
