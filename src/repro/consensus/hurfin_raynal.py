"""Hurfin–Raynal ◇S-based consensus in the crash model (paper Figure 2).

The protocol proceeds in asynchronous rounds under the rotating-coordinator
paradigm. In round ``r`` the coordinator broadcasts a ``CURRENT`` vote
carrying its estimate; every process votes either ``CURRENT`` (adopting the
coordinator's estimate) or ``NEXT`` (when it suspects the coordinator). A
majority of ``CURRENT`` votes decides; a majority of ``NEXT`` votes moves
everyone to round ``r + 1``. A process that voted ``CURRENT`` may *change
its mind* and vote ``NEXT`` when a majority of votes arrived but neither
kind has a majority, which prevents deadlock. ``DECIDE`` messages are
relayed so that one decision reaches all correct processes.

Assumptions (as in the paper): a majority of correct processes
(``f <= floor((n-1)/2)`` crashes), a ◇S failure detector, reliable FIFO
channels. Votes for a future round are buffered and replayed when the
round starts; votes for past rounds are discarded (paper footnote 5).

This is an event-driven translation of the pseudocode: the ``while`` loop
of lines 6–16 becomes re-evaluation of the decide / change-mind /
progress conditions after every receipt, and the ``upon (p_c in
suspected)`` guard is additionally evaluated on a periodic poll.

The three automaton states of the paper (q0: not yet voted, q1: voted
CURRENT, q2: voted NEXT) are tracked explicitly in ``state``.
"""

from __future__ import annotations

from typing import Any

from repro.consensus.base import ConsensusProcess
from repro.detectors.base import FailureDetector
from repro.messages.consensus import Current, Decide, Next

# Automaton states of Figure 2.
Q0 = "q0"
Q1 = "q1"
Q2 = "q2"


def coordinator_of(round_number: int, n: int) -> int:
    """Rotating coordinator: round ``r`` is led by process ``(r-1) mod n``.

    The paper writes ``c = (r_i mod n) + 1`` with 1-based identities and
    the increment *before* use; with 0-based identities and rounds
    starting at 1 this is ``(r - 1) mod n``.
    """
    return (round_number - 1) % n


class HurfinRaynalProcess(ConsensusProcess):
    """One participant in the Hurfin–Raynal crash-model protocol."""

    def __init__(
        self,
        proposal: Any,
        detector: FailureDetector,
        suspicion_poll: float = 0.5,
    ) -> None:
        super().__init__(proposal, detector, suspicion_poll)
        self.round = 0
        self.est: Any = proposal
        self.state = Q0
        self.nb_current = 0
        self.nb_next = 0
        self.rec_from: set[int] = set()
        self._future: dict[int, list[tuple[int, Any]]] = {}

    # -- round management -----------------------------------------------------

    def start_protocol(self) -> None:
        self._begin_round(1)

    @property
    def coordinator(self) -> int:
        return coordinator_of(self.round, self.n)

    def _begin_round(self, round_number: int) -> None:
        self.round = round_number
        self.state = Q0
        self.nb_current = 0
        self.nb_next = 0
        self.rec_from = set()
        self.record("round-start", round=round_number)
        if self.pid == self.coordinator:
            # Line 5: the coordinator proposes its estimate.
            self.broadcast(Current(sender=self.pid, round=self.round, est=self.est))
        self._replay_buffered()
        self.evaluate_guards()

    def _replay_buffered(self) -> None:
        for src, payload in self._future.pop(self.round, []):
            if not self.decided:
                self.handle_message(src, payload)

    # -- message handling --------------------------------------------------------

    def handle_message(self, src: int, payload: Any) -> None:
        if self.detector is not None:
            self.detector.on_protocol_message(src)
        if isinstance(payload, Decide):
            self._on_decide(payload)
            return
        if isinstance(payload, (Current, Next)):
            if payload.round < self.round:
                return  # stale vote: discard (footnote 5)
            if payload.round > self.round:
                self._future.setdefault(payload.round, []).append((src, payload))
                return
        if isinstance(payload, Current):
            self._on_current(payload)
        elif isinstance(payload, Next):
            self._on_next(payload)

    def _on_decide(self, payload: Decide) -> None:
        # Line 2: relay the decision, then decide.
        self.broadcast(Decide(sender=self.pid, est=payload.est))
        self.decide_value(payload.est, round_number=self.round)

    def _on_current(self, payload: Current) -> None:
        # Lines 7-12.
        self.nb_current += 1
        self.rec_from.add(payload.sender)
        if self.nb_current == 1:
            self.est = payload.est
        if self.state == Q0:
            self.state = Q1
            if self.pid != self.coordinator:
                self.broadcast(
                    Current(sender=self.pid, round=self.round, est=self.est)
                )
        self._check_progress()

    def _on_next(self, payload: Next) -> None:
        # Line 14.
        self.nb_next += 1
        self.rec_from.add(payload.sender)
        self._check_progress()

    # -- guards -------------------------------------------------------------------

    def evaluate_guards(self) -> None:
        # Line 13: upon (p_c in suspected_i), while still in q0.
        if self.state == Q0 and self.coordinator in self.suspected:
            self.state = Q2
            self.broadcast(Next(sender=self.pid, round=self.round))
            self._check_progress()

    def _majority(self, count: int) -> bool:
        return count > self.n / 2

    def _check_progress(self) -> None:
        if self.decided:
            return
        # Line 12: decide on a majority of CURRENT votes.
        if self._majority(self.nb_current):
            self.broadcast(Decide(sender=self.pid, est=self.est))
            self.decide_value(self.est, round_number=self.round)
            return
        # Line 15: change_mind — voted CURRENT, a majority of votes
        # arrived, but neither kind reached a majority.
        if (
            self.state == Q1
            and self._majority(len(self.rec_from))
            and not self._majority(self.nb_next)
        ):
            self.state = Q2
            self.broadcast(Next(sender=self.pid, round=self.round))
        # Line 6 exit + line 17: a majority of NEXT votes ends the round.
        if self._majority(self.nb_next):
            if self.state != Q2:
                self.state = Q2
                self.broadcast(Next(sender=self.pid, round=self.round))
            self._begin_round(self.round + 1)
