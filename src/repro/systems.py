"""System builders: one call from proposals to a runnable world.

These are the highest-level entry points of the library — used by the
examples, the test suite and every benchmark:

* :func:`build_crash_system` — the Hurfin–Raynal (or Chandra–Toueg)
  protocol in the crash model with a ◇S detector suite;
* :func:`build_transformed_system` — the transformed (Figure 3) protocol
  with the full five-module structure, optionally with some processes
  replaced by Byzantine behaviours from :mod:`repro.byzantine`.

Both return a :class:`ConsensusSystem` whose :meth:`ConsensusSystem.run`
drives the world and returns a summary the analysis layer understands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.consensus.base import ConsensusProcess
from repro.consensus.chandra_toueg import ChandraTouegProcess
from repro.consensus.hurfin_raynal import HurfinRaynalProcess
from repro.consensus.transformed import TransformedConsensusProcess
from repro.core.certificates import CertificationAuthority
from repro.core.modules import ModuleConfig
from repro.core.specs import SystemParameters
from repro.core.transformer import TransformationBlueprint
from repro.crypto.keys import KeyAuthority
from repro.crypto.signatures import SignatureScheme
from repro.detectors.base import FailureDetector
from repro.detectors.diamond_m import (
    AdaptiveMutenessDetector,
    MutenessDetector,
    RoundAwareMutenessDetector,
)
from repro.detectors.heartbeat import HeartbeatDetector
from repro.detectors.oracles import OracleDetector
from repro.errors import ConfigurationError
from repro.sim.network import DelayModel, LinkModel, UniformDelay
from repro.sim.scheduler import RunResult
from repro.sim.world import World

#: Builds one Byzantine process. Receives (pid, proposal, params,
#: authority, detector, config) and returns the process to install.
ByzantineFactory = Callable[
    [int, Any, SystemParameters, CertificationAuthority, FailureDetector,
     ModuleConfig],
    ConsensusProcess,
]

#: Builds one crash-model Byzantine process (no certificates/signatures).
CrashByzantineFactory = Callable[[int, Any, FailureDetector], ConsensusProcess]


@dataclass(slots=True)
class ConsensusSystem:
    """A runnable consensus instance plus everything needed to inspect it."""

    world: World
    processes: list[ConsensusProcess]
    byzantine_pids: frozenset[int] = frozenset()
    crashed_pids: frozenset[int] = frozenset()
    params: SystemParameters | None = None
    result: RunResult | None = None

    @property
    def n(self) -> int:
        return len(self.processes)

    @property
    def correct_pids(self) -> frozenset[int]:
        """Processes that are neither Byzantine nor scheduled to crash."""
        return frozenset(range(self.n)) - self.byzantine_pids - self.crashed_pids

    def run(
        self,
        max_events: int = 1_000_000,
        max_time: float = 10_000.0,
    ) -> RunResult:
        """Run to quiescence or a budget; budgets bound non-terminating runs."""
        self.result = self.world.run(max_events=max_events, max_time=max_time)
        return self.result

    def decisions(self) -> dict[int, Any]:
        """Decisions of the correct processes (only those that decided)."""
        return {
            p.pid: p.decision
            for p in self.processes
            if p.pid in self.correct_pids and p.decided
        }

    def all_correct_decided(self) -> bool:
        return all(
            self.processes[pid].decided for pid in sorted(self.correct_pids)
        )


# -- crash-model systems ----------------------------------------------------------


def build_crash_system(
    proposals: Sequence[Any],
    crash_at: Mapping[int, float] | None = None,
    byzantine: Mapping[int, CrashByzantineFactory] | None = None,
    protocol: str = "hurfin-raynal",
    seed: int = 0,
    delay_model: DelayModel | None = None,
    fd_accuracy_time: float = 0.0,
    fd_noise_rate: float = 0.0,
    fd_poll_interval: float = 1.0,
    suspicion_poll: float = 0.5,
    fifo: bool = True,
    fd: str = "oracle",
    link_model: LinkModel | None = None,
    transport: str = "none",
) -> ConsensusSystem:
    """A crash-model consensus system with a ◇S detector suite.

    Args:
        proposals: one proposal per process; ``len(proposals)`` is ``n``.
        crash_at: pid -> virtual crash time (crash-model faults).
        byzantine: pid -> factory for an arbitrary-faulty process; used by
            experiment E2 to attack the crash protocol.
        protocol: ``"hurfin-raynal"`` (Figure 2) or ``"chandra-toueg"``.
        fd_accuracy_time / fd_noise_rate: pre-horizon erroneous-suspicion
            behaviour of the ◇S oracles.
        fd: ``"oracle"`` — ◇S enforced from ground truth — or
            ``"heartbeat"`` — the honest adaptive-timeout implementation
            (converges into ◇P ⊆ ◇S under eventually-bounded delays).
        link_model: optional :class:`LinkModel` fault injection (loss,
            duplication, reordering, partitions) on the wire.
        transport: ``"none"`` (raw fabric), ``"reliable"`` (seq/ack/
            retransmit layer restoring the channel assumptions) or
            ``"no-retransmit"`` (the ablation; see
            :class:`~repro.sim.transport.ReliableTransport`).
    """
    crash_at = dict(crash_at or {})
    byzantine = dict(byzantine or {})
    n = len(proposals)
    overlap = set(crash_at) & set(byzantine)
    if overlap:
        raise ConfigurationError(
            f"processes {sorted(overlap)} are both crashed and Byzantine"
        )
    factories = {
        "hurfin-raynal": HurfinRaynalProcess,
        "chandra-toueg": ChandraTouegProcess,
    }
    if protocol not in factories:
        raise ConfigurationError(f"unknown crash protocol {protocol!r}")
    trusted = _pick_trusted(n, set(crash_at) | set(byzantine))
    # The detectors need the world (crash ground truth) and the world needs
    # the processes, so the oracles start with a vacuous status source that
    # is rebound to the world right after construction.
    if fd not in ("oracle", "heartbeat"):
        raise ConfigurationError(f"unknown crash detector {fd!r}")
    world_processes: list[ConsensusProcess] = []
    detectors: list[FailureDetector] = []
    for pid, proposal in enumerate(proposals):
        if fd == "heartbeat":
            detector: FailureDetector = HeartbeatDetector(
                period=fd_poll_interval,
                initial_timeout=4.0 * fd_poll_interval,
            )
        else:
            detector = OracleDetector(
                status=lambda target: False,  # bound to the world below
                trusted=trusted,
                poll_interval=fd_poll_interval,
                accuracy_time=fd_accuracy_time,
                noise_rate=fd_noise_rate,
            )
        detectors.append(detector)
        if pid in byzantine:
            process = byzantine[pid](pid, proposal, detector)
        else:
            process = factories[protocol](
                proposal, detector, suspicion_poll=suspicion_poll
            )
        world_processes.append(process)
    world = World(
        world_processes,
        seed=seed,
        delay_model=delay_model or UniformDelay(),
        fifo=fifo,
        link_model=link_model,
        transport=transport,
    )
    for detector in detectors:
        if isinstance(detector, OracleDetector):
            detector._status = world.is_crashed  # bind ground truth
    for pid, process in enumerate(world_processes):
        if process.detector is not None and not process.detector.attached:
            process.detector.attach(process.env)
    for pid, time in crash_at.items():
        world.crash_at(pid, time)
    return ConsensusSystem(
        world=world,
        processes=world_processes,
        byzantine_pids=frozenset(byzantine),
        crashed_pids=frozenset(crash_at),
    )


# -- transformed (arbitrary-fault) systems ---------------------------------------------


def build_transformed_system(
    proposals: Sequence[Any],
    byzantine: Mapping[int, ByzantineFactory] | None = None,
    crash_at: Mapping[int, float] | None = None,
    f: int | None = None,
    seed: int = 0,
    delay_model: DelayModel | None = None,
    config: ModuleConfig | None = None,
    muteness: str = "oracle",
    muteness_timeout: float = 8.0,
    muteness_poll_interval: float = 1.0,
    suspicion_poll: float = 0.5,
    allow_excess_faults: bool = False,
    variant: str = "standard",
    base: str = "hurfin-raynal",
    link_model: LinkModel | None = None,
    transport: str = "none",
) -> ConsensusSystem:
    """The transformed (Figure 3) protocol with the five-module structure.

    Args:
        proposals: one proposal per process.
        byzantine: pid -> Byzantine process factory (the attack gallery of
            :mod:`repro.byzantine.behaviors` provides these).
        crash_at: pid -> crash time; a crash is one arbitrary fault
            (muteness), so crashed pids count against ``f`` too.
        f: assumed maximum number of faulty processes ``F``; defaults to
            the paper's bound ``min(floor((n-1)/2), floor((n-1)/3))``.
        config: module ablation switches (experiment E8).
        muteness: ``"oracle"`` — ◇M enforced from ground truth —
            ``"timeout"`` — the honest Doudou-style implementation —
            ``"round-aware"`` — timeout scaled by round number — or
            ``"adaptive"`` — Jacobson-style timeouts learned from each
            peer's observed message cadence (the right choice over lossy
            links; see :class:`AdaptiveMutenessDetector`).
        variant: ``"standard"`` (Figure 3 as published) or ``"echo-init"``
            (INIT phase over reliable broadcast; see
            :mod:`repro.consensus.echo_init`).
        base: which crash protocol the transformation was applied to —
            ``"hurfin-raynal"`` (the paper's case study, Figure 3) or
            ``"chandra-toueg"`` (the second case study,
            :mod:`repro.consensus.transformed_ct`).
        link_model / transport: wire fault injection and the reliable-
            channel layer above it; see :func:`build_crash_system`.
    """
    byzantine = dict(byzantine or {})
    crash_at = dict(crash_at or {})
    n = len(proposals)
    params = SystemParameters.for_n(n, f=f)
    module_config = config if config is not None else ModuleConfig.full()
    faulty_ground_truth = frozenset(byzantine) | frozenset(crash_at)
    if len(faulty_ground_truth) > params.f and not allow_excess_faults:
        raise ConfigurationError(
            f"{len(faulty_ground_truth)} actual faults exceed F={params.f}; "
            "pass allow_excess_faults=True to study beyond-bound behaviour "
            "(experiment E6)"
        )
    trusted = _pick_trusted(n, set(faulty_ground_truth))
    key_authority = KeyAuthority(n, seed=seed)
    scheme = SignatureScheme(key_authority)
    detectors: list[FailureDetector] = []

    def muteness_factory(pid: int) -> FailureDetector:
        if muteness == "timeout":
            detector: FailureDetector = MutenessDetector(
                initial_timeout=muteness_timeout
            )
        elif muteness == "round-aware":
            detector = RoundAwareMutenessDetector(
                initial_timeout=muteness_timeout
            )
        elif muteness == "adaptive":
            detector = AdaptiveMutenessDetector(
                initial_timeout=muteness_timeout
            )
        elif muteness == "oracle":
            detector = OracleDetector(
                status=lambda target: target in faulty_ground_truth,
                trusted=trusted,
                poll_interval=muteness_poll_interval,
            )
        else:
            raise ConfigurationError(f"unknown muteness detector {muteness!r}")
        detectors.append(detector)
        return detector

    if base == "chandra-toueg":
        from repro.consensus.transformed_ct import TransformedCtProcess

        if variant != "standard":
            raise ConfigurationError(
                "variants are only defined for the hurfin-raynal base"
            )
        process_class: type[ConsensusProcess] = TransformedCtProcess
    elif base != "hurfin-raynal":
        raise ConfigurationError(f"unknown base protocol {base!r}")
    elif variant == "standard":
        process_class = TransformedConsensusProcess
    elif variant == "echo-init":
        from repro.consensus.echo_init import EchoInitConsensusProcess

        process_class = EchoInitConsensusProcess
    else:
        raise ConfigurationError(f"unknown protocol variant {variant!r}")

    def protocol_factory(pid, proposal, authority, detector, cfg):
        if pid in byzantine:
            return byzantine[pid](pid, proposal, params, authority, detector, cfg)
        return process_class(
            proposal=proposal,
            params=params,
            authority=authority,
            detector=detector,
            suspicion_poll=suspicion_poll,
            config=cfg,
        )

    blueprint = TransformationBlueprint(
        params=params,
        scheme=scheme,
        key_authority=key_authority,
        muteness_factory=muteness_factory,
        protocol_factory=protocol_factory,
        config=module_config,
    )
    processes = blueprint.build_all(list(proposals))
    world = World(
        processes,
        seed=seed,
        delay_model=delay_model or UniformDelay(),
        link_model=link_model,
        transport=transport,
    )
    for pid, time in crash_at.items():
        world.crash_at(pid, time)
    return ConsensusSystem(
        world=world,
        processes=processes,  # type: ignore[arg-type]
        byzantine_pids=frozenset(byzantine),
        crashed_pids=frozenset(crash_at),
        params=params,
    )


def _pick_trusted(n: int, faulty: set[int]) -> int:
    """A correct process to serve as the eventual-weak-accuracy witness."""
    for pid in range(n):
        if pid not in faulty:
            return pid
    raise ConfigurationError("no correct process left to trust")
