"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class ClockError(SimulationError):
    """Virtual time was asked to move backwards."""


class SchedulerError(SimulationError):
    """The scheduler was misused (e.g. run after exhaustion)."""


class NetworkError(SimulationError):
    """A message was sent to an unknown process or over a closed channel."""


class ProcessError(SimulationError):
    """A process violated the simulator's process contract."""


class CryptoError(ReproError):
    """Base class for failures of the simulated cryptography substrate."""


class UnknownKeyError(CryptoError):
    """A signature operation referenced a process with no registered key."""


class SignatureError(CryptoError):
    """A signature failed verification."""


class EncodingError(CryptoError):
    """A value could not be canonically encoded for signing."""


class ProtocolError(ReproError):
    """A protocol module was driven outside its specification."""


class CertificateError(ProtocolError):
    """A certificate is malformed or not well-formed w.r.t. its value."""


class ConfigurationError(ReproError):
    """An experiment or system was configured with inconsistent parameters."""
