"""Base class for protocol message bodies.

A message *body* is an immutable dataclass carrying the sender identity
and protocol fields. Bodies are canonicalizable (so they can be signed)
and hashable (so they can live in certificate sets).

Bodies never carry certificates or signatures themselves — those are the
envelope layers added by the certification and signature modules (paper
Figure 1); see :mod:`repro.core.certificates`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.errors import ProtocolError


@dataclass(frozen=True, slots=True)
class Message:
    """Common shape of every protocol message body.

    Attributes:
        sender: identity field naming the process this body claims to come
            from. The signature module checks this claim against the
            signature (paper: "If the signature of the message is
            inconsistent with the identity field contained in the message,
            the message is discarded").
    """

    sender: int

    @property
    def type_name(self) -> str:
        """Protocol-level type tag (``CURRENT``, ``NEXT``, ...)."""
        return type(self).__name__.upper()

    def canonical(self) -> Any:
        """Canonical structure: the ordered tuple of (field, value) pairs."""
        return tuple(
            (field.name, getattr(self, field.name))
            for field in dataclasses.fields(self)
        )

    def replace(self, **changes: Any) -> "Message":
        """A copy of this body with some fields changed.

        Used by Byzantine behaviours to corrupt messages; a correct
        process never mutates a body.
        """
        try:
            return dataclasses.replace(self, **changes)
        except TypeError as exc:
            raise ProtocolError(f"invalid replace on {self!r}: {exc}") from exc
