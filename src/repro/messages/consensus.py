"""Message bodies of the two consensus protocols.

Crash model (paper Figure 2): ``Current``, ``Next``, ``Decide`` carrying a
scalar estimate.

Transformed / arbitrary-fault model (paper Figure 3): ``Init`` plus vector
variants ``VCurrent``, ``VNext``, ``VDecide`` whose estimates are *vectors*
of proposed values (Vector Consensus). The ``NULL`` sentinel marks a
vector entry whose proposer's value was not collected in the INIT phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.messages.base import Message

#: Sentinel for an absent vector entry (the paper's ``null``). A string is
#: used (rather than ``None``) so it is unmistakable in traces and cannot
#: be confused with "no message".
NULL = "<null>"

Vector = tuple[Any, ...]


# -- crash-model bodies (Figure 2) -------------------------------------------


@dataclass(frozen=True, slots=True)
class Current(Message):
    """``CURRENT(p_k, r, est_k)`` — a vote to decide in this round."""

    round: int
    est: Any


@dataclass(frozen=True, slots=True)
class Next(Message):
    """``NEXT(p_k, r)`` — a vote to move to the next round."""

    round: int


@dataclass(frozen=True, slots=True)
class Decide(Message):
    """``DECIDE(p_k, est)`` — reliable propagation of the decision."""

    est: Any


# -- transformed-model bodies (Figure 3) --------------------------------------


@dataclass(frozen=True, slots=True)
class Init(Message):
    """``INIT(p_i, v_i)`` — the preliminary phase proposal broadcast."""

    value: Any


@dataclass(frozen=True, slots=True)
class VCurrent(Message):
    """``CURRENT(p_k, r, est_vect_k)`` of the transformed protocol."""

    round: int
    est_vect: Vector


@dataclass(frozen=True, slots=True)
class VNext(Message):
    """``NEXT(p_k, r)`` of the transformed protocol."""

    round: int


@dataclass(frozen=True, slots=True)
class VDecide(Message):
    """``DECIDE(p_k, est_vect_k)`` of the transformed protocol."""

    est_vect: Vector


def empty_vector(n: int) -> Vector:
    """An all-``NULL`` estimate vector for an ``n``-process system."""
    return tuple([NULL] * n)


def vector_with(base: Vector, index: int, value: Any) -> Vector:
    """A copy of ``base`` with position ``index`` set to ``value``."""
    updated = list(base)
    updated[index] = value
    return tuple(updated)
