"""Message bodies of the transformed Chandra–Toueg protocol (second case
study of the methodology — see :mod:`repro.consensus.transformed_ct`)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.messages.base import Message
from repro.messages.consensus import Vector


@dataclass(frozen=True, slots=True)
class CtEstimate(Message):
    """Phase 1: a timestamped certified estimate, broadcast to all.

    ``ts`` is the round in which ``est_vect`` was last adopted (0 for the
    process's own certified initial vector); the attached certificate
    witnesses the (vector, ts) pair.
    """

    round: int
    est_vect: Vector
    ts: int


@dataclass(frozen=True, slots=True)
class CtPropose(Message):
    """Phase 2: the coordinator's proposal, justified by an estimate quorum.

    The certificate carries the ``n - F`` signed estimates the coordinator
    gathered; receivers re-run the deterministic selection rule (highest
    ``ts``, ties to the smallest sender pid) and reject proposals whose
    vector is not the rule's pick — a verifiable version of CT's phase 2.
    """

    round: int
    est_vect: Vector


@dataclass(frozen=True, slots=True)
class CtAck(Message):
    """Phase 3 (positive): certified by the proposal being acknowledged."""

    round: int


@dataclass(frozen=True, slots=True)
class CtNack(Message):
    """Phase 3 (negative): sent upon suspecting the coordinator.

    Suspicion is local and unverifiable (exactly as the NEXT of Figure 3),
    so the certificate is empty.
    """

    round: int


@dataclass(frozen=True, slots=True)
class CtDecide(Message):
    """Decision announcement, certified by the proposal plus an ack quorum."""

    est_vect: Vector
