"""Protocol message bodies (unsigned, uncertified payloads)."""

from repro.messages.base import Message
from repro.messages.consensus import (
    NULL,
    Current,
    Decide,
    Init,
    Next,
    VCurrent,
    VDecide,
    VNext,
    Vector,
    empty_vector,
    vector_with,
)

__all__ = [
    "Current",
    "Decide",
    "Init",
    "Message",
    "NULL",
    "Next",
    "VCurrent",
    "VDecide",
    "VNext",
    "Vector",
    "empty_vector",
    "vector_with",
]
