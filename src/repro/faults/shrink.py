"""Greedy fault-plan shrinking: the smallest plan that still fails the
same way.

A failing campaign plan often carries clauses that have nothing to do
with the failure — the diagnostic question is always "which adversary
actually did it?". :func:`shrink_fault_plan` answers it by delta
debugging over the plan's *clauses*: repeatedly drop one clause (a mute,
a kill, a partition window, a zoo suppression/corruption/timing/storage
clause, one scalar link-noise axis), re-run the candidate at the
deterministic sim fidelity, and keep the reduction whenever the run
still violates the **same oracle kinds** (the ``progress:`` /
``convergence:`` / ``detection:`` … prefixes — exact counts and pids may
legitimately shift as the plan shrinks).

Everything is deterministic: candidate order is the fixed axis order
below, the runner is fidelity 1, and the search is bounded by
``budget`` executions — the result is reproducible for a given plan and
a hard cap on how long a shrink may take.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.errors import ConfigurationError
from repro.faults.oracle import FidelityObservation, judge
from repro.faults.plan import FaultPlan

#: Tuple-of-clauses plan fields the shrinker removes element-wise, in
#: the deterministic order candidates are attempted.
CLAUSE_AXES: tuple[str, ...] = (
    "suppressions",
    "corruptions",
    "timing",
    "storage_flips",
    "collusion",
    "flips",
    "partitions",
    "kills",
    "mutes",
)

#: Scalar link-noise fields, zeroed as a whole (with ``reorder_spread``
#: riding along once ``reorder`` is gone — it is inert without it).
SCALAR_AXES: tuple[str, ...] = ("loss", "duplication", "reorder")


def violation_kinds(violations: Iterable[str]) -> frozenset[str]:
    """The oracle-kind prefixes of a violation list (``progress``, …)."""
    return frozenset(v.split(":", 1)[0] for v in violations)


@dataclass(slots=True)
class ShrinkResult:
    """What the search found and what it cost."""

    plan: FaultPlan
    #: Oracle kinds the original plan violated (the invariant held).
    kinds: frozenset[str]
    #: Sim executions spent (the original probe included).
    runs: int
    #: Clauses removed, as ``(axis, clause)`` in removal order.
    removed: tuple[tuple[str, Any], ...]


def _without(plan: FaultPlan, axis: str, index: int) -> FaultPlan:
    clauses = getattr(plan, axis)
    return dataclasses.replace(
        plan, **{axis: clauses[:index] + clauses[index + 1 :]}
    )


def _zeroed(plan: FaultPlan, axis: str) -> FaultPlan:
    fields: dict[str, Any] = {axis: 0.0}
    if axis == "reorder":
        fields["reorder_spread"] = 0.5  # the field's inert default
    return dataclasses.replace(plan, **fields)


def shrink_fault_plan(
    plan: FaultPlan,
    *,
    budget: int = 64,
    runner: Callable[[FaultPlan], FidelityObservation] | None = None,
) -> ShrinkResult:
    """Greedily remove clauses while the same oracle kinds still fire.

    ``runner`` defaults to the fidelity-1 sim runner; tests inject a
    cheaper substitute. Raises :class:`ConfigurationError` when the
    original plan does not fail at all — there is nothing to shrink
    toward, and silently returning the input would mislabel a passing
    plan as a minimal failure.
    """
    if runner is None:
        from repro.faults.sim_runner import run_sim_plan

        runner = run_sim_plan
    plan.validate()
    runs = 1
    _verdict, violations = judge(plan, runner(plan))
    kinds = violation_kinds(violations)
    if not kinds:
        raise ConfigurationError(
            f"plan {plan.name!r} passes at the sim fidelity; only failing "
            "plans can be shrunk"
        )
    removed: list[tuple[str, Any]] = []
    current = plan
    progress = True
    while progress and runs < budget:
        progress = False
        for axis in CLAUSE_AXES:
            clauses = getattr(current, axis)
            # Walk right-to-left so surviving indices stay valid across
            # same-pass removals.
            for index in range(len(clauses) - 1, -1, -1):
                if runs >= budget:
                    break
                candidate = _without(current, axis, index)
                try:
                    candidate.validate()
                except ConfigurationError:
                    continue
                runs += 1
                _v, probe = judge(candidate, runner(candidate))
                if violation_kinds(probe) == kinds:
                    removed.append((axis, clauses[index]))
                    current = candidate
                    progress = True
        for axis in SCALAR_AXES:
            if runs >= budget:
                break
            if not getattr(current, axis):
                continue
            candidate = _zeroed(current, axis)
            try:
                candidate.validate()
            except ConfigurationError:
                continue
            runs += 1
            _v, probe = judge(candidate, runner(candidate))
            if violation_kinds(probe) == kinds:
                removed.append((axis, getattr(current, axis)))
                current = candidate
                progress = True
    return ShrinkResult(
        plan=current, kinds=kinds, runs=runs, removed=tuple(removed)
    )
