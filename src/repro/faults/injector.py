"""Link-level fault injection shared by every fidelity (docs/FAULTS.md).

:class:`LinkFaultInjector` is the single decision procedure behind the
three runners: given ``(now, src, dst, payload)`` in *plan* units it
answers "what happens to this message" as a list of ``(payload, delay)``
deliveries — the empty list drops it, more than one entry duplicates it,
a positive delay reorders it past later traffic. The simulation hands
the answer to the :class:`~repro.sim.network.Network` tamper hook, the
loopback twin to a scheduler-aware :class:`~repro.net.transport.LoopbackHub`
subclass, and the real cluster to
:class:`~repro.net.faulty.FaultyPeerTransport` — so one seeded plan
produces the same fault schedule everywhere the message order matches.

Determinism: every directed link forks its own named stream from
``SeededRng(plan.seed, "faults-<plan_id>")``. At fidelity 3 each replica
process instantiates its own injector but only *consumes* the streams of
its outbound links, so the per-link draws match the single-process
fidelities draw-for-draw.

The bit-flip family (:func:`flip_signed_payload`) is the first
*non-malicious arbitrary fault*: a correct sender whose CURRENT message
gets one pre-signature bit (the round number) flipped in transit. The
signature no longer matches the body, so the signature/certification
modules must reject it — and the detection-attribution oracle asserts
the blame lands there, never on the consensus automaton convicting the
innocent sender of a behaviour fault. Only ``VCurrent`` bodies are
eligible: Figure 4's monitor automaton is gap-safe for a dropped CURRENT
(Q0 accepts the following NEXT of the same round), while a swallowed
INIT or NEXT would itself convict the sender.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.core.certificates import SignedMessage
from repro.faults.plan import FaultPlan
from repro.messages.consensus import VCurrent
from repro.observability.registry import (
    MODULE_FAULTS,
    MODULE_ZOO,
    NULL_METRICS,
)
from repro.replication.log import SlotEnvelope
from repro.sim.rng import SeededRng

#: One decision: deliver ``payload`` after ``delay`` extra plan-seconds.
Delivery = tuple[Any, float]


def flip_signed_payload(payload: Any) -> Any | None:
    """Flip one pre-signature bit of an eligible payload, or ``None``.

    Eligible payloads are ``SlotEnvelope(slot, SignedMessage(VCurrent))``
    (the service stack) and bare ``SignedMessage(VCurrent)`` (the raw
    consensus engines). The low bit of the round number is inverted in
    the *body only*; certificate and signature ride along unchanged, so
    the signature check downstream fails over a well-formed message.
    """
    if isinstance(payload, SlotEnvelope):
        flipped = flip_signed_payload(payload.inner)
        if flipped is None:
            return None
        return SlotEnvelope(slot=payload.slot, inner=flipped)
    if isinstance(payload, SignedMessage) and isinstance(payload.body, VCurrent):
        corrupt = dataclasses.replace(payload.body, round=payload.body.round ^ 1)
        return SignedMessage(
            body=corrupt, cert=payload.cert, signature=payload.signature
        )
    return None


class LinkFaultInjector:
    """Deterministic per-link fault pipeline for one :class:`FaultPlan`.

    The pipeline order is fixed (mute, suppress, partition, loss, flip,
    duplicate, reorder, burst-shape) and every probabilistic stage draws
    from the directed link's own stream, in send order — the property
    the cross-fidelity byte-identity check rests on. The two zoo stages
    are draw-free: per-round suppression sets are pure seed forks
    (:class:`~repro.zoo.suppressor.RoundSuppressor`) and the timing
    attack's burst shaping is a deterministic function of the per-link
    send history, so v1 plans consume exactly the streams they did
    before the v2 schema.
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        registry: Any = None,
        local_pid: int | None = None,
    ) -> None:
        plan.validate()
        self._plan = plan
        self._registry = registry if registry is not None else NULL_METRICS
        self._local_pid = local_pid
        root = SeededRng(plan.seed, f"faults-{plan.plan_id}")
        self._links: dict[tuple[int, int], SeededRng] = {}
        self._root = root
        self._partitions = plan.parsed_partitions()
        self._mute_at = {pid: at for pid, at in plan.mutes}
        self._flip_at = {pid: (at, count) for pid, at, count in plan.flips}
        self._flips_done: dict[int, int] = {pid: 0 for pid in self._flip_at}
        self.flips_injected = 0
        self.drops: dict[str, int] = {
            "mute": 0,
            "loss": 0,
        }
        self.partition_delays = 0
        self.duplicates = 0
        self.reorders = 0
        # -- adversary zoo (v2 plans; inert on v1 plans). The zoo imports
        # are lazy: repro.zoo depends on repro.faults.plan, so repro.faults
        # modules must never import repro.zoo at module scope.
        if plan.suppressions:
            from repro.zoo.suppressor import RoundSuppressor

            self._suppressor: Any = RoundSuppressor(plan)
        else:
            self._suppressor = None
        if plan.timing:
            from repro.zoo.timing import BurstShaper

            self._burst: Any = BurstShaper(plan.timing)
        else:
            self._burst = None
        self.suppressed = 0
        self.timing_delays = 0

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def _link(self, src: int, dst: int) -> SeededRng:
        key = (src, dst)
        rng = self._links.get(key)
        if rng is None:
            rng = self._root.fork(f"link-{src}-{dst}")
            self._links[key] = rng
        return rng

    def _severed_until(self, now: float, src: int, dst: int) -> float | None:
        """Heal time of the partition currently severing ``src -> dst``."""
        for start, heal, groups in self._partitions:
            if not start <= now < heal:
                continue
            src_group = next(
                (i for i, group in enumerate(groups) if src in group), None
            )
            dst_group = next(
                (i for i, group in enumerate(groups) if dst in group), None
            )
            if src_group is not None and dst_group is not None:
                if src_group != dst_group:
                    return heal
        return None

    def _muted(self, now: float, pid: int) -> bool:
        at = self._mute_at.get(pid)
        return at is not None and now >= at

    # -- the decision procedure ---------------------------------------------

    def plan_deliveries(
        self, now: float, src: int, dst: int, payload: Any
    ) -> list[Delivery] | None:
        """Decide the fate of one message, in plan units.

        Returns ``None`` for "no opinion" (links the plan does not touch
        keep their native handling), else the full delivery list: empty
        to drop, one entry to pass (possibly corrupted or delayed), more
        to duplicate.
        """
        plan = self._plan
        n = plan.n_replicas
        # Muteness swallows everything touching the muted replica,
        # clients included (a SIGSTOPped process neither sends nor acks).
        if self._muted(now, src) or self._muted(now, dst):
            self.drops["mute"] += 1
            self._registry.inc(MODULE_FAULTS, "mute_drops", pid=src)
            return []
        replica_link = src < n and dst < n
        if not replica_link:
            return None
        # Family (a): the message adversary silently removes the delivery
        # — a true drop, unlike a partition's withholding, because the
        # model says "up to d deliveries of each broadcast never happen".
        if self._suppressor is not None and self._suppressor.suppressed(
            now, src, dst
        ):
            self.suppressed += 1
            self._registry.inc(MODULE_ZOO, "suppressed_deliveries", pid=src)
            return []
        heal = self._severed_until(now, src, dst)
        if heal is not None:
            # A partition *withholds* traffic until the heal instant
            # rather than destroying it: over real TCP the severed
            # link's frames sit in socket buffers and outbound queues
            # and flush once connectivity returns, and the protocol
            # assumes reliable channels. Destroying them would deadlock
            # every fidelity identically — true, but uninteresting.
            self.partition_delays += 1
            self._registry.inc(MODULE_FAULTS, "partition_delays", pid=src)
            return [(payload, heal - now)]
        rng = self._link(src, dst)
        touched = False
        if plan.loss:
            touched = True
            if rng.chance(plan.loss):
                self.drops["loss"] += 1
                self._registry.inc(MODULE_FAULTS, "loss_drops", pid=src)
                return []
        flip = self._flip_at.get(src)
        if flip is not None:
            at, budget = flip
            if now >= at and self._flips_done[src] < budget:
                corrupt = flip_signed_payload(payload)
                if corrupt is not None:
                    payload = corrupt
                    touched = True
                    self._flips_done[src] += 1
                    self.flips_injected += 1
                    self._registry.inc(
                        MODULE_FAULTS, "arb_faults_injected", pid=src
                    )
        deliveries: list[Delivery] = [(payload, 0.0)]
        if plan.duplication:
            touched = True
            if rng.chance(plan.duplication):
                self.duplicates += 1
                self._registry.inc(MODULE_FAULTS, "dup_copies", pid=src)
                deliveries.append((payload, 0.0))
        if plan.reorder:
            touched = True
            if rng.chance(plan.reorder):
                delay = rng.uniform(0.0, plan.reorder_spread)
                self.reorders += 1
                self._registry.inc(MODULE_FAULTS, "reorder_delays", pid=src)
                deliveries[0] = (deliveries[0][0], delay)
        # Family (c): a timing attacker releases its (otherwise genuine)
        # traffic only at burst boundaries — every copy, duplicates
        # included, picks up the same hold. The shaper spaces releases so
        # the attacker's stream stays FIFO (it is slow, not misbehaving).
        if self._burst is not None:
            hold = self._burst.hold(src, dst, now)
            if hold > 0.0:
                touched = True
                self.timing_delays += 1
                self._registry.inc(MODULE_ZOO, "timing_delays", pid=src)
                deliveries = [
                    (item, delay + hold) for item, delay in deliveries
                ]
        if not touched:
            return None
        return deliveries
