"""One campaign engine, three fidelities: unified fault plans from pure
simulation to real TCP clusters (docs/FAULTS.md)."""

from repro.faults.injector import LinkFaultInjector, flip_signed_payload
from repro.faults.loopback_runner import run_loopback_plan
from repro.faults.oracle import FidelityObservation, judge, live_correct
from repro.faults.plan import (
    EXPECTATIONS,
    FAULTS_SCHEMA,
    FAULTS_SCHEMA_V1,
    FIDELITIES,
    FIDELITY_LOOPBACK,
    FIDELITY_NET,
    FIDELITY_SIM,
    FaultPlan,
    check_faults_schema,
)
from repro.faults.report import (
    FAULT_PRESETS,
    CrossFidelityReport,
    PlanResult,
    run_cross_fidelity,
    run_plan,
)
from repro.faults.shrink import ShrinkResult, shrink_fault_plan, violation_kinds
from repro.faults.sim_runner import run_sim_plan

__all__ = [
    "CrossFidelityReport",
    "EXPECTATIONS",
    "FAULTS_SCHEMA",
    "FAULTS_SCHEMA_V1",
    "FAULT_PRESETS",
    "FIDELITIES",
    "FIDELITY_LOOPBACK",
    "FIDELITY_NET",
    "FIDELITY_SIM",
    "FaultPlan",
    "FidelityObservation",
    "LinkFaultInjector",
    "PlanResult",
    "ShrinkResult",
    "check_faults_schema",
    "flip_signed_payload",
    "judge",
    "live_correct",
    "run_cross_fidelity",
    "run_loopback_plan",
    "run_plan",
    "run_sim_plan",
    "shrink_fault_plan",
    "violation_kinds",
]
