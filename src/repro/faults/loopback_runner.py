"""Fidelity 2: execute a fault plan on the deterministic loopback twin.

Real :class:`~repro.net.node.NetNode` hosts, the real wire codec on
every hop, but the transport is an injector-aware
:class:`~repro.net.transport.LoopbackHub` subclass and the clock is a
:class:`~repro.net.clock.ManualScheduler` — plan seconds run 1:1 on the
virtual clock, so the whole deployment executes deterministically inside
the calling process. Kills drop the node object (volatile state lost)
and rejoins build a fresh one with ``join=True``, exactly like the
subprocess fidelity's SIGKILL + ``--join`` respawn; muteness swallows
all traffic touching the muted pid at the fabric, the closest
deterministic analogue of a SIGSTOPped process.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.byzantine import transformed_attack
from repro.faults.injector import LinkFaultInjector
from repro.faults.oracle import FidelityObservation, live_correct
from repro.faults.plan import FIDELITY_LOOPBACK, FaultPlan
from repro.net.clock import ManualScheduler
from repro.net.genesis import Genesis
from repro.net.messages import StatusReply
from repro.net.node import NetNode
from repro.net.transport import LoopbackHub
from repro.observability.registry import (
    MODULE_FAULTS,
    MODULE_MUTENESS,
    MODULE_SERVICE,
    MODULE_SIGNATURE,
    MetricsRegistry,
)
from repro.replication.kvstore import Command
from repro.service.checkpoint import service_digest
from repro.service.messages import ClientReply, ClientRequest

#: Extra plan-seconds the run may settle past the plan window.
SETTLE_BUDGET = 40.0

#: Fixed fake ports: the loopback fabric never binds a socket, but the
#: genesis schema wants addresses — and *fixed* ones keep the genesis id
#: (hence every hello MAC) identical across runs, which the fidelity-1/2
#: byte-identity contract depends on.
_PORT_BASE = 20001


class FaultyLoopbackHub(LoopbackHub):
    """A loopback hub that routes every submit through the injector.

    A dropped message never reaches the queue; a delayed copy re-enters
    :meth:`LoopbackHub.submit` when its timer fires, escaping the
    fabric's FIFO exactly like a reordered TCP segment at fidelity 3.
    """

    def __init__(self, scheduler: Any, injector: LinkFaultInjector) -> None:
        super().__init__(scheduler)
        self._injector = injector

    def submit(self, src: int, dst: int, payload: Any) -> None:
        if src == dst:
            super().submit(src, dst, payload)
            return
        deliveries = self._injector.plan_deliveries(
            self._scheduler.now, src, dst, payload
        )
        if deliveries is None:
            super().submit(src, dst, payload)
            return
        for copy, delay in deliveries:
            if delay > 0:
                self._scheduler.schedule_after(
                    delay,
                    "fault-delay",
                    lambda c=copy: LoopbackHub.submit(self, src, dst, c),
                )
            else:
                super().submit(src, dst, copy)


class _PlanClient:
    """Minimal correct client: f+1 distinct acks, resubmit on silence."""

    def __init__(self, genesis: Genesis, hub: LoopbackHub, scheduler: Any):
        self.genesis = genesis
        self.pid = genesis.n_replicas
        self.f = genesis.service_config().params().f
        self.scheduler = scheduler
        self.transport = hub.register(self.pid, self._on_message)
        self.next_id = 0
        self.outstanding: dict[int, ClientRequest] = {}
        self.attempts: dict[int, int] = {}
        self.acks: dict[int, set[int]] = {}
        self.completed: set[int] = set()
        self.statuses: dict[int, StatusReply] = {}

    def _on_message(self, src: int, message: Any) -> None:
        if isinstance(message, ClientReply) and message.client == self.pid:
            if message.req_id in self.completed:
                return
            self.acks.setdefault(message.req_id, set()).add(message.replica)
            if len(self.acks[message.req_id]) >= self.f + 1:
                self.completed.add(message.req_id)
                self.outstanding.pop(message.req_id, None)

    def set(self, key: str, value: str) -> int:
        req_id = self.next_id
        self.next_id += 1
        request = ClientRequest(
            client=self.pid, req_id=req_id, command=Command("set", key, value)
        )
        self.outstanding[req_id] = request
        self.attempts[req_id] = 0
        self._submit(req_id)
        return req_id

    def _submit(self, req_id: int) -> None:
        request = self.outstanding.get(req_id)
        if request is None:
            return
        attempt = self.attempts[req_id]
        self.attempts[req_id] += 1
        target = (self.pid + req_id + attempt) % self.genesis.n_replicas
        self.transport.send(target, request)
        self.scheduler.schedule_after(
            self.genesis.request_timeout,
            "resubmit",
            lambda: self._submit(req_id),
        )


def loopback_genesis(plan: FaultPlan) -> Genesis:
    return Genesis(
        name=f"faults-{plan.plan_id}",
        seed=plan.seed,
        n_replicas=plan.n_replicas,
        addresses=tuple(
            ("127.0.0.1", _PORT_BASE + pid) for pid in range(plan.n_replicas)
        ),
        max_clients=1,
        request_timeout=0.6,
        stall_probe=2.0,
        metrics_interval=0.0,
    )


class _LoopbackRun:
    """One plan execution on the loopback twin."""

    def __init__(self, plan: FaultPlan) -> None:
        # Lazy zoo import: repro.zoo depends on repro.faults.plan, so the
        # faults package never imports repro.zoo at module scope.
        from repro.zoo.runtime import ZooInjections, zoo_loopback_overrides

        plan.validate()
        self.plan = plan
        self.registry = MetricsRegistry()
        self.injector = LinkFaultInjector(plan, registry=self.registry)
        self.genesis = loopback_genesis(plan)
        # Zoo plans re-derive the cluster config exactly like the
        # subprocess fidelity does; empty for v1 plans, whose runs (and
        # genesis id, hence every hello MAC) stay byte-identical.
        self.config = self.genesis.service_config()
        overrides = zoo_loopback_overrides(plan)
        if overrides:
            self.config = dataclasses.replace(self.config, **overrides)
        self.zoo_injections = ZooInjections()
        self.scheduler = ManualScheduler()
        self.hub = FaultyLoopbackHub(self.scheduler, self.injector)
        self.nodes: dict[int, NetNode] = {}
        attacks = dict(plan.collusion)
        for pid in range(plan.n_replicas):
            factory = None
            if pid in attacks:
                factory = transformed_attack(pid, attacks[pid])[pid]
            self._up(pid, engine_factory=factory)
        self.client = _PlanClient(self.genesis, self.hub, self.scheduler)

    def _up(self, pid: int, *, join: bool = False, engine_factory=None) -> None:
        node = NetNode(
            self.genesis,
            pid,
            self.scheduler,
            join=join,
            engine_factory=engine_factory,
            config=self.config,
        )
        node.attach_transport(self.hub.register(pid, node.handle_message))
        self.nodes[pid] = node
        node.start()

    def _kill(self, pid: int) -> None:
        node = self.nodes.pop(pid, None)
        if node is None:
            return
        self.hub.unregister(pid)
        # Crash semantics: the dead process neither fires timers into the
        # fabric nor keeps volatile state — rejoin builds a new node.
        node.process.go_down()

    def _schedule_events(self) -> None:
        from repro.zoo.runtime import install_zoo_injections

        plan = self.plan
        # Families (b)/(d): same shared wiring as the other fidelities;
        # the manual clock starts at zero, so plan time maps 1:1.
        install_zoo_injections(
            plan,
            lambda at, label, thunk: self.scheduler.schedule_after(
                at, label, thunk
            ),
            lambda pid: (
                self.nodes[pid].process if pid in self.nodes else None
            ),
            self.zoo_injections,
            self.registry,
        )
        for pid, at, rejoin_at in plan.kills:
            self.scheduler.schedule_after(
                at, "plan-kill", lambda p=pid: self._kill(p)
            )
            if rejoin_at is not None:
                self.scheduler.schedule_after(
                    rejoin_at,
                    "plan-rejoin",
                    lambda p=pid: self._up(p, join=True),
                )
        # Workload: spread over the first ~70% of the plan window, so
        # post-rejoin replicas still see fresh traffic to catch up on.
        span = 0.7 * plan.duration
        for index in range(plan.requests):
            at = (index / plan.requests) * span
            self.scheduler.schedule_after(
                at,
                "plan-request",
                lambda i=index: self.client.set(f"k{i % 8}", f"v{i}"),
            )

    def _pump(self, seconds: float) -> None:
        for _ in range(int(round(seconds * 10))):
            self.scheduler.advance(0.1)

    def _settled(self) -> bool:
        plan = self.plan
        live = live_correct(plan)
        if len(self.client.completed) < plan.requests:
            return False
        floor = plan.progress_floor
        committed = {
            pid: self.nodes[pid].process.committed_commands
            for pid in live
            if pid in self.nodes
        }
        if len(committed) < len(live):
            return False
        if any(count < floor for count in committed.values()):
            return False
        for pid in plan.rejoining_pids:
            node = self.nodes.get(pid)
            if node is None or not node.process.state_transfers_completed:
                return False
        digests = {
            service_digest(
                self.nodes[pid].process.store, self.nodes[pid].process.executed
            )
            for pid in live
        }
        return len(digests) == 1

    def execute(self) -> FidelityObservation:
        plan = self.plan
        self._schedule_events()
        self._pump(plan.duration)
        settled = self._settled()
        budget = SETTLE_BUDGET
        while not settled and budget > 0:
            self._pump(1.0)
            budget -= 1.0
            settled = self._settled()
        live = live_correct(plan)
        correct = frozenset(range(plan.n_replicas)) - plan.faulty_pids
        declared = []
        for pid in sorted(correct):
            node = self.nodes.get(pid)
            if node is None:
                continue
            for event in node.trace.of_kind("declare_faulty"):
                declared.append(
                    (pid, event.detail["target"], event.detail["reason"])
                )
        declared.sort()
        detected = sum(
            1
            for _observer, target, _reason in declared
            if target in plan.flip_pids
        )
        if detected:
            self.registry.inc(MODULE_FAULTS, "arb_faults_detected", detected)
        signature_rejections = sum(
            int(
                self.nodes[pid].metrics.counter_total(
                    MODULE_SIGNATURE, "messages_rejected"
                )
            )
            for pid in sorted(correct)
            if pid in self.nodes
        )

        def node_total(pids: frozenset[int], module: str, name: str) -> int:
            return sum(
                int(self.nodes[pid].metrics.counter_total(module, name))
                for pid in sorted(pids)
                if pid in self.nodes
            )

        zoo: dict[str, Any] = {}
        if plan.has_zoo:
            if plan.suppressions:
                zoo["suppressed"] = self.injector.suppressed
            if plan.corruptions:
                zoo["corruptions_injected"] = self.zoo_injections.corruptions
                zoo["checkpoint_mismatches"] = node_total(
                    live, MODULE_SERVICE, "checkpoint_mismatches"
                )
                zoo["state_heals"] = node_total(
                    live, MODULE_SERVICE, "state_heals"
                )
            if plan.timing:
                zoo["timing_delays"] = self.injector.timing_delays
                zoo["wrongful_suspicions"] = node_total(
                    correct, MODULE_MUTENESS, "wrongful_suspicions"
                )
            if plan.storage_flips:
                zoo["storage_flips_injected"] = (
                    self.zoo_injections.storage_flips_injected
                )
                zoo["storage_rejections"] = sum(
                    self.nodes[pid].process.suffix_rejections
                    for pid in sorted(live)
                    if pid in self.nodes
                ) + node_total(live, MODULE_SERVICE, "state_responses_rejected")
        return FidelityObservation(
            fidelity=FIDELITY_LOOPBACK,
            completed=len(self.client.completed),
            committed={
                pid: self.nodes[pid].process.committed_commands
                for pid in live
                if pid in self.nodes
            },
            digests={
                pid: service_digest(
                    self.nodes[pid].process.store,
                    self.nodes[pid].process.executed,
                )
                for pid in live
                if pid in self.nodes
            },
            transfers={
                pid: len(self.nodes[pid].process.state_transfers_completed)
                for pid in sorted(plan.rejoining_pids)
                if pid in self.nodes
            },
            declared=tuple(declared),
            flips_injected=self.injector.flips_injected,
            signature_rejections=signature_rejections,
            zoo=zoo,
            extras={
                "end_time": self.scheduler.now,
                "drops": dict(self.injector.drops),
                "partition_delays": self.injector.partition_delays,
                "duplicates": self.injector.duplicates,
                "reorders": self.injector.reorders,
                "resubmissions": sum(self.client.attempts.values())
                - plan.requests,
            },
        )


def run_loopback_plan(plan: FaultPlan) -> FidelityObservation:
    """Execute ``plan`` at fidelity 2 and reduce it for the judge."""
    return _LoopbackRun(plan).execute()
