"""Fidelity 3: execute a fault plan against a real subprocess cluster.

Replicas are real OS processes over real TCP sockets
(:class:`~repro.net.cluster.LocalCluster`). Fault realisation needs no
privileges:

* **muteness** is ``SIGSTOP`` — the frozen process keeps its sockets
  open but neither reads, writes nor fires timers;
* **crash / rejoin** is ``SIGKILL`` plus a respawn with ``--join``
  (certified state transfer over sockets is the only way back);
* **link faults** (loss, duplication, reorder, partitions, bit-flips)
  run inside each replica's :class:`~repro.net.faulty.FaultyPeerTransport`,
  seeded per directed link from the same plan so every replica owns its
  own outbound decisions.

All replica processes measure plan time from one shared wall-clock
``origin`` epoch passed on the command line, so partition windows and
flip activation agree across the cluster. The run is verdict-stable, not
byte-stable: wall clocks, socket scheduling and ``NetClient``'s random
request-id base all vary, so the cross-fidelity contract only asserts
the *verdict* (docs/FAULTS.md), and the whole scenario sits under a hard
wall-clock timeout — a hung cluster becomes a failing observation, never
a hung make target.
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.faults.oracle import FidelityObservation, live_correct
from repro.faults.plan import FIDELITY_NET, FaultPlan
from repro.net.client import NetClient, NetClientError
from repro.net.cluster import LocalCluster, make_genesis, wait_cluster_ready
from repro.observability.export import read_run_jsonl
from repro.observability.registry import (
    MODULE_FAULTS,
    MODULE_MUTENESS,
    MODULE_SERVICE,
    MODULE_SIGNATURE,
    MODULE_ZOO,
)

#: Lead time between spawning the cluster and the plan's t=0: replicas
#: must be connected and ready before the first scheduled fault.
ORIGIN_GRACE = 3.0

#: Extra wall-clock seconds the run may settle past the plan window.
SETTLE_BUDGET = 45.0


class _NetRun:
    """One plan execution against a local subprocess cluster."""

    def __init__(self, plan: FaultPlan, workdir: Path) -> None:
        plan.validate()
        self.plan = plan
        self.workdir = workdir
        self.genesis = make_genesis(
            plan.n_replicas,
            seed=plan.seed,
            name=f"faults-{plan.plan_id}",
            request_timeout=0.6,
            stall_probe=2.0,
        )
        self.plan_path = plan.save(workdir / "plan.json")
        self.origin = time.time() + ORIGIN_GRACE
        self.cluster = LocalCluster(
            self.genesis,
            workdir,
            replica_args=(
                "--faults", str(self.plan_path),
                "--faults-origin", repr(self.origin),
            ),
        )
        self.client = NetClient(self.genesis, 0)
        self.completed_workload = 0
        self.statuses: dict[int, Any] = {}
        self._attacks = dict(plan.collusion)

    def _spawn(self, pid: int, *, join: bool = False) -> None:
        extra: tuple[str, ...] = ()
        if pid in self._attacks:
            extra = ("--attack", self._attacks[pid])
        self.cluster.spawn(pid, join=join, extra_args=extra)

    async def _sleep_until(self, plan_time: float) -> None:
        delay = self.origin + plan_time - time.time()
        if delay > 0:
            await asyncio.sleep(delay)

    async def _workload(self) -> None:
        """Paced sets over the first ~70% of the plan window."""
        plan = self.plan
        span = 0.7 * plan.duration
        tasks = []

        async def one(index: int) -> None:
            await self._sleep_until((index / plan.requests) * span)
            try:
                await self.client.set(f"k{index % 8}", f"v{index}")
            except NetClientError:
                return
            self.completed_workload += 1

        for index in range(plan.requests):
            tasks.append(asyncio.ensure_future(one(index)))
        await asyncio.gather(*tasks)

    async def _fire_events(self) -> None:
        """Mutes, kills and rejoins, in plan order, as real signals."""
        events: list[tuple[float, str, int]] = []
        for pid, at in self.plan.mutes:
            events.append((at, "mute", pid))
        for pid, at, rejoin_at in self.plan.kills:
            events.append((at, "kill", pid))
            if rejoin_at is not None:
                events.append((rejoin_at, "rejoin", pid))
        for at, action, pid in sorted(events):
            await self._sleep_until(at)
            if action == "mute":
                self.cluster.stop(pid)
            elif action == "kill":
                self.cluster.kill(pid)
            else:
                self._spawn(pid, join=True)

    async def _settle(self) -> None:
        """Nudge-and-probe until the live correct replicas agree."""
        plan = self.plan
        live = live_correct(plan)
        deadline = time.monotonic() + SETTLE_BUDGET
        nudge = 0
        while time.monotonic() < deadline:
            replies = await self.client.status(timeout=1.0)
            self.statuses = {
                pid: status for pid, status in replies.items() if pid in live
            }
            if len(self.statuses) == len(live):
                digests = {s.digest for s in self.statuses.values()}
                committed_ok = all(
                    s.committed >= self.client.sets_completed
                    for s in self.statuses.values()
                )
                transfers_ok = all(
                    self.statuses[pid].transfers >= 1
                    for pid in plan.rejoining_pids
                    if pid in self.statuses
                )
                if len(digests) == 1 and committed_ok and transfers_ok:
                    return
            # New commits circulate fresh checkpoints, whose certificates
            # reveal a laggard's gap and trigger its certified transfer.
            try:
                await self.client.set("nudge", f"n{nudge}")
            except NetClientError:
                pass
            nudge += 1
            await asyncio.sleep(0.3)

    async def execute(self) -> None:
        for pid in range(self.plan.n_replicas):
            self._spawn(pid)
        await wait_cluster_ready(self.client, timeout=30.0)
        await self._sleep_until(0.0)
        await asyncio.gather(self._workload(), self._fire_events())
        await self._sleep_until(self.plan.duration)
        await self._settle()

    # -- post-teardown harvest ----------------------------------------------

    def observe(self) -> FidelityObservation:
        """Reduce the run (status replies + exported JSONL) for the judge.

        Called *after* ``terminate_all``: SIGTERM flushes a final metrics
        export from every thawed replica, and the per-node JSONL files
        are the durable source for declarations and counters — the
        in-memory bounded traces died with the processes.
        """
        plan = self.plan
        correct = frozenset(range(plan.n_replicas)) - plan.faulty_pids
        live = live_correct(plan)
        declared: list[tuple[int, int, str]] = []
        flips_injected = 0
        signature_rejections = 0
        zoo_totals: dict[str, int] = {}
        for pid in range(plan.n_replicas):
            path = self.cluster.metrics_dir / f"node-{pid}.jsonl"
            if not path.exists():
                continue
            try:
                artifact = read_run_jsonl(path)
            except Exception:
                continue
            flips_injected += int(
                artifact.metrics.counter_total(
                    MODULE_FAULTS, "arb_faults_injected"
                )
            )
            if plan.has_zoo:
                # Injection counters come from every node (each replica
                # owns its outbound links and its own self-injections)…
                for key, module, name in (
                    ("suppressed", MODULE_ZOO, "suppressed_deliveries"),
                    ("corruptions_injected", MODULE_ZOO, "corruptions_injected"),
                    ("timing_delays", MODULE_ZOO, "timing_delays"),
                    ("storage_flips_injected", MODULE_ZOO, "storage_flips_injected"),
                ):
                    zoo_totals[key] = zoo_totals.get(key, 0) + int(
                        artifact.metrics.counter_total(module, name)
                    )
                # …detection counters only from the judging side.
                if pid in live:
                    for key, module, name in (
                        ("checkpoint_mismatches", MODULE_SERVICE, "checkpoint_mismatches"),
                        ("state_heals", MODULE_SERVICE, "state_heals"),
                        ("storage_rejections", MODULE_SERVICE, "state_responses_rejected"),
                    ):
                        zoo_totals[key] = zoo_totals.get(key, 0) + int(
                            artifact.metrics.counter_total(module, name)
                        )
                if pid in correct:
                    zoo_totals["wrongful_suspicions"] = zoo_totals.get(
                        "wrongful_suspicions", 0
                    ) + int(
                        artifact.metrics.counter_total(
                            MODULE_MUTENESS, "wrongful_suspicions"
                        )
                    )
            if pid in correct:
                signature_rejections += int(
                    artifact.metrics.counter_total(
                        MODULE_SIGNATURE, "messages_rejected"
                    )
                )
                for event in artifact.events_of_type("declare_faulty"):
                    declared.append(
                        (
                            pid,
                            event["detail"]["target"],
                            event["detail"]["reason"],
                        )
                    )
        declared.sort()
        zoo: dict[str, Any] = {}
        if plan.has_zoo:
            if plan.suppressions:
                zoo["suppressed"] = zoo_totals.get("suppressed", 0)
            if plan.corruptions:
                for key in (
                    "corruptions_injected",
                    "checkpoint_mismatches",
                    "state_heals",
                ):
                    zoo[key] = zoo_totals.get(key, 0)
            if plan.timing:
                zoo["timing_delays"] = zoo_totals.get("timing_delays", 0)
                zoo["wrongful_suspicions"] = zoo_totals.get(
                    "wrongful_suspicions", 0
                )
            if plan.storage_flips:
                zoo["storage_flips_injected"] = zoo_totals.get(
                    "storage_flips_injected", 0
                )
                zoo["storage_rejections"] = zoo_totals.get(
                    "storage_rejections", 0
                ) + sum(
                    self.statuses[pid].suffix_rejections
                    for pid in sorted(live)
                    if pid in self.statuses
                )
        return FidelityObservation(
            fidelity=FIDELITY_NET,
            completed=self.completed_workload,
            committed={
                pid: status.committed
                for pid, status in self.statuses.items()
                if pid in live
            },
            digests={
                pid: status.digest
                for pid, status in self.statuses.items()
                if pid in live
            },
            transfers={
                pid: self.statuses[pid].transfers
                for pid in sorted(plan.rejoining_pids)
                if pid in self.statuses
            },
            declared=tuple(declared),
            flips_injected=flips_injected,
            signature_rejections=signature_rejections,
            zoo=zoo,
            extras={
                "workdir": str(self.workdir),
                "resubmissions": self.client.resubmissions,
            },
        )


async def run_net_plan_async(
    plan: FaultPlan,
    *,
    workdir: str | Path | None = None,
    timeout: float = 180.0,
) -> FidelityObservation:
    """Execute ``plan`` at fidelity 3 under a hard wall-clock ``timeout``."""
    owned_tmp = None
    if workdir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="repro-faults-")
        workdir = owned_tmp.name
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    run = _NetRun(plan, workdir)
    timed_out = False
    try:
        try:
            await asyncio.wait_for(run.execute(), timeout)
        except asyncio.TimeoutError:
            timed_out = True
    finally:
        await run.client.close()
        exit_codes = run.cluster.terminate_all()
    observation = run.observe()
    observation.extras["exit_codes"] = {
        str(pid): code for pid, code in sorted(exit_codes.items())
    }
    observation.extras["timed_out"] = timed_out
    if owned_tmp is not None:
        observation.extras.pop("workdir", None)
        owned_tmp.cleanup()
    return observation


def run_net_plan(
    plan: FaultPlan,
    *,
    workdir: str | Path | None = None,
    timeout: float = 180.0,
) -> FidelityObservation:
    return asyncio.run(
        run_net_plan_async(plan, workdir=workdir, timeout=timeout)
    )
