"""Fidelity 1: execute a fault plan in the pure simulation.

The plan's fidelity-neutral timeline (plan seconds) is scaled by
:data:`SIM_TIME_SCALE` onto the service world's virtual clock, whose
native timeouts (``request_timeout=40``, ``muteness_timeout=10``) were
tuned for the campaign presets. Link faults run through the shared
:class:`~repro.faults.injector.LinkFaultInjector` via the network's
tamper hook; kills/rejoins reuse the service runtime's recovery
scheduling (down = volatile state lost, up = certified state transfer);
collusion installs transformed-attack engines. The run then settles past
the plan window until the workload drains and the live replicas agree,
or a generous virtual-time budget expires — the oracles, not the budget,
decide the verdict.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any

from repro.byzantine import transformed_attack
from repro.faults.injector import LinkFaultInjector
from repro.faults.oracle import FidelityObservation, live_correct
from repro.faults.plan import FIDELITY_SIM, FaultPlan
from repro.observability.registry import (
    MODULE_FAULTS,
    MODULE_MUTENESS,
    MODULE_SERVICE,
    MODULE_SIGNATURE,
)
from repro.replication.log import EngineFactory
from repro.service.checkpoint import service_digest
from repro.service.config import ServiceConfig
from repro.service.runtime import ServiceSystem, build_service_system

if TYPE_CHECKING:
    from repro.zoo.runtime import ZooInjections

#: Plan seconds -> simulated virtual time. The service stack's sim
#: timeouts are an order of magnitude above the loopback/net genesis
#: knobs, so one plan second stretches accordingly.
SIM_TIME_SCALE = 25.0

#: Extra virtual time (in plan seconds, pre-scale) the run may settle
#: past the plan window before the oracles judge whatever state exists.
SETTLE_BUDGET = 40.0


def _sim_config(plan: FaultPlan) -> ServiceConfig:
    # Lazy zoo import: repro.zoo depends on repro.faults.plan, so the
    # faults package never imports repro.zoo at module scope.
    from repro.zoo.runtime import zoo_service_overrides

    duration = plan.duration * SIM_TIME_SCALE
    # Open-loop workload spread over the first ~70% of the window, so
    # post-rejoin replicas still see fresh traffic to catch up against.
    rate = plan.requests / (0.7 * duration)
    config = ServiceConfig(
        n_replicas=plan.n_replicas,
        n_clients=1,
        mode="open",
        rate=rate,
        requests_per_client=plan.requests,
        batch_size=2,
        batch_delay=1.0,
        window=2,
        checkpoint_interval=1,
        request_timeout=40.0,
        stall_probe=2.0 * SIM_TIME_SCALE,
        seed=plan.seed,
        key_space=16,
    )
    # Zoo plans arm extra service machinery (self-heal, adaptive ◇M,
    # wider pipelining); empty for v1 plans, so their configs and hence
    # their runs are untouched.
    overrides = zoo_service_overrides(plan)
    if overrides:
        config = dataclasses.replace(config, **overrides)
    return config


def _byzantine(plan: FaultPlan) -> dict[int, EngineFactory]:
    engines: dict[int, EngineFactory] = {}
    for pid, name in plan.collusion:
        engines.update(transformed_attack(pid, name))
    return engines


def build_sim_system(
    plan: FaultPlan,
) -> tuple[ServiceSystem, LinkFaultInjector, "ZooInjections"]:
    """The (not yet run) fidelity-1 world for ``plan``."""
    from repro.zoo.runtime import ZooInjections, install_zoo_injections

    plan.validate()
    injector = LinkFaultInjector(plan)

    def tamper(
        now: float, src: int, dst: int, payload: Any
    ) -> list[tuple[Any, float]] | None:
        deliveries = injector.plan_deliveries(
            now / SIM_TIME_SCALE, src, dst, payload
        )
        if deliveries is None:
            return None
        return [
            (copy, delay * SIM_TIME_SCALE) for copy, delay in deliveries
        ]

    recoveries = tuple(
        (pid, at * SIM_TIME_SCALE, rejoin_at * SIM_TIME_SCALE)
        for pid, at, rejoin_at in plan.kills
        if rejoin_at is not None
    )
    system = build_service_system(
        _sim_config(plan),
        byzantine=_byzantine(plan),
        recoveries=recoveries,
        tamper=tamper,
    )
    # Permanent kills have no recovery leg: take the replica down and
    # leave it down (silent, volatile state lost — the crash model).
    for pid, at, rejoin_at in plan.kills:
        if rejoin_at is None:
            replica = system.replicas[pid]
            system.world.scheduler.schedule_at(
                at * SIM_TIME_SCALE, "service-down", replica.go_down
            )
    injections = ZooInjections()
    world = system.world
    # Families (b) and (d): seeded live-state scribbles and sticky
    # storage faults, booked on the world's scheduler at the scaled
    # clause instants (shared wiring across all three runners).
    install_zoo_injections(
        plan,
        lambda at, label, thunk: world.scheduler.schedule_at(
            at * SIM_TIME_SCALE, label, thunk
        ),
        lambda pid: system.replicas[pid],
        injections,
        world.metrics,
    )
    return system, injector, injections


def run_sim_plan(plan: FaultPlan) -> FidelityObservation:
    """Execute ``plan`` at fidelity 1 and reduce it for the judge."""
    system, injector, injections = build_sim_system(plan)
    world = system.world
    live = live_correct(plan)
    floor = plan.progress_floor

    def settled() -> bool:
        if not system.all_clients_done():
            return False
        committed = {
            pid: system.replicas[pid].committed_commands for pid in live
        }
        if any(count < floor for count in committed.values()):
            return False
        digests = {
            service_digest(
                system.replicas[pid].store, system.replicas[pid].executed
            )
            for pid in live
        }
        return len(digests) == 1

    horizon = (plan.duration + SETTLE_BUDGET) * SIM_TIME_SCALE
    deadline = plan.duration * SIM_TIME_SCALE
    while True:
        result = world.run(max_events=5_000_000, max_time=deadline)
        if deadline >= horizon or result.reason == "quiescent":
            break
        if deadline >= plan.duration * SIM_TIME_SCALE and settled():
            break
        deadline = min(horizon, deadline + 5.0 * SIM_TIME_SCALE)

    correct = frozenset(range(plan.n_replicas)) - plan.faulty_pids
    declared = tuple(
        (event.process, event.detail["target"], event.detail["reason"])
        for event in world.trace.of_kind("declare_faulty")
        if event.process in correct
    )
    detected = sum(
        1
        for _observer, target, _reason in declared
        if target in plan.flip_pids
    )
    if detected:
        world.metrics.inc(MODULE_FAULTS, "arb_faults_detected", detected)
    zoo: dict[str, Any] = {}
    if plan.has_zoo:
        metrics = world.metrics
        if plan.suppressions:
            zoo["suppressed"] = injector.suppressed
        if plan.corruptions:
            zoo["corruptions_injected"] = injections.corruptions
            zoo["checkpoint_mismatches"] = int(
                metrics.counter_total(MODULE_SERVICE, "checkpoint_mismatches")
            )
            zoo["state_heals"] = int(
                metrics.counter_total(MODULE_SERVICE, "state_heals")
            )
        if plan.timing:
            zoo["timing_delays"] = injector.timing_delays
            zoo["wrongful_suspicions"] = int(
                sum(
                    metrics.counter(
                        MODULE_MUTENESS, "wrongful_suspicions", pid=pid
                    )
                    for pid in sorted(correct)
                )
            )
        if plan.storage_flips:
            zoo["storage_flips_injected"] = injections.storage_flips_injected
            zoo["storage_rejections"] = int(
                sum(system.replicas[pid].suffix_rejections for pid in live)
                + metrics.counter_total(
                    MODULE_SERVICE, "state_responses_rejected"
                )
            )
    return FidelityObservation(
        fidelity=FIDELITY_SIM,
        completed=system.completed_requests(),
        committed={
            pid: system.replicas[pid].committed_commands for pid in live
        },
        digests={
            pid: service_digest(
                system.replicas[pid].store, system.replicas[pid].executed
            )
            for pid in live
        },
        transfers={
            pid: len(system.replicas[pid].state_transfers_completed)
            for pid in sorted(plan.rejoining_pids)
        },
        declared=declared,
        flips_injected=injector.flips_injected,
        signature_rejections=int(
            world.metrics.counter_total(MODULE_SIGNATURE, "messages_rejected")
        ),
        zoo=zoo,
        extras={
            "end_time": world.now,
            "drops": dict(injector.drops),
            "partition_delays": injector.partition_delays,
            "duplicates": injector.duplicates,
            "reorders": injector.reorders,
        },
    )
