"""Fault plans: one scenario schema for every fidelity (docs/FAULTS.md).

A :class:`FaultPlan` describes *what goes wrong* in a run — muteness,
collusion, per-link loss/duplication/reorder, partition-then-heal
windows, kill/rejoin events, and seeded bit-flips in pre-signature
message fields — in fidelity-neutral terms: event times are **plan
seconds** and pids are replica indices. The same plan (the same JSON
document, the same content-hash id) then executes at three fidelities:

1. pure simulation (``repro.sim.world``, plan seconds scaled to virtual
   time);
2. the deterministic loopback twin (``repro.net`` nodes on a
   :class:`~repro.net.clock.ManualScheduler`, plan seconds 1:1);
3. real subprocess clusters over TCP (SIGSTOP/SIGKILL for
   muteness/crash, socket-level injection in
   :class:`~repro.net.faulty.FaultyPeerTransport`).

Like every scenario family in this repo, a plan round-trips through
plain JSON and hashes to a stable id (prefix ``f``), so a plan file is a
replayable, content-addressed artifact.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping

from repro.byzantine import TRANSFORMED_ATTACKS
from repro.core.specs import SystemParameters
from repro.errors import ConfigurationError

#: Newest schema tag this code reads and writes.
FAULTS_SCHEMA = "repro.faults/v2"
#: The PR-8 schema: every plan without adversary-zoo clauses is still a
#: valid v1 document, and :meth:`FaultPlan.save` tags it as one so older
#: readers keep working (and v1 artifacts stay byte-identical).
FAULTS_SCHEMA_V1 = "repro.faults/v1"

#: Live-state targets of a ``corruptions`` clause (adversary zoo,
#: docs/ADVERSARIES.md): the replicated store or the muteness detectors.
CORRUPTION_TARGETS = ("store", "detector")
#: At-rest targets of a ``storage_flips`` clause: decided log entries or
#: the certified checkpoint snapshot.
STORAGE_TARGETS = ("log", "checkpoint")

#: Verdict expectations a plan may declare.
EXPECTATIONS = ("pass", "vulnerable")

#: Fidelity names, in increasing realism.
FIDELITY_SIM = "sim"
FIDELITY_LOOPBACK = "loopback"
FIDELITY_NET = "net"
FIDELITIES = (FIDELITY_SIM, FIDELITY_LOOPBACK, FIDELITY_NET)


def _parse_groups(groups: str, n_replicas: int) -> tuple[tuple[int, ...], ...]:
    """``"0,1|2,3"`` -> ``((0, 1), (2, 3))`` with full validation."""
    try:
        parsed = tuple(
            tuple(int(pid) for pid in part.split(","))
            for part in groups.split("|")
        )
    except ValueError as exc:
        raise ConfigurationError(
            f"malformed partition groups {groups!r}: {exc}"
        ) from exc
    if len(parsed) < 2:
        raise ConfigurationError(
            f"a partition needs >= 2 groups, got {groups!r}"
        )
    seen: set[int] = set()
    for group in parsed:
        for pid in group:
            if not 0 <= pid < n_replicas:
                raise ConfigurationError(
                    f"partition pid {pid} out of range for "
                    f"n_replicas={n_replicas}"
                )
            if pid in seen:
                raise ConfigurationError(
                    f"partition pid {pid} appears in two groups: {groups!r}"
                )
            seen.add(pid)
    return parsed


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """One fidelity-neutral fault scenario (immutable, hashable)."""

    name: str = "baseline"
    seed: int = 0
    n_replicas: int = 4
    #: Client commands the workload driver pushes through the cluster.
    requests: int = 24
    #: Active window of the plan, in plan seconds; every event time below
    #: must fall inside ``[0, duration)``. The runners keep settling past
    #: the duration until the oracles' convergence criterion holds.
    duration: float = 10.0
    #: ``(pid, at)`` — from ``at`` on, the replica is mute: it runs but
    #: none of its traffic (in or out) is delivered. At the net fidelity
    #: this is a real ``SIGSTOP``.
    mutes: tuple[tuple[int, float], ...] = ()
    #: ``(pid, at, rejoin_at | None)`` — crash (volatile state lost) at
    #: ``at``; ``rejoin_at`` restarts the replica into certified state
    #: transfer, ``None`` keeps it down. At the net fidelity this is a
    #: real ``SIGKILL`` (+ respawn with ``--join``).
    kills: tuple[tuple[int, float, float | None], ...] = ()
    #: ``(start, heal, groups)`` partition-then-heal windows; ``groups``
    #: is the ``"0,1|2,3"`` syntax of the consensus campaign. Severs
    #: replica-replica links across groups, clients stay connected.
    partitions: tuple[tuple[float, float, str], ...] = ()
    #: Per-link Bernoulli fault probabilities on replica-replica links.
    loss: float = 0.0
    duplication: float = 0.0
    reorder: float = 0.0
    #: Extra delay (plan seconds) a reordered copy may pick up.
    reorder_spread: float = 0.5
    #: ``(src_pid, at, count)`` — from ``at`` on, flip one bit in the
    #: first ``count`` eligible pre-signature message fields ``src_pid``
    #: sends (CURRENT round numbers; docs/FAULTS.md explains why). The
    #: sender is *correct* — this is the non-malicious arbitrary-fault
    #: family — so the signature/certification modules must both catch
    #: the corruption and never let the consensus automaton convict the
    #: victim of a behaviour fault.
    flips: tuple[tuple[int, float, int], ...] = ()
    #: ``(pid, attack-name)`` — Byzantine consensus engines from the
    #: transformed-attack catalogue (the collusion axis).
    collusion: tuple[tuple[int, str], ...] = ()
    #: Verdict the plan expects: ``"pass"`` (faults are tolerated) or
    #: ``"vulnerable"`` (violations are the documented expected outcome).
    expect: str = "pass"
    #: Progress floor for the oracles (0 defaults to ``requests``).
    min_commands: int = 0
    #: Adversary zoo, family (a) — ``(d, round_length, start, end)``
    #: message-adversary windows (Albouy/Frey/Raynal/Taïani). Within
    #: ``[start, end)`` plan time is cut into rounds of ``round_length``
    #: seconds and, per (sender, round), a seeded set of exactly ``d``
    #: destinations silently receives nothing from that sender. The
    #: suppressed processes are *not* process faults: the axis is
    #: independent of F, which is the whole point of the family.
    suppressions: tuple[tuple[int, float, float, float], ...] = ()
    #: Adversary zoo, family (b) — ``(pid, at, target)`` transient state
    #: corruption (Duvignau/Raynal/Schiller): at ``at``, seeded garbage
    #: is written into the live ``target`` (:data:`CORRUPTION_TARGETS`)
    #: of an otherwise *correct* replica, which must then re-converge
    #: (self-stabilization; the re-convergence oracle judges it).
    corruptions: tuple[tuple[int, float, str], ...] = ()
    #: Adversary zoo, family (c) — ``(pid, start, end, gap)`` timing
    #: attack: within the window the Byzantine ``pid`` releases its
    #: outbound traffic only at ``gap``-second burst boundaries, shaping
    #: inter-arrival times to drive adaptive muteness estimators into
    #: wrongful suspicion of correct peers. Counted against F.
    timing: tuple[tuple[int, float, float, float], ...] = ()
    #: Adversary zoo, family (d) — ``(pid, at, target)`` at-rest storage
    #: corruption: from ``at`` on, the state ``pid`` serves out of its
    #: ``target`` storage (:data:`STORAGE_TARGETS`) carries a stuck-bit
    #: flip (the Barbieri et al. hardware model), which the signature +
    #: certification modules on the *requesting* side must catch.
    storage_flips: tuple[tuple[int, float, str], ...] = ()

    # -- identity ------------------------------------------------------------

    @property
    def plan_id(self) -> str:
        canonical = json.dumps(
            self.to_config(), sort_keys=True, separators=(",", ":")
        )
        return "f" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]

    # -- config round-trip ---------------------------------------------------

    def to_config(self) -> dict[str, Any]:
        # Zoo keys are emitted only when present: a v1-expressible plan
        # keeps its v1 canonical form, hence its v1 plan_id and report
        # bytes (the compat guarantee of the v2 schema bump).
        config: dict[str, Any] = {
            "name": self.name,
            "seed": self.seed,
            "n_replicas": self.n_replicas,
            "requests": self.requests,
            "duration": self.duration,
            "mutes": [[pid, at] for pid, at in self.mutes],
            "kills": [
                [pid, at, rejoin_at] for pid, at, rejoin_at in self.kills
            ],
            "partitions": [
                [start, heal, groups] for start, heal, groups in self.partitions
            ],
            "loss": self.loss,
            "duplication": self.duplication,
            "reorder": self.reorder,
            "reorder_spread": self.reorder_spread,
            "flips": [[pid, at, count] for pid, at, count in self.flips],
            "collusion": {str(pid): name for pid, name in self.collusion},
            "expect": self.expect,
            "min_commands": self.min_commands,
        }
        if self.suppressions:
            config["suppressions"] = [
                [d, round_length, start, end]
                for d, round_length, start, end in self.suppressions
            ]
        if self.corruptions:
            config["corruptions"] = [
                [pid, at, target] for pid, at, target in self.corruptions
            ]
        if self.timing:
            config["timing"] = [
                [pid, start, end, gap] for pid, start, end, gap in self.timing
            ]
        if self.storage_flips:
            config["storage_flips"] = [
                [pid, at, target] for pid, at, target in self.storage_flips
            ]
        return config

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "FaultPlan":
        try:
            return cls(
                name=str(config.get("name", "baseline")),
                seed=int(config.get("seed", 0)),
                n_replicas=int(config.get("n_replicas", 4)),
                requests=int(config.get("requests", 24)),
                duration=float(config.get("duration", 10.0)),
                mutes=tuple(
                    sorted(
                        (int(pid), float(at))
                        for pid, at in (config.get("mutes") or ())
                    )
                ),
                kills=tuple(
                    sorted(
                        (
                            int(pid),
                            float(at),
                            None if rejoin_at is None else float(rejoin_at),
                        )
                        for pid, at, rejoin_at in (config.get("kills") or ())
                    )
                ),
                partitions=tuple(
                    sorted(
                        (float(start), float(heal), str(groups))
                        for start, heal, groups in (
                            config.get("partitions") or ()
                        )
                    )
                ),
                loss=float(config.get("loss", 0.0)),
                duplication=float(config.get("duplication", 0.0)),
                reorder=float(config.get("reorder", 0.0)),
                reorder_spread=float(config.get("reorder_spread", 0.5)),
                flips=tuple(
                    sorted(
                        (int(pid), float(at), int(count))
                        for pid, at, count in (config.get("flips") or ())
                    )
                ),
                collusion=tuple(
                    sorted(
                        (int(pid), str(name))
                        for pid, name in dict(
                            config.get("collusion") or {}
                        ).items()
                    )
                ),
                expect=str(config.get("expect", "pass")),
                min_commands=int(config.get("min_commands", 0)),
                suppressions=tuple(
                    sorted(
                        (int(d), float(rl), float(start), float(end))
                        for d, rl, start, end in (
                            config.get("suppressions") or ()
                        )
                    )
                ),
                corruptions=tuple(
                    sorted(
                        (int(pid), float(at), str(target))
                        for pid, at, target in (config.get("corruptions") or ())
                    )
                ),
                timing=tuple(
                    sorted(
                        (int(pid), float(start), float(end), float(gap))
                        for pid, start, end, gap in (config.get("timing") or ())
                    )
                ),
                storage_flips=tuple(
                    sorted(
                        (int(pid), float(at), str(target))
                        for pid, at, target in (
                            config.get("storage_flips") or ()
                        )
                    )
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed fault plan config: {exc}"
            ) from exc

    # -- derived -------------------------------------------------------------

    def params(self) -> SystemParameters:
        return SystemParameters.for_n(self.n_replicas)

    @property
    def muted_pids(self) -> frozenset[int]:
        return frozenset(pid for pid, _ in self.mutes)

    @property
    def killed_pids(self) -> frozenset[int]:
        return frozenset(pid for pid, _, _ in self.kills)

    @property
    def rejoining_pids(self) -> frozenset[int]:
        return frozenset(
            pid for pid, _, rejoin_at in self.kills if rejoin_at is not None
        )

    @property
    def colluding_pids(self) -> frozenset[int]:
        return frozenset(pid for pid, _ in self.collusion)

    @property
    def flip_pids(self) -> frozenset[int]:
        return frozenset(pid for pid, _, _ in self.flips)

    @property
    def corrupted_pids(self) -> frozenset[int]:
        return frozenset(pid for pid, _, _ in self.corruptions)

    @property
    def timing_pids(self) -> frozenset[int]:
        return frozenset(pid for pid, _, _, _ in self.timing)

    @property
    def storage_flip_pids(self) -> frozenset[int]:
        return frozenset(pid for pid, _, _ in self.storage_flips)

    @property
    def faulty_pids(self) -> frozenset[int]:
        """Process faults counted against F. Flips, suppressions,
        corruptions and storage flips are deliberately *not* in this
        set: they strike correct processes (link corruption, message
        adversary, transient/at-rest state faults). A timing attacker
        *is* Byzantine — it chooses its send times — so it counts."""
        return (
            self.muted_pids
            | self.killed_pids
            | self.colluding_pids
            | self.timing_pids
        )

    @property
    def has_zoo(self) -> bool:
        """True when any adversary-zoo clause is present (v2-only plan)."""
        return bool(
            self.suppressions
            or self.corruptions
            or self.timing
            or self.storage_flips
        )

    @property
    def schema_tag(self) -> str:
        """The lowest schema version able to express this plan."""
        return FAULTS_SCHEMA if self.has_zoo else FAULTS_SCHEMA_V1

    @property
    def has_link_noise(self) -> bool:
        """Link faults that legitimately create stream gaps at correct
        receivers (the flip-attribution oracle stands down under them;
        a message adversary qualifies — it is pure omission)."""
        return bool(
            self.loss
            or self.duplication
            or self.reorder
            or self.partitions
            or self.suppressions
        )

    @property
    def progress_floor(self) -> int:
        return self.min_commands if self.min_commands else self.requests

    def parsed_partitions(
        self,
    ) -> tuple[tuple[float, float, tuple[tuple[int, ...], ...]], ...]:
        return tuple(
            (start, heal, _parse_groups(groups, self.n_replicas))
            for start, heal, groups in self.partitions
        )

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on any inconsistency."""
        params = self.params()  # raises outside the resilience arithmetic
        if not self.name:
            raise ConfigurationError("fault plan name must be non-empty")
        if self.requests < 1:
            raise ConfigurationError(
                f"requests must be >= 1, got {self.requests}"
            )
        if self.duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration}"
            )
        if self.expect not in EXPECTATIONS:
            raise ConfigurationError(
                f"unknown expectation {self.expect!r}; known: "
                f"{list(EXPECTATIONS)}"
            )
        if self.min_commands < 0:
            raise ConfigurationError(
                f"min_commands must be >= 0, got {self.min_commands}"
            )
        for label, probability in (
            ("loss", self.loss),
            ("duplication", self.duplication),
            ("reorder", self.reorder),
        ):
            if not 0.0 <= probability < 1.0:
                raise ConfigurationError(
                    f"{label} probability must be in [0, 1), "
                    f"got {probability!r}"
                )
        if self.reorder_spread <= 0:
            raise ConfigurationError(
                f"reorder_spread must be positive, got {self.reorder_spread!r}"
            )
        for pid, at in self.mutes:
            self._check_pid(pid, "mute")
            self._check_time(at, f"mute of replica {pid}")
        for pid, at, rejoin_at in self.kills:
            self._check_pid(pid, "kill")
            self._check_time(at, f"kill of replica {pid}")
            if rejoin_at is not None:
                self._check_time(rejoin_at, f"rejoin of replica {pid}")
                if rejoin_at <= at:
                    raise ConfigurationError(
                        f"replica {pid} rejoins at {rejoin_at!r}, before "
                        f"its kill at {at!r}"
                    )
        for start, heal, groups in self.partitions:
            _parse_groups(groups, self.n_replicas)
            self._check_time(start, "partition start")
            if heal <= start:
                raise ConfigurationError(
                    f"partition window [{start!r}, {heal!r}) must satisfy "
                    "start < heal"
                )
            if heal > self.duration:
                raise ConfigurationError(
                    f"partition heals at {heal!r}, past the plan duration "
                    f"{self.duration!r} — it would never heal"
                )
        for pid, at, count in self.flips:
            self._check_pid(pid, "flip")
            self._check_time(at, f"flips of replica {pid}")
            if count < 1:
                raise ConfigurationError(
                    f"flip count of replica {pid} must be >= 1, got {count}"
                )
        for pid, name in self.collusion:
            self._check_pid(pid, "collusion")
            if name not in TRANSFORMED_ATTACKS:
                raise ConfigurationError(
                    f"unknown attack {name!r}; known: "
                    f"{sorted(TRANSFORMED_ATTACKS)}"
                )
        for d, round_length, start, end in self.suppressions:
            if not 1 <= d < self.n_replicas:
                raise ConfigurationError(
                    f"suppression bound d={d} must be in [1, "
                    f"{self.n_replicas - 1}] (destinations per broadcast)"
                )
            if round_length <= 0:
                raise ConfigurationError(
                    f"suppression round_length must be positive, "
                    f"got {round_length!r}"
                )
            self._check_time(start, "suppression window start")
            if not start < end <= self.duration:
                raise ConfigurationError(
                    f"suppression window [{start!r}, {end!r}) must satisfy "
                    f"start < end <= duration ({self.duration!r})"
                )
        for pid, at, target in self.corruptions:
            self._check_pid(pid, "corruption")
            self._check_time(at, f"corruption of replica {pid}")
            if target not in CORRUPTION_TARGETS:
                raise ConfigurationError(
                    f"unknown corruption target {target!r}; known: "
                    f"{list(CORRUPTION_TARGETS)}"
                )
        for pid, start, end, gap in self.timing:
            self._check_pid(pid, "timing attack")
            self._check_time(start, f"timing attack of replica {pid}")
            if not start < end <= self.duration:
                raise ConfigurationError(
                    f"timing window [{start!r}, {end!r}) of replica {pid} "
                    f"must satisfy start < end <= duration "
                    f"({self.duration!r})"
                )
            if gap <= 0:
                raise ConfigurationError(
                    f"timing gap of replica {pid} must be positive, "
                    f"got {gap!r}"
                )
        for pid, at, target in self.storage_flips:
            self._check_pid(pid, "storage flip")
            self._check_time(at, f"storage flip of replica {pid}")
            if target not in STORAGE_TARGETS:
                raise ConfigurationError(
                    f"unknown storage-flip target {target!r}; known: "
                    f"{list(STORAGE_TARGETS)}"
                )
        for label, pids in (
            ("mute", [pid for pid, _ in self.mutes]),
            ("kill", [pid for pid, _, _ in self.kills]),
            ("flip", [pid for pid, _, _ in self.flips]),
            ("collusion", [pid for pid, _ in self.collusion]),
            ("corruption", [pid for pid, _, _ in self.corruptions]),
            ("timing", [pid for pid, _, _, _ in self.timing]),
            ("storage flip", [pid for pid, _, _ in self.storage_flips]),
        ):
            if len(pids) != len(set(pids)):
                raise ConfigurationError(f"duplicate {label} pid in the plan")
        overlapping = [
            pair
            for pair in (
                ("mute", "kill", self.muted_pids & self.killed_pids),
                ("mute", "collusion", self.muted_pids & self.colluding_pids),
                ("kill", "collusion", self.killed_pids & self.colluding_pids),
                ("flip", "fault", self.flip_pids & self.faulty_pids),
                (
                    "corruption",
                    "fault",
                    self.corrupted_pids & self.faulty_pids,
                ),
                (
                    "storage flip",
                    "fault",
                    self.storage_flip_pids & self.faulty_pids,
                ),
                ("mute", "timing", self.muted_pids & self.timing_pids),
                ("kill", "timing", self.killed_pids & self.timing_pids),
                (
                    "collusion",
                    "timing",
                    self.colluding_pids & self.timing_pids,
                ),
            )
            if pair[2]
        ]
        if overlapping:
            a, b, pids = overlapping[0]
            raise ConfigurationError(
                f"replica(s) {sorted(pids)} appear in both the {a} and "
                f"the {b} plan"
            )
        # Timing attackers are *performance* faults: they send correct,
        # signed protocol messages, only late. They count as Byzantine for
        # the oracles (their suspicions are earned) but not against the
        # resilience budget F — the interesting timing regime is exactly
        # the one where a full crash/mute budget makes the slow replica
        # quorum-critical.
        budget = self.faulty_pids - self.timing_pids
        if len(budget) > params.f:
            raise ConfigurationError(
                f"{len(budget)} faulty replicas exceed F="
                f"{params.f} for n={self.n_replicas}"
            )

    def _check_pid(self, pid: int, what: str) -> None:
        if not 0 <= pid < self.n_replicas:
            raise ConfigurationError(
                f"{what} pid {pid} out of range for "
                f"n_replicas={self.n_replicas}"
            )

    def _check_time(self, at: float, what: str) -> None:
        if not 0 <= at < self.duration:
            raise ConfigurationError(
                f"{what} at {at!r} outside the plan window "
                f"[0, {self.duration!r})"
            )

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write the plan as a schema-tagged JSON document."""
        self.validate()
        target = Path(path)
        document = {"schema": self.schema_tag, "config": self.to_config()}
        target.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(f"cannot read fault plan: {exc}") from exc
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"fault plan is not valid JSON: {exc}"
            ) from exc
        if not isinstance(document, dict):
            raise ConfigurationError("fault plan must be a JSON object")
        schema = str(document.get("schema", ""))
        check_faults_schema(schema)
        plan = cls.from_config(document.get("config") or {})
        plan.validate()
        return plan

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)


def check_faults_schema(schema: str) -> None:
    """Reject documents from a newer schema than this code understands."""
    prefix = "repro.faults/v"
    if not schema.startswith(prefix):
        raise ConfigurationError(
            f"unsupported fault-plan schema {schema!r}; expected "
            f"{FAULTS_SCHEMA!r}"
        )
    try:
        version = int(schema[len(prefix):])
    except ValueError:
        raise ConfigurationError(
            f"unsupported fault-plan schema {schema!r}; expected "
            f"{FAULTS_SCHEMA!r}"
        ) from None
    if version > 2:
        raise ConfigurationError(
            f"fault-plan schema {schema!r} is newer than the installed "
            f"code (supports {FAULTS_SCHEMA}); upgrade repro to read it"
        )
