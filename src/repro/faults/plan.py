"""Fault plans: one scenario schema for every fidelity (docs/FAULTS.md).

A :class:`FaultPlan` describes *what goes wrong* in a run — muteness,
collusion, per-link loss/duplication/reorder, partition-then-heal
windows, kill/rejoin events, and seeded bit-flips in pre-signature
message fields — in fidelity-neutral terms: event times are **plan
seconds** and pids are replica indices. The same plan (the same JSON
document, the same content-hash id) then executes at three fidelities:

1. pure simulation (``repro.sim.world``, plan seconds scaled to virtual
   time);
2. the deterministic loopback twin (``repro.net`` nodes on a
   :class:`~repro.net.clock.ManualScheduler`, plan seconds 1:1);
3. real subprocess clusters over TCP (SIGSTOP/SIGKILL for
   muteness/crash, socket-level injection in
   :class:`~repro.net.faulty.FaultyPeerTransport`).

Like every scenario family in this repo, a plan round-trips through
plain JSON and hashes to a stable id (prefix ``f``), so a plan file is a
replayable, content-addressed artifact.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping

from repro.byzantine import TRANSFORMED_ATTACKS
from repro.core.specs import SystemParameters
from repro.errors import ConfigurationError

#: Schema tag of a serialised plan file.
FAULTS_SCHEMA = "repro.faults/v1"

#: Verdict expectations a plan may declare.
EXPECTATIONS = ("pass", "vulnerable")

#: Fidelity names, in increasing realism.
FIDELITY_SIM = "sim"
FIDELITY_LOOPBACK = "loopback"
FIDELITY_NET = "net"
FIDELITIES = (FIDELITY_SIM, FIDELITY_LOOPBACK, FIDELITY_NET)


def _parse_groups(groups: str, n_replicas: int) -> tuple[tuple[int, ...], ...]:
    """``"0,1|2,3"`` -> ``((0, 1), (2, 3))`` with full validation."""
    try:
        parsed = tuple(
            tuple(int(pid) for pid in part.split(","))
            for part in groups.split("|")
        )
    except ValueError as exc:
        raise ConfigurationError(
            f"malformed partition groups {groups!r}: {exc}"
        ) from exc
    if len(parsed) < 2:
        raise ConfigurationError(
            f"a partition needs >= 2 groups, got {groups!r}"
        )
    seen: set[int] = set()
    for group in parsed:
        for pid in group:
            if not 0 <= pid < n_replicas:
                raise ConfigurationError(
                    f"partition pid {pid} out of range for "
                    f"n_replicas={n_replicas}"
                )
            if pid in seen:
                raise ConfigurationError(
                    f"partition pid {pid} appears in two groups: {groups!r}"
                )
            seen.add(pid)
    return parsed


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """One fidelity-neutral fault scenario (immutable, hashable)."""

    name: str = "baseline"
    seed: int = 0
    n_replicas: int = 4
    #: Client commands the workload driver pushes through the cluster.
    requests: int = 24
    #: Active window of the plan, in plan seconds; every event time below
    #: must fall inside ``[0, duration)``. The runners keep settling past
    #: the duration until the oracles' convergence criterion holds.
    duration: float = 10.0
    #: ``(pid, at)`` — from ``at`` on, the replica is mute: it runs but
    #: none of its traffic (in or out) is delivered. At the net fidelity
    #: this is a real ``SIGSTOP``.
    mutes: tuple[tuple[int, float], ...] = ()
    #: ``(pid, at, rejoin_at | None)`` — crash (volatile state lost) at
    #: ``at``; ``rejoin_at`` restarts the replica into certified state
    #: transfer, ``None`` keeps it down. At the net fidelity this is a
    #: real ``SIGKILL`` (+ respawn with ``--join``).
    kills: tuple[tuple[int, float, float | None], ...] = ()
    #: ``(start, heal, groups)`` partition-then-heal windows; ``groups``
    #: is the ``"0,1|2,3"`` syntax of the consensus campaign. Severs
    #: replica-replica links across groups, clients stay connected.
    partitions: tuple[tuple[float, float, str], ...] = ()
    #: Per-link Bernoulli fault probabilities on replica-replica links.
    loss: float = 0.0
    duplication: float = 0.0
    reorder: float = 0.0
    #: Extra delay (plan seconds) a reordered copy may pick up.
    reorder_spread: float = 0.5
    #: ``(src_pid, at, count)`` — from ``at`` on, flip one bit in the
    #: first ``count`` eligible pre-signature message fields ``src_pid``
    #: sends (CURRENT round numbers; docs/FAULTS.md explains why). The
    #: sender is *correct* — this is the non-malicious arbitrary-fault
    #: family — so the signature/certification modules must both catch
    #: the corruption and never let the consensus automaton convict the
    #: victim of a behaviour fault.
    flips: tuple[tuple[int, float, int], ...] = ()
    #: ``(pid, attack-name)`` — Byzantine consensus engines from the
    #: transformed-attack catalogue (the collusion axis).
    collusion: tuple[tuple[int, str], ...] = ()
    #: Verdict the plan expects: ``"pass"`` (faults are tolerated) or
    #: ``"vulnerable"`` (violations are the documented expected outcome).
    expect: str = "pass"
    #: Progress floor for the oracles (0 defaults to ``requests``).
    min_commands: int = 0

    # -- identity ------------------------------------------------------------

    @property
    def plan_id(self) -> str:
        canonical = json.dumps(
            self.to_config(), sort_keys=True, separators=(",", ":")
        )
        return "f" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]

    # -- config round-trip ---------------------------------------------------

    def to_config(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "n_replicas": self.n_replicas,
            "requests": self.requests,
            "duration": self.duration,
            "mutes": [[pid, at] for pid, at in self.mutes],
            "kills": [
                [pid, at, rejoin_at] for pid, at, rejoin_at in self.kills
            ],
            "partitions": [
                [start, heal, groups] for start, heal, groups in self.partitions
            ],
            "loss": self.loss,
            "duplication": self.duplication,
            "reorder": self.reorder,
            "reorder_spread": self.reorder_spread,
            "flips": [[pid, at, count] for pid, at, count in self.flips],
            "collusion": {str(pid): name for pid, name in self.collusion},
            "expect": self.expect,
            "min_commands": self.min_commands,
        }

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "FaultPlan":
        try:
            return cls(
                name=str(config.get("name", "baseline")),
                seed=int(config.get("seed", 0)),
                n_replicas=int(config.get("n_replicas", 4)),
                requests=int(config.get("requests", 24)),
                duration=float(config.get("duration", 10.0)),
                mutes=tuple(
                    sorted(
                        (int(pid), float(at))
                        for pid, at in (config.get("mutes") or ())
                    )
                ),
                kills=tuple(
                    sorted(
                        (
                            int(pid),
                            float(at),
                            None if rejoin_at is None else float(rejoin_at),
                        )
                        for pid, at, rejoin_at in (config.get("kills") or ())
                    )
                ),
                partitions=tuple(
                    sorted(
                        (float(start), float(heal), str(groups))
                        for start, heal, groups in (
                            config.get("partitions") or ()
                        )
                    )
                ),
                loss=float(config.get("loss", 0.0)),
                duplication=float(config.get("duplication", 0.0)),
                reorder=float(config.get("reorder", 0.0)),
                reorder_spread=float(config.get("reorder_spread", 0.5)),
                flips=tuple(
                    sorted(
                        (int(pid), float(at), int(count))
                        for pid, at, count in (config.get("flips") or ())
                    )
                ),
                collusion=tuple(
                    sorted(
                        (int(pid), str(name))
                        for pid, name in dict(
                            config.get("collusion") or {}
                        ).items()
                    )
                ),
                expect=str(config.get("expect", "pass")),
                min_commands=int(config.get("min_commands", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed fault plan config: {exc}"
            ) from exc

    # -- derived -------------------------------------------------------------

    def params(self) -> SystemParameters:
        return SystemParameters.for_n(self.n_replicas)

    @property
    def muted_pids(self) -> frozenset[int]:
        return frozenset(pid for pid, _ in self.mutes)

    @property
    def killed_pids(self) -> frozenset[int]:
        return frozenset(pid for pid, _, _ in self.kills)

    @property
    def rejoining_pids(self) -> frozenset[int]:
        return frozenset(
            pid for pid, _, rejoin_at in self.kills if rejoin_at is not None
        )

    @property
    def colluding_pids(self) -> frozenset[int]:
        return frozenset(pid for pid, _ in self.collusion)

    @property
    def flip_pids(self) -> frozenset[int]:
        return frozenset(pid for pid, _, _ in self.flips)

    @property
    def faulty_pids(self) -> frozenset[int]:
        """Process faults counted against F (flips are *link* corruption
        of a correct sender, so they are deliberately not in this set)."""
        return self.muted_pids | self.killed_pids | self.colluding_pids

    @property
    def has_link_noise(self) -> bool:
        """Probabilistic link faults that legitimately create stream gaps."""
        return bool(
            self.loss or self.duplication or self.reorder or self.partitions
        )

    @property
    def progress_floor(self) -> int:
        return self.min_commands if self.min_commands else self.requests

    def parsed_partitions(
        self,
    ) -> tuple[tuple[float, float, tuple[tuple[int, ...], ...]], ...]:
        return tuple(
            (start, heal, _parse_groups(groups, self.n_replicas))
            for start, heal, groups in self.partitions
        )

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on any inconsistency."""
        params = self.params()  # raises outside the resilience arithmetic
        if not self.name:
            raise ConfigurationError("fault plan name must be non-empty")
        if self.requests < 1:
            raise ConfigurationError(
                f"requests must be >= 1, got {self.requests}"
            )
        if self.duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration}"
            )
        if self.expect not in EXPECTATIONS:
            raise ConfigurationError(
                f"unknown expectation {self.expect!r}; known: "
                f"{list(EXPECTATIONS)}"
            )
        if self.min_commands < 0:
            raise ConfigurationError(
                f"min_commands must be >= 0, got {self.min_commands}"
            )
        for label, probability in (
            ("loss", self.loss),
            ("duplication", self.duplication),
            ("reorder", self.reorder),
        ):
            if not 0.0 <= probability < 1.0:
                raise ConfigurationError(
                    f"{label} probability must be in [0, 1), "
                    f"got {probability!r}"
                )
        if self.reorder_spread <= 0:
            raise ConfigurationError(
                f"reorder_spread must be positive, got {self.reorder_spread!r}"
            )
        for pid, at in self.mutes:
            self._check_pid(pid, "mute")
            self._check_time(at, f"mute of replica {pid}")
        for pid, at, rejoin_at in self.kills:
            self._check_pid(pid, "kill")
            self._check_time(at, f"kill of replica {pid}")
            if rejoin_at is not None:
                self._check_time(rejoin_at, f"rejoin of replica {pid}")
                if rejoin_at <= at:
                    raise ConfigurationError(
                        f"replica {pid} rejoins at {rejoin_at!r}, before "
                        f"its kill at {at!r}"
                    )
        for start, heal, groups in self.partitions:
            _parse_groups(groups, self.n_replicas)
            self._check_time(start, "partition start")
            if heal <= start:
                raise ConfigurationError(
                    f"partition window [{start!r}, {heal!r}) must satisfy "
                    "start < heal"
                )
            if heal > self.duration:
                raise ConfigurationError(
                    f"partition heals at {heal!r}, past the plan duration "
                    f"{self.duration!r} — it would never heal"
                )
        for pid, at, count in self.flips:
            self._check_pid(pid, "flip")
            self._check_time(at, f"flips of replica {pid}")
            if count < 1:
                raise ConfigurationError(
                    f"flip count of replica {pid} must be >= 1, got {count}"
                )
        for pid, name in self.collusion:
            self._check_pid(pid, "collusion")
            if name not in TRANSFORMED_ATTACKS:
                raise ConfigurationError(
                    f"unknown attack {name!r}; known: "
                    f"{sorted(TRANSFORMED_ATTACKS)}"
                )
        for label, pids in (
            ("mute", [pid for pid, _ in self.mutes]),
            ("kill", [pid for pid, _, _ in self.kills]),
            ("flip", [pid for pid, _, _ in self.flips]),
            ("collusion", [pid for pid, _ in self.collusion]),
        ):
            if len(pids) != len(set(pids)):
                raise ConfigurationError(f"duplicate {label} pid in the plan")
        overlapping = [
            pair
            for pair in (
                ("mute", "kill", self.muted_pids & self.killed_pids),
                ("mute", "collusion", self.muted_pids & self.colluding_pids),
                ("kill", "collusion", self.killed_pids & self.colluding_pids),
                ("flip", "fault", self.flip_pids & self.faulty_pids),
            )
            if pair[2]
        ]
        if overlapping:
            a, b, pids = overlapping[0]
            raise ConfigurationError(
                f"replica(s) {sorted(pids)} appear in both the {a} and "
                f"the {b} plan"
            )
        if len(self.faulty_pids) > params.f:
            raise ConfigurationError(
                f"{len(self.faulty_pids)} faulty replicas exceed F="
                f"{params.f} for n={self.n_replicas}"
            )

    def _check_pid(self, pid: int, what: str) -> None:
        if not 0 <= pid < self.n_replicas:
            raise ConfigurationError(
                f"{what} pid {pid} out of range for "
                f"n_replicas={self.n_replicas}"
            )

    def _check_time(self, at: float, what: str) -> None:
        if not 0 <= at < self.duration:
            raise ConfigurationError(
                f"{what} at {at!r} outside the plan window "
                f"[0, {self.duration!r})"
            )

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write the plan as a schema-tagged JSON document."""
        self.validate()
        target = Path(path)
        document = {"schema": FAULTS_SCHEMA, "config": self.to_config()}
        target.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(f"cannot read fault plan: {exc}") from exc
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"fault plan is not valid JSON: {exc}"
            ) from exc
        if not isinstance(document, dict):
            raise ConfigurationError("fault plan must be a JSON object")
        schema = str(document.get("schema", ""))
        check_faults_schema(schema)
        plan = cls.from_config(document.get("config") or {})
        plan.validate()
        return plan

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)


def check_faults_schema(schema: str) -> None:
    """Reject documents from a newer schema than this code understands."""
    prefix = "repro.faults/v"
    if not schema.startswith(prefix):
        raise ConfigurationError(
            f"unsupported fault-plan schema {schema!r}; expected "
            f"{FAULTS_SCHEMA!r}"
        )
    try:
        version = int(schema[len(prefix):])
    except ValueError:
        raise ConfigurationError(
            f"unsupported fault-plan schema {schema!r}; expected "
            f"{FAULTS_SCHEMA!r}"
        ) from None
    if version > 1:
        raise ConfigurationError(
            f"fault-plan schema {schema!r} is newer than the installed "
            f"code (supports {FAULTS_SCHEMA}); upgrade repro to read it"
        )
