"""Cross-fidelity campaign: run plans at every fidelity, compare verdicts.

The headline artifact of :mod:`repro.faults` is the
:class:`CrossFidelityReport`: for each plan, the verdict (``pass`` /
``expected-vulnerability`` / ``fail``) at every requested fidelity plus
an ``agree`` flag per plan and ``all_agree`` overall. Fidelities 1 and 2
are deterministic — their report sections are byte-identical across runs
for a fixed seed (the ``make faults-smoke`` double-run ``cmp`` pins
this); fidelity 3 is verdict-stable only, so its observation extras are
excluded from the canonical serialisation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.faults.loopback_runner import run_loopback_plan
from repro.faults.oracle import FidelityObservation, judge
from repro.faults.plan import (
    FAULTS_SCHEMA,
    FAULTS_SCHEMA_V1,
    FIDELITIES,
    FIDELITY_LOOPBACK,
    FIDELITY_NET,
    FIDELITY_SIM,
    FaultPlan,
)
from repro.faults.sim_runner import run_sim_plan

#: The deterministic fidelities whose report sections must be
#: byte-identical across runs at a fixed seed.
DETERMINISTIC_FIDELITIES = (FIDELITY_SIM, FIDELITY_LOOPBACK)


def _preset_plans() -> dict[str, tuple[FaultPlan, ...]]:
    smoke = (
        FaultPlan(
            name="mute-one",
            seed=11,
            requests=18,
            duration=10.0,
            mutes=((1, 3.0),),
        ),
        FaultPlan(
            name="partition-heal",
            seed=12,
            requests=18,
            duration=12.0,
            partitions=((3.0, 6.0, "0,1|2,3"),),
        ),
        FaultPlan(
            name="kill-rejoin",
            seed=13,
            requests=18,
            duration=12.0,
            kills=((2, 3.0, 6.0),),
        ),
        FaultPlan(
            name="bit-flip",
            seed=14,
            requests=18,
            duration=10.0,
            flips=((1, 1.0, 3),),
        ),
    )
    extended = smoke + (
        FaultPlan(
            name="link-noise",
            seed=15,
            requests=18,
            duration=12.0,
            loss=0.02,
            duplication=0.02,
            reorder=0.05,
            reorder_spread=0.3,
        ),
        FaultPlan(
            name="collusion-corrupt-vector",
            seed=16,
            requests=18,
            duration=12.0,
            collusion=((3, "corrupt-vector"),),
        ),
    )
    return {"smoke": smoke, "extended": extended}


#: Named plan matrices for the CLI and the make targets.
FAULT_PRESETS = _preset_plans()


def run_plan(
    plan: FaultPlan,
    fidelity: str,
    *,
    workdir: str | Path | None = None,
    timeout: float = 180.0,
) -> FidelityObservation:
    """Execute one plan at one fidelity."""
    if fidelity == FIDELITY_SIM:
        return run_sim_plan(plan)
    if fidelity == FIDELITY_LOOPBACK:
        return run_loopback_plan(plan)
    if fidelity == FIDELITY_NET:
        # Imported lazily: the deterministic fidelities must not depend
        # on subprocess/socket machinery.
        from repro.faults.net_runner import run_net_plan

        return run_net_plan(plan, workdir=workdir, timeout=timeout)
    raise ConfigurationError(
        f"unknown fidelity {fidelity!r}; known: {list(FIDELITIES)}"
    )


@dataclass(slots=True)
class PlanResult:
    """One plan's verdicts and observations across fidelities."""

    plan: FaultPlan
    #: fidelity -> (verdict, violations, observation)
    outcomes: dict[str, tuple[str, list[str], FidelityObservation]] = field(
        default_factory=dict
    )
    #: Flake-hunting data (``--rehunt``): fidelity -> verdict -> count
    #: over the original run plus every re-run. ``None`` when the plan's
    #: verdicts agreed (or rehunting was off) — the field then stays out
    #: of :meth:`to_record` entirely, so clean deterministic reports keep
    #: their double-run byte-identity.
    rehunt: dict[str, dict[str, int]] | None = None

    @property
    def verdicts(self) -> dict[str, str]:
        return {
            fidelity: verdict
            for fidelity, (verdict, _v, _o) in self.outcomes.items()
        }

    @property
    def agree(self) -> bool:
        return len(set(self.verdicts.values())) == 1

    @property
    def expected(self) -> bool:
        """Every fidelity reached the verdict the plan declares."""
        wanted = (
            "pass" if self.plan.expect == "pass" else "expected-vulnerability"
        )
        return all(v == wanted for v in self.verdicts.values())

    def to_record(self) -> dict[str, Any]:
        fidelities: dict[str, Any] = {}
        for fidelity, (verdict, violations, observation) in sorted(
            self.outcomes.items()
        ):
            entry: dict[str, Any] = {
                "verdict": verdict,
                "violations": list(violations),
            }
            # Only the deterministic fidelities expose their raw
            # observation: fidelity 3's numbers vary run to run and
            # would break the double-run byte-identity contract.
            if fidelity in DETERMINISTIC_FIDELITIES:
                entry["observation"] = {
                    "completed": observation.completed,
                    "committed": {
                        str(pid): count
                        for pid, count in sorted(observation.committed.items())
                    },
                    "digests": {
                        str(pid): digest
                        for pid, digest in sorted(observation.digests.items())
                    },
                    "transfers": {
                        str(pid): count
                        for pid, count in sorted(observation.transfers.items())
                    },
                    "declared": [list(entry) for entry in observation.declared],
                    "flips_injected": observation.flips_injected,
                    "signature_rejections": observation.signature_rejections,
                }
                # Zoo facts only appear for zoo plans, keeping v1 plan
                # records byte-identical.
                if observation.zoo:
                    entry["observation"]["zoo"] = {
                        key: value
                        for key, value in sorted(observation.zoo.items())
                    }
            fidelities[fidelity] = entry
        record = {
            "plan_id": self.plan.plan_id,
            "name": self.plan.name,
            "expect": self.plan.expect,
            "config": self.plan.to_config(),
            "fidelities": fidelities,
            "agree": self.agree,
            "expected": self.expected,
        }
        if self.rehunt is not None:
            record["rehunt"] = {
                fidelity: dict(sorted(counts.items()))
                for fidelity, counts in sorted(self.rehunt.items())
            }
        return record


@dataclass(slots=True)
class CrossFidelityReport:
    """The campaign artifact: verdict agreement across fidelities."""

    fidelities: tuple[str, ...]
    results: list[PlanResult] = field(default_factory=list)

    @property
    def all_agree(self) -> bool:
        return all(result.agree for result in self.results)

    @property
    def all_expected(self) -> bool:
        return all(result.expected for result in self.results)

    @property
    def ok(self) -> bool:
        return self.all_agree and self.all_expected

    def to_record(self) -> dict[str, Any]:
        # Like FaultPlan.save: tag with the lowest schema version able
        # to express the content, so reports over v1-only plans stay
        # byte-identical to their PR-8 form.
        schema = (
            FAULTS_SCHEMA
            if any(result.plan.has_zoo for result in self.results)
            else FAULTS_SCHEMA_V1
        )
        return {
            "schema": schema,
            "kind": "cross-fidelity-report",
            "fidelities": list(self.fidelities),
            "plans": [result.to_record() for result in self.results],
            "all_agree": self.all_agree,
            "all_expected": self.all_expected,
            "ok": self.ok,
        }

    def dumps(self) -> str:
        """Canonical JSON: byte-identical for identical deterministic runs."""
        return (
            json.dumps(
                self.to_record(),
                indent=2,
                sort_keys=True,
                separators=(",", ": "),
            )
            + "\n"
        )

    def save(self, path: str | Path) -> Path:
        target = Path(path)
        target.write_text(self.dumps(), encoding="utf-8")
        return target


def run_cross_fidelity(
    plans: tuple[FaultPlan, ...],
    fidelities: tuple[str, ...],
    *,
    workdir: str | Path | None = None,
    timeout: float = 180.0,
    progress: Any = None,
    rehunt: int = 0,
) -> CrossFidelityReport:
    """Run every plan at every fidelity and assemble the report.

    With ``rehunt > 0``, any plan whose fidelities *disagree* is re-run
    ``rehunt`` more times at every fidelity and the verdict distribution
    (original run included, so the counts sum to ``1 + rehunt``) lands in
    the plan's record — the flake-hunting mode that tells a
    nondeterministic fidelity-3 verdict apart from a genuine
    cross-fidelity divergence. Agreeing plans are never re-run, so clean
    deterministic reports stay byte-identical whatever ``rehunt`` is.
    """
    if rehunt < 0:
        raise ConfigurationError(f"rehunt must be >= 0, got {rehunt}")
    for fidelity in fidelities:
        if fidelity not in FIDELITIES:
            raise ConfigurationError(
                f"unknown fidelity {fidelity!r}; known: {list(FIDELITIES)}"
            )
    report = CrossFidelityReport(fidelities=tuple(fidelities))
    for plan in plans:
        plan.validate()
        result = PlanResult(plan=plan)
        for fidelity in fidelities:
            if progress is not None:
                progress(f"{plan.name} [{plan.plan_id}] @ {fidelity}")
            subdir = None
            if workdir is not None:
                subdir = Path(workdir) / f"{plan.plan_id}-{fidelity}"
            observation = run_plan(
                plan, fidelity, workdir=subdir, timeout=timeout
            )
            verdict, violations = judge(plan, observation)
            result.outcomes[fidelity] = (verdict, violations, observation)
        if rehunt > 0 and not result.agree:
            distribution: dict[str, dict[str, int]] = {
                fidelity: {result.verdicts[fidelity]: 1}
                for fidelity in fidelities
            }
            for attempt in range(rehunt):
                for fidelity in fidelities:
                    if progress is not None:
                        progress(
                            f"{plan.name} [{plan.plan_id}] @ {fidelity} "
                            f"rehunt {attempt + 1}/{rehunt}"
                        )
                    subdir = None
                    if workdir is not None:
                        subdir = (
                            Path(workdir)
                            / f"{plan.plan_id}-{fidelity}-rehunt{attempt}"
                        )
                    observation = run_plan(
                        plan, fidelity, workdir=subdir, timeout=timeout
                    )
                    verdict, _violations = judge(plan, observation)
                    counts = distribution[fidelity]
                    counts[verdict] = counts.get(verdict, 0) + 1
            result.rehunt = distribution
        report.results.append(result)
    return report
