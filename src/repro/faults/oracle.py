"""The fidelity-neutral verdict: one judge for all three runners.

Every runner reduces its run to a :class:`FidelityObservation` — the
same handful of facts regardless of whether they came from a simulated
world's trace, a loopback node's registry, or a subprocess cluster's
exported JSONL — and :func:`judge` turns (plan, observation) into the
``pass`` / ``expected-vulnerability`` / ``fail`` verdict plus the list
of violated oracles. The cross-fidelity contract (docs/FAULTS.md) is
that this verdict agrees across fidelities for the same plan.

The bit-flip attribution oracle closes the loop on the first
arbitrary-fault family: at least one flip must have been injected, the
corruption must be *detected* by the signature/certification side
(declarations classified via
:func:`repro.campaign.oracles.classify_fault_reason`, with the raw
signature-rejection counter as the fidelity-3 fallback when the bounded
trace has rolled over), and — on plans without probabilistic link noise,
whose stream gaps could legitimately trip Figure 4 — the behaviour
automaton must never convict the innocent flipped sender.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.byzantine.faults import DetectingModule
from repro.campaign.oracles import (
    VERDICT_EXPECTED_VULNERABILITY,
    VERDICT_FAIL,
    VERDICT_PASS,
    classify_fault_reason,
)
from repro.faults.plan import FaultPlan

#: Modules allowed to flag a flipped-bit corruption (the verification
#: side of the receive path; never the behaviour automaton).
FLIP_MODULES = frozenset(
    {DetectingModule.SIGNATURE, DetectingModule.CERTIFICATION}
)


@dataclass(slots=True)
class FidelityObservation:
    """What one runner saw, reduced to the judge's vocabulary."""

    fidelity: str
    #: Client requests that completed end-to-end.
    completed: int = 0
    #: pid -> commands committed at that replica (live replicas only).
    committed: dict[int, int] = field(default_factory=dict)
    #: pid -> application-state digest at the end of the run.
    digests: dict[int, str] = field(default_factory=dict)
    #: pid -> certified state transfers completed (rejoin evidence).
    transfers: dict[int, int] = field(default_factory=dict)
    #: ``(observer, target, reason)`` fault declarations by correct
    #: observers (may be truncated at fidelity 3 — see the counters).
    declared: tuple[tuple[int, int, str], ...] = ()
    #: Flips the injector actually performed.
    flips_injected: int = 0
    #: Total signature-verification rejections (durable fallback for
    #: flip detection when the bounded event window rolled over).
    signature_rejections: int = 0
    #: Adversary-zoo facts (docs/ADVERSARIES.md): injection/detection
    #: counters per family plus the re-convergence verdict. Populated
    #: only for zoo plans, so v1 plan records stay byte-identical; the
    #: per-family oracles in :mod:`repro.zoo.oracles` judge it.
    zoo: dict[str, Any] = field(default_factory=dict)
    #: Free-form runner extras carried into the report (never judged).
    extras: dict[str, Any] = field(default_factory=dict)


def live_correct(plan: FaultPlan) -> frozenset[int]:
    """Replicas the convergence oracles may hold to account at the end:
    correct, never muted, and not dead at the end of the plan."""
    gone = (
        plan.muted_pids
        | plan.colluding_pids
        | (plan.killed_pids - plan.rejoining_pids)
    )
    return frozenset(range(plan.n_replicas)) - gone


def judge(
    plan: FaultPlan, observation: FidelityObservation
) -> tuple[str, list[str]]:
    """Apply the oracle catalogue; return ``(verdict, violations)``."""
    violations: list[str] = []
    live = live_correct(plan)
    floor = plan.progress_floor

    # Progress: the workload completed and every live replica executed it.
    if observation.completed < plan.requests:
        violations.append(
            f"progress: {observation.completed}/{plan.requests} client "
            "requests completed"
        )
    for pid in sorted(live):
        committed = observation.committed.get(pid, 0)
        if committed < floor:
            violations.append(
                f"progress: replica {pid} committed {committed} < {floor} "
                "commands"
            )

    # Convergence: one application-state digest across the live set.
    missing = [pid for pid in sorted(live) if pid not in observation.digests]
    if missing:
        violations.append(
            f"convergence: no final digest from replica(s) {missing}"
        )
    digests = {observation.digests[pid] for pid in live - set(missing)}
    if len(digests) > 1:
        violations.append(
            "convergence: live correct replicas diverge: "
            + ", ".join(
                f"{pid}={observation.digests[pid][:12]}"
                for pid in sorted(live - set(missing))
            )
        )

    # Recovery: every rejoining replica certified at least one transfer.
    for pid in sorted(plan.rejoining_pids):
        if observation.transfers.get(pid, 0) < 1:
            violations.append(
                f"recovery: rejoined replica {pid} completed no certified "
                "state transfer"
            )

    # Arbitrary-fault family: flips injected, detected, and attributed
    # to the verification modules — never the behaviour automaton.
    if plan.flips:
        if observation.flips_injected < 1:
            violations.append(
                "injection: the plan schedules bit-flips but none were "
                "injected (no eligible CURRENT traffic in the window?)"
            )
        else:
            flip_srcs = plan.flip_pids
            verification_hits = sum(
                1
                for _observer, target, reason in observation.declared
                if target in flip_srcs
                and classify_fault_reason(reason) in FLIP_MODULES
            )
            if verification_hits == 0 and observation.signature_rejections == 0:
                violations.append(
                    "detection: flipped pre-signature fields were never "
                    "rejected by the signature/certification modules"
                )
        if not plan.has_link_noise:
            automaton_hits = sorted(
                {
                    (observer, target)
                    for observer, target, reason in observation.declared
                    if target in plan.flip_pids
                    and classify_fault_reason(reason)
                    is DetectingModule.NON_MUTENESS_DETECTOR
                }
            )
            if automaton_hits:
                violations.append(
                    "attribution: the behaviour automaton convicted the "
                    f"innocent flipped sender(s): {automaton_hits}"
                )

    # Adversary-zoo families (v2 plans): per-family injection/detection/
    # attribution oracles, including the self-stabilization verdict.
    # Imported lazily — repro.zoo depends on repro.faults.plan, so the
    # faults package never imports repro.zoo at module scope.
    if plan.has_zoo:
        from repro.zoo.oracles import judge_zoo

        violations.extend(judge_zoo(plan, observation, live))

    if not violations:
        return VERDICT_PASS, violations
    if plan.expect == "vulnerable":
        return VERDICT_EXPECTED_VULNERABILITY, violations
    return VERDICT_FAIL, violations
