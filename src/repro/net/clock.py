"""Schedulers driving :class:`~repro.sim.process.ProcessEnv` off real time.

The whole point of the net runtime is that the five modules and the
service replica run *unchanged*: they only ever touch their environment
through ``scheduler.now`` and ``scheduler.schedule_after`` (timers) and
``network.send``. These two classes supply that scheduler surface:

* :class:`WallScheduler` — timers on the asyncio event loop, ``now`` in
  wall-clock seconds since the node started. Genesis knobs are therefore
  in seconds (a simulated "time unit" becomes one second).
* :class:`ManualScheduler` — a deterministic heap clock for the loopback
  deployments in the test suite: :meth:`ManualScheduler.advance` fires
  due timers in ``(time, insertion)`` order exactly like the simulator.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SchedulerError
from repro.sim.events import CancellationToken


class WallScheduler:
    """Timer scheduler over a running asyncio event loop."""

    def __init__(self, loop: Any) -> None:
        self._loop = loop
        self._origin = loop.time()

    @property
    def now(self) -> float:
        return self._loop.time() - self._origin

    def schedule_after(
        self, delay: float, kind: str, callback: Callable[[], None]
    ) -> CancellationToken:
        if delay < 0.0:
            raise SchedulerError(f"negative delay {delay!r}")
        token = CancellationToken()

        def fire() -> None:
            if not token.cancelled:
                callback()

        self._loop.call_later(delay, fire)
        return token


class ManualScheduler:
    """Deterministic wall-clock stand-in for loopback deployments."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start
        self._heap: list[tuple[float, int, CancellationToken, Callable[[], None]]] = []
        self._seq = 0

    @property
    def pending(self) -> int:
        return sum(1 for _, _, token, _ in self._heap if not token.cancelled)

    def schedule_after(
        self, delay: float, kind: str, callback: Callable[[], None]
    ) -> CancellationToken:
        if delay < 0.0:
            raise SchedulerError(f"negative delay {delay!r}")
        token = CancellationToken()
        heapq.heappush(self._heap, (self.now + delay, self._seq, token, callback))
        self._seq += 1
        return token

    def advance(self, duration: float) -> int:
        """Move time forward, firing every due timer in order."""
        if duration < 0.0:
            raise SchedulerError(f"cannot advance by {duration!r}")
        target = self.now + duration
        fired = 0
        while self._heap and self._heap[0][0] <= target:
            time, _seq, token, callback = heapq.heappop(self._heap)
            self.now = max(self.now, time)
            if token.cancelled:
                continue
            callback()
            fired += 1
        self.now = target
        return fired
