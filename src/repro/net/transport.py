"""Transports of the net runtime: real TCP full mesh and in-memory loopback.

Both expose the same tiny surface a :class:`~repro.net.node.NetNode`
needs — ``send(dst, payload)`` plus a ``(src, message)`` delivery
callback — so every protocol-facing test runs on the deterministic
:class:`LoopbackHub` while deployments run :class:`PeerTransport` over
asyncio TCP. The loopback still pushes **every** payload through the
wire codec: what the tests exercise is byte-for-byte what the sockets
carry.

:class:`PeerTransport` design (docs/NET.md):

* one *outbound* TCP connection per peer replica, used only for sending;
  inbound frames arrive on connections the peer dialed. Every connection
  opens with an authenticated :class:`~repro.net.messages.Hello` bound
  to (genesis, dialer, acceptor, role);
* per-peer outbound queues: ``await writer.drain()`` applies TCP
  backpressure to the queue consumer, and a full queue drops the
  *oldest* frame (counted) — the protocol tolerates loss via resubmits,
  retries and state transfer, so bounded memory wins over completeness;
* reconnect with exponential backoff (capped), forever: a restarted
  peer is redialed automatically, which is what lets a killed replica
  rejoin without any orchestration;
* client connections are remembered by pid at hello time so replica →
  client traffic (replies, read answers) routes back over the stream
  the client opened.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Callable

from repro.errors import ReproError
from repro.net.genesis import Genesis
from repro.net.messages import ROLE_REPLICA, Hello
from repro.net.wire import FrameAssembler, WireError, decode_frame, encode_frame
from repro.observability.registry import NULL_METRICS

MessageHandler = Callable[[int, Any], None]

#: Outbound queue bound per peer (frames, not bytes).
QUEUE_LIMIT = 512
#: Reconnect backoff: base * 2^attempt, capped.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0
READ_CHUNK = 1 << 16


class TransportError(ReproError):
    """The transport was driven outside its contract."""


# ---------------------------------------------------------------------------
# Loopback: deterministic in-memory fabric with codec round-trips.
# ---------------------------------------------------------------------------


class LoopbackHub:
    """In-memory message fabric with the PeerTransport surface.

    Sends enqueue; delivery happens when the hub's zero-delay drain
    timer fires on the shared scheduler (or on an explicit
    :meth:`flush`). Deferring the drain keeps a multi-destination
    broadcast *atomic*: every copy is enqueued before any destination
    runs its handler, preserving the per-``(src, dst)`` FIFO order a
    real TCP connection gives — a synchronous drain would let the first
    recipient's whole downstream cascade run (and send) in between the
    copies, reordering one sender's messages at a third node. The drain
    itself is an iterative FIFO loop (never recursive), so message
    storms cannot blow the stack. Unregistered destinations drop
    (counted), modelling a killed process.
    """

    def __init__(self, scheduler: Any) -> None:
        self._scheduler = scheduler
        self._handlers: dict[int, MessageHandler] = {}
        self._queue: deque[tuple[int, int, bytes]] = deque()
        self._dispatching = False
        self._drain_scheduled = False
        self.frames_delivered = 0
        self.frames_dropped = 0
        self.frames_rejected = 0
        #: wire version -> frames delivered under it (codec observability).
        self.frames_by_version: dict[int, int] = {}

    def register(self, pid: int, handler: MessageHandler) -> "LoopbackTransport":
        if pid in self._handlers:
            raise TransportError(f"pid {pid} already registered on the hub")
        self._handlers[pid] = handler
        return LoopbackTransport(self, pid)

    def unregister(self, pid: int) -> None:
        self._handlers.pop(pid, None)

    def submit(self, src: int, dst: int, payload: Any) -> None:
        try:
            frame = encode_frame(payload)
        except WireError:
            self.frames_rejected += 1
            return
        self._queue.append((src, dst, frame))
        if not self._dispatching and not self._drain_scheduled:
            self._drain_scheduled = True
            self._scheduler.schedule_after(0.0, "loopback-drain", self.flush)

    def flush(self) -> None:
        """Deliver everything queued (drains nested sends too)."""
        self._drain_scheduled = False
        self._drain()

    def _drain(self) -> None:
        if self._dispatching:
            return
        self._dispatching = True
        try:
            while self._queue:
                src, dst, frame = self._queue.popleft()
                handler = self._handlers.get(dst)
                if handler is None:
                    self.frames_dropped += 1
                    continue
                try:
                    message = decode_frame(frame)
                except WireError:
                    self.frames_rejected += 1
                    continue
                self.frames_delivered += 1
                version = frame[2]  # the byte after the 2-byte magic
                self.frames_by_version[version] = (
                    self.frames_by_version.get(version, 0) + 1
                )
                handler(src, message)
        finally:
            self._dispatching = False


class LoopbackTransport:
    """One endpoint's sending handle onto a :class:`LoopbackHub`."""

    __slots__ = ("_hub", "pid")

    def __init__(self, hub: LoopbackHub, pid: int) -> None:
        self._hub = hub
        self.pid = pid

    def send(self, dst: int, payload: Any) -> None:
        self._hub.submit(self.pid, dst, payload)

    def close(self) -> None:
        self._hub.unregister(self.pid)


# ---------------------------------------------------------------------------
# Real sockets.
# ---------------------------------------------------------------------------


class PeerTransport:
    """Authenticated full-mesh TCP transport for one replica."""

    def __init__(
        self,
        genesis: Genesis,
        pid: int,
        handler: MessageHandler,
        *,
        metrics: Any = NULL_METRICS,
        queue_limit: int = QUEUE_LIMIT,
    ) -> None:
        genesis.address_of(pid)  # raises ConfigurationError on a bad pid
        self._genesis = genesis
        self._pid = pid
        self._handler = handler
        self._metrics = metrics
        self._queue_limit = queue_limit
        self._queues: dict[int, asyncio.Queue[bytes]] = {}
        #: Live outbound writer per peer (fault injection hooks abort
        #: these to simulate mid-stream connection resets).
        self._peer_writers: dict[int, asyncio.StreamWriter] = {}
        self._accepted: set[asyncio.StreamWriter] = set()
        self._clients: dict[int, asyncio.StreamWriter] = {}
        self._tasks: list[asyncio.Task] = []
        self._server: asyncio.AbstractServer | None = None
        self._closing = False
        self.bound_port: int | None = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        host, port = self._genesis.address_of(self._pid)
        self._server = await asyncio.start_server(self._accept, host, port)
        self.bound_port = self._server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        for peer in range(self._genesis.n_replicas):
            if peer == self._pid:
                continue
            self._queues[peer] = asyncio.Queue(maxsize=self._queue_limit)
            self._tasks.append(loop.create_task(self._outbound(peer)))

    async def stop(self) -> None:
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        # Server.close() only stops *listening*; established inbound
        # connections keep reading unless we hang up on each — a peer
        # that dialed us must see the drop to start its reconnect loop.
        for writer in list(self._accepted):
            _close_quietly(writer)
        self._accepted.clear()
        self._clients.clear()

    # -- sending -----------------------------------------------------------

    def send(self, dst: int, payload: Any) -> None:
        try:
            frame = encode_frame(payload)
        except WireError:
            self._metrics.inc("frames_unencodable")
            return
        self._metrics.inc("frames_sent")
        self._metrics.inc("bytes_sent", len(frame))
        if dst == self._pid:
            # Self-delivery still round-trips the codec (a node talks to
            # itself exactly like to a peer) but stays in-process.
            try:
                message = decode_frame(frame)
            except WireError:
                self._metrics.inc("frames_rejected")
                return
            asyncio.get_running_loop().call_soon(
                self._dispatch, self._pid, message
            )
            return
        if dst < self._genesis.n_replicas:
            queue = self._queues.get(dst)
            if queue is None:
                self._metrics.inc("frames_dropped")
                return
            try:
                queue.put_nowait(frame)
            except asyncio.QueueFull:
                # Bounded memory beats completeness: drop the *oldest*
                # frame — the freshest protocol state supersedes it.
                try:
                    queue.get_nowait()
                except asyncio.QueueEmpty:
                    pass
                queue.put_nowait(frame)
                self._metrics.inc("frames_dropped")
            return
        writer = self._clients.get(dst)
        if writer is None or writer.is_closing():
            self._metrics.inc("client_frames_dropped")
            return
        try:
            writer.write(frame)
        except (OSError, RuntimeError):
            self._metrics.inc("client_frames_dropped")

    # -- outbound connections ---------------------------------------------

    async def _outbound(self, peer: int) -> None:
        """Dial ``peer`` forever: connect, hello, pump the queue, back off."""
        host, port = self._genesis.address_of(peer)
        queue = self._queues[peer]
        attempt = 0
        while not self._closing:
            writer: asyncio.StreamWriter | None = None
            try:
                _reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    encode_frame(
                        self._genesis.hello_for(self._pid, peer, ROLE_REPLICA)
                    )
                )
                await writer.drain()
                self._metrics.inc("peer_connects")
                self._peer_writers[peer] = writer
                attempt = 0
                while not self._closing:
                    frame = await queue.get()
                    writer.write(frame)
                    await writer.drain()  # TCP backpressure lands here
            except asyncio.CancelledError:
                raise
            except (OSError, ConnectionError):
                pass
            finally:
                if writer is not None:
                    if self._peer_writers.get(peer) is writer:
                        del self._peer_writers[peer]
                    _close_quietly(writer)
            if self._closing:
                return
            self._metrics.inc("peer_reconnects")
            attempt += 1
            await asyncio.sleep(
                min(BACKOFF_CAP, BACKOFF_BASE * (2 ** min(attempt, 10)))
            )

    # -- inbound connections ----------------------------------------------

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        assembler = FrameAssembler()
        peer: int | None = None
        self._accepted.add(writer)
        try:
            while True:
                data = await reader.read(READ_CHUNK)
                if not data:
                    return
                before = dict(assembler.decoded_by_version)
                try:
                    messages = assembler.feed(data)
                except WireError:
                    self._metrics.inc("frames_rejected")
                    return
                for version, count in assembler.decoded_by_version.items():
                    delta = count - before.get(version, 0)
                    if delta:
                        self._metrics.inc(f"frames_v{version}", delta)
                for message in messages:
                    if peer is None:
                        # First frame must be a valid Hello; anything
                        # else (or a bad MAC) closes the connection.
                        if not isinstance(message, Hello) or not (
                            self._genesis.hello_valid(message, self._pid)
                        ):
                            self._metrics.inc("hello_rejected")
                            return
                        peer = message.peer
                        self._metrics.inc("hello_accepted")
                        if peer >= self._genesis.n_replicas:
                            self._clients[peer] = writer
                        continue
                    self._metrics.inc("frames_received")
                    self._dispatch(peer, message)
        except asyncio.CancelledError:
            raise
        except (OSError, ConnectionError):
            return
        finally:
            self._accepted.discard(writer)
            if (
                peer is not None
                and peer >= self._genesis.n_replicas
                and self._clients.get(peer) is writer
            ):
                del self._clients[peer]
            _close_quietly(writer)

    def _dispatch(self, src: int, message: Any) -> None:
        try:
            self._handler(src, message)
        except Exception:
            # A handler bug on one message must not kill the reader task
            # for the whole connection; count it and keep serving.
            self._metrics.inc("handler_errors")


def _close_quietly(writer: asyncio.StreamWriter) -> None:
    try:
        writer.close()
    except Exception:
        pass
