"""The genesis file: one JSON document pinning a whole deployment.

A cluster is a pure function of its genesis the same way a simulated
world is a pure function of its config and seed: replica addresses,
quorum parameters, every runtime knob and the key-derivation seed all
live in one immutable :class:`Genesis`. Every node and client loads the
same file; the :meth:`Genesis.genesis_id` content hash is embedded in
every connection handshake so processes from different genesis files
(or tampered copies) refuse to talk to each other.

Key material note: the simulated signature scheme derives per-process
HMAC keys from ``(seed, pid)`` (:mod:`repro.crypto.keys`), so "keygen"
amounts to fixing the seed — the genesis *is* the key directory. The
hello domain is separated from every protocol domain by the affine map
``seed·1000003 − 2`` (slots use ``+ slot``, checkpoints ``− 1``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Any

from repro.crypto.encoding import canonical_bytes
from repro.crypto.keys import KeyAuthority
from repro.errors import ConfigurationError
from repro.net.messages import ROLE_REPLICA, ROLES, Hello
from repro.service.config import ServiceConfig

#: Affine offset of the hello-handshake signature domain.
HELLO_DOMAIN = -2


@dataclass(frozen=True, slots=True)
class Genesis:
    """Everything a node or client needs to join one deployment."""

    name: str = "local"
    seed: int = 0
    n_replicas: int = 4
    #: Explicit fault bound; ``None`` derives F from ``n_replicas``.
    f: int | None = None
    #: Client identity space: client ``i`` is pid ``n_replicas + i``.
    max_clients: int = 4
    #: One ``(host, port)`` per replica, indexed by pid.
    addresses: tuple[tuple[str, int], ...] = ()
    # -- runtime knobs, in wall-clock seconds ----------------------------
    batch_size: int = 8
    batch_delay: float = 0.05
    window: int = 4
    checkpoint_interval: int = 4
    muteness_timeout: float = 1.5
    transfer_retry: float = 0.5
    stall_probe: float = 3.0
    #: Client resubmit-on-silence timeout.
    request_timeout: float = 1.5
    #: Period of the per-node JSONL metrics export (0 disables).
    metrics_interval: float = 2.0
    key_space: int = 64

    # -- validation ------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on any inconsistency."""
        if not self.name:
            raise ConfigurationError("genesis name must be non-empty")
        if len(self.addresses) != self.n_replicas:
            raise ConfigurationError(
                f"genesis lists {len(self.addresses)} addresses for "
                f"{self.n_replicas} replicas"
            )
        for pid, address in enumerate(self.addresses):
            if len(address) != 2 or not isinstance(address[0], str):
                raise ConfigurationError(
                    f"address of replica {pid} must be (host, port), "
                    f"got {address!r}"
                )
            port = address[1]
            if not isinstance(port, int) or not 0 < port < 65536:
                raise ConfigurationError(
                    f"replica {pid} has invalid port {port!r}"
                )
        if self.max_clients < 1:
            raise ConfigurationError(
                f"max_clients must be >= 1, got {self.max_clients}"
            )
        if self.metrics_interval < 0:
            raise ConfigurationError(
                f"metrics_interval must be >= 0, got {self.metrics_interval}"
            )
        # The service-config check covers every shared knob (batching,
        # window, checkpoints, timeouts) plus the resilience arithmetic.
        self.service_config().validate()

    # -- derived views ----------------------------------------------------

    def service_config(self) -> ServiceConfig:
        """The :class:`ServiceConfig` a node runs this genesis under.

        Workload-generator knobs (mode, rate, requests) are irrelevant —
        real clients live in other processes — and stay at defaults.
        """
        return ServiceConfig(
            n_replicas=self.n_replicas,
            n_clients=self.max_clients,
            batch_size=self.batch_size,
            batch_delay=self.batch_delay,
            window=self.window,
            checkpoint_interval=self.checkpoint_interval,
            request_timeout=self.request_timeout,
            transfer_retry=self.transfer_retry,
            muteness_timeout=self.muteness_timeout,
            stall_probe=self.stall_probe,
            key_space=self.key_space,
            seed=self.seed,
            f=self.f,
        )

    def genesis_id(self) -> str:
        """Content hash binding handshakes to this exact genesis."""
        payload = canonical_bytes(tuple(sorted(self.to_json().items(), key=repr)))
        return hashlib.sha256(payload).hexdigest()[:16]

    def address_of(self, pid: int) -> tuple[str, int]:
        if not 0 <= pid < self.n_replicas:
            raise ConfigurationError(
                f"pid {pid} outside the replica range 0..{self.n_replicas - 1}"
            )
        host, port = self.addresses[pid]
        return host, port

    # -- the hello handshake domain ---------------------------------------

    def hello_authority(self) -> KeyAuthority:
        """Key authority of the hello domain (replicas *and* clients)."""
        return KeyAuthority(
            self.n_replicas + self.max_clients,
            seed=self.seed * 1_000_003 + HELLO_DOMAIN,
        )

    def _hello_payload(self, src: int, dst: int, role: str) -> bytes:
        return canonical_bytes(("hello", self.genesis_id(), src, dst, role))

    def hello_for(self, src: int, dst: int, role: str) -> Hello:
        """The authenticated first frame ``src`` sends to acceptor ``dst``."""
        mac = self.hello_authority().signer_for(src).sign(
            self._hello_payload(src, dst, role)
        )
        return Hello(cluster=self.genesis_id(), peer=src, role=role, mac=mac)

    def hello_valid(self, hello: Hello, dst: int) -> bool:
        """Full acceptor-side check; malformed hellos are rejections."""
        try:
            if hello.cluster != self.genesis_id():
                return False
            if hello.role not in ROLES:
                return False
            if hello.role == ROLE_REPLICA:
                if not 0 <= hello.peer < self.n_replicas:
                    return False
            elif not (
                self.n_replicas
                <= hello.peer
                < self.n_replicas + self.max_clients
            ):
                return False
            return self.hello_authority().verify(
                hello.peer, self._hello_payload(hello.peer, dst, hello.role), hello.mac
            )
        except Exception:
            return False

    # -- persistence -------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        data = asdict(self)
        data["addresses"] = [list(address) for address in self.addresses]
        return data

    @classmethod
    def from_json(cls, data: Any) -> "Genesis":
        if not isinstance(data, dict):
            raise ConfigurationError("genesis document must be a JSON object")
        known = {field for field in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown genesis keys: {sorted(unknown)}"
            )
        kwargs = dict(data)
        if "addresses" in kwargs:
            try:
                kwargs["addresses"] = tuple(
                    (str(host), int(port)) for host, port in kwargs["addresses"]
                )
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"malformed genesis addresses: {exc}"
                ) from exc
        try:
            genesis = cls(**kwargs)
        except TypeError as exc:
            raise ConfigurationError(f"malformed genesis: {exc}") from exc
        genesis.validate()
        return genesis

    def save(self, path: str | Path) -> Path:
        self.validate()
        target = Path(path)
        target.write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target

    @classmethod
    def load(cls, path: str | Path) -> "Genesis":
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(f"cannot read genesis: {exc}") from exc
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"genesis is not valid JSON: {exc}") from exc
        return cls.from_json(data)

    def with_addresses(
        self, addresses: tuple[tuple[str, int], ...]
    ) -> "Genesis":
        return replace(self, addresses=addresses)
