"""The versioned, length-prefixed wire codec of the net runtime.

The simulator hands Python objects between processes by reference; a real
deployment (docs/NET.md) must serialise them. The codec reuses the exact
tag-length-value vocabulary of :mod:`repro.crypto.encoding` — the scheme
every signature in the system is computed over — and extends it with one
tag the crypto encoding deliberately lacks: ``R``, a *registered type*,
which round-trips the message dataclasses faithfully instead of lossily
(``canonical()`` flattens objects for hashing; the wire must rebuild
them).

Frame layout::

    +--------+---------+----------------------+---------+
    | b"RB"  | version |  payload length (u32)| payload |
    |  2 B   |   1 B   |     big-endian       |   ...   |
    +--------+---------+----------------------+---------+

Two payload versions live behind that header (docs/PERFORMANCE.md):

* **v1** — the original TLV payload: one-letter ASCII tags, u64 lengths,
  integers as decimal strings. Verbose but directly mirrors the
  canonical signing encoding. Kept as the compatibility fallback.
* **v2** — the compact binary payload (the default): single-byte tags,
  zigzag-varint integers, raw IEEE-754 doubles, varint length prefixes,
  count-prefixed containers. Typically 2–3× smaller than v1 on signed
  certificate traffic, and decoded by slicing one shared
  :class:`memoryview` cursor — no per-node buffer copies.

A receiver accepts every version in :data:`SUPPORTED_VERSIONS`
regardless of what it sends, so mixed-version clusters interoperate;
:class:`FrameAssembler` counts decoded frames per version for the
``frames_v1``/``frames_v2`` transport metrics.

Robustness contract: **every** malformed input — truncated, oversized,
wrong magic, wrong version, tampered payload, unknown type, hostile
nesting depth — raises :class:`WireError` (a :class:`~repro.errors.
ReproError`) and nothing else. Transports count these as rejections;
nothing on the wire may crash or hang a node
(``tests/test_net_wire.py`` fuzzes exactly this, for both versions).
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any, Callable

from repro.crypto.encoding import canonical_bytes
from repro.errors import ReproError


class WireError(ReproError):
    """A frame or payload violates the wire format (always a rejection)."""


#: Frame magic; the byte after it selects the payload version.
MAGIC = b"RB"
#: The original TLV payload version (historical name kept for callers).
VERSION = 1
#: The compact binary payload version.
VERSION_BINARY = 2
#: Payload versions this node decodes.
SUPPORTED_VERSIONS = (VERSION, VERSION_BINARY)
#: Payload version used for encoding unless a caller pins one.
DEFAULT_VERSION = VERSION_BINARY
HEADER = struct.Struct(">2sBI")
#: Ceiling on one frame's payload: bounds memory against hostile length
#: prefixes while leaving room for full state-transfer snapshots.
MAX_FRAME = 8 * 1024 * 1024
#: Ceiling on TLV nesting: certificates nest a few levels; a hostile
#: payload must not recurse the decoder into a stack overflow.
MAX_DEPTH = 64
#: Ceiling on the decimal-digit length of one encoded integer.
MAX_INT_DIGITS = 4096
#: Ceiling on one v2 varint's byte length (≈ 4700 decimal digits —
#: the same order of magnitude as MAX_INT_DIGITS bounds for v1).
MAX_VARINT_BYTES = 2048

#: name -> (class, to_fields, from_fields); class -> (name, to_fields).
_BY_NAME: dict[str, tuple[type, Callable[[Any], tuple], Callable[[tuple], Any]]] = {}
_BY_TYPE: dict[type, tuple[str, Callable[[Any], tuple]]] = {}


def register_wire_type(
    cls: type,
    *,
    name: str | None = None,
    to_fields: Callable[[Any], tuple] | None = None,
    from_fields: Callable[[tuple], Any] | None = None,
) -> type:
    """Register ``cls`` for faithful wire round-trips under tag ``R``.

    Dataclasses need no adapters: their declared field order is the wire
    field order and the constructor rebuilds them. Non-dataclasses (or
    classes whose constructor differs from their fields) pass explicit
    ``to_fields`` / ``from_fields``.
    """
    wire_name = name if name is not None else cls.__qualname__
    if to_fields is None:
        if not dataclasses.is_dataclass(cls):
            raise WireError(
                f"{cls.__name__} is not a dataclass; pass to_fields/from_fields"
            )
        field_names = tuple(f.name for f in dataclasses.fields(cls))

        def to_fields(obj: Any, _names: tuple[str, ...] = field_names) -> tuple:
            return tuple(getattr(obj, n) for n in _names)

    if from_fields is None:

        def from_fields(fields: tuple, _cls: type = cls) -> Any:
            return _cls(*fields)

    if wire_name in _BY_NAME and _BY_NAME[wire_name][0] is not cls:
        raise WireError(f"wire name {wire_name!r} registered twice")
    _BY_NAME[wire_name] = (cls, to_fields, from_fields)
    _BY_TYPE[cls] = (wire_name, to_fields)
    return cls


def _tlv(tag: bytes, payload: bytes) -> bytes:
    # Same layout as repro.crypto.encoding._tlv: tag, u64 length, payload.
    return tag + len(payload).to_bytes(8, "big") + payload


def _encode(value: Any, depth: int) -> bytes:
    if depth > MAX_DEPTH:
        raise WireError("payload nesting exceeds the depth ceiling")
    if value is None or isinstance(value, (bool, float, str, bytes)):
        return canonical_bytes(value)
    if isinstance(value, int):
        if len(str(value)) > MAX_INT_DIGITS:
            raise WireError("integer exceeds the digit ceiling")
        return canonical_bytes(value)
    registered = _BY_TYPE.get(type(value))
    if registered is not None:
        wire_name, to_fields = registered
        body = _encode(wire_name, depth + 1) + _encode(
            tuple(to_fields(value)), depth + 1
        )
        return _tlv(b"R", body)
    if isinstance(value, (tuple, list)):
        return _tlv(b"T", b"".join(_encode(item, depth + 1) for item in value))
    if isinstance(value, dict):
        items = sorted(
            (_encode(key, depth + 1), _encode(val, depth + 1))
            for key, val in value.items()
        )
        return _tlv(b"D", b"".join(key + val for key, val in items))
    if isinstance(value, (set, frozenset)):
        return _tlv(
            b"E", b"".join(sorted(_encode(item, depth + 1) for item in value))
        )
    raise WireError(f"type {type(value).__name__} is not wire-encodable")


def _decode(buf: memoryview, pos: int, end: int, depth: int) -> tuple[Any, int]:
    if depth > MAX_DEPTH:
        raise WireError("payload nesting exceeds the depth ceiling")
    if pos + 9 > end:
        raise WireError("truncated TLV header")
    tag = bytes(buf[pos : pos + 1])
    length = int.from_bytes(buf[pos + 1 : pos + 9], "big")
    start = pos + 9
    stop = start + length
    if length > end - start:
        raise WireError("TLV length exceeds the enclosing payload")
    body = buf[start:stop]
    if tag == b"N":
        if length:
            raise WireError("non-empty None")
        return None, stop
    if tag == b"B":
        if length != 1 or bytes(body) not in (b"\x00", b"\x01"):
            raise WireError("malformed bool")
        return bytes(body) == b"\x01", stop
    if tag == b"I":
        if length > MAX_INT_DIGITS:
            raise WireError("integer exceeds the digit ceiling")
        try:
            return int(bytes(body).decode("ascii")), stop
        except (UnicodeDecodeError, ValueError) as exc:
            raise WireError(f"malformed int: {exc}") from exc
    if tag == b"F":
        try:
            return float.fromhex(bytes(body).decode("ascii")), stop
        except (UnicodeDecodeError, ValueError) as exc:
            raise WireError(f"malformed float: {exc}") from exc
    if tag == b"S":
        try:
            return bytes(body).decode("utf-8"), stop
        except UnicodeDecodeError as exc:
            raise WireError(f"malformed str: {exc}") from exc
    if tag == b"Y":
        return bytes(body), stop
    if tag == b"T":
        items = []
        cursor = start
        while cursor < stop:
            item, cursor = _decode(buf, cursor, stop, depth + 1)
            items.append(item)
        return tuple(items), stop
    if tag == b"D":
        mapping: dict[Any, Any] = {}
        cursor = start
        while cursor < stop:
            key, cursor = _decode(buf, cursor, stop, depth + 1)
            value, cursor = _decode(buf, cursor, stop, depth + 1)
            try:
                mapping[key] = value
            except TypeError as exc:
                raise WireError(f"unhashable dict key: {exc}") from exc
        return mapping, stop
    if tag == b"E":
        members = []
        cursor = start
        while cursor < stop:
            member, cursor = _decode(buf, cursor, stop, depth + 1)
            members.append(member)
        try:
            return frozenset(members), stop
        except TypeError as exc:
            raise WireError(f"unhashable set member: {exc}") from exc
    if tag == b"R":
        wire_name, cursor = _decode(buf, start, stop, depth + 1)
        if not isinstance(wire_name, str):
            raise WireError("registered-type name is not a string")
        fields, cursor = _decode(buf, cursor, stop, depth + 1)
        if cursor != stop or not isinstance(fields, tuple):
            raise WireError(f"malformed registered type {wire_name!r}")
        entry = _BY_NAME.get(wire_name)
        if entry is None:
            raise WireError(f"unknown wire type {wire_name!r}")
        cls, _to_fields, from_fields = entry
        try:
            return from_fields(fields), stop
        except WireError:
            raise
        except Exception as exc:
            raise WireError(f"cannot rebuild {wire_name}: {exc}") from exc
    raise WireError(f"unknown TLV tag {tag!r}")


# -- the v2 compact binary payload ------------------------------------------
#
# Single-byte tags; varint(n) is base-128 little-endian with the high bit
# as the continuation flag; zigzag maps signed to unsigned before the
# varint. Containers are count-prefixed (not byte-length-prefixed), so
# the decoder walks a single cursor over one memoryview of the receive
# buffer and copies bytes only at str/bytes leaves.

_T2_NONE = 0x00
_T2_FALSE = 0x01
_T2_TRUE = 0x02
_T2_INT = 0x03
_T2_FLOAT = 0x04
_T2_STR = 0x05
_T2_BYTES = 0x06
_T2_TUPLE = 0x07
_T2_DICT = 0x08
_T2_SET = 0x09
_T2_REG = 0x0A

_F64 = struct.Struct(">d")


def _write_varint(out: bytearray, n: int) -> None:
    while True:
        low = n & 0x7F
        n >>= 7
        if n:
            out.append(low | 0x80)
        else:
            out.append(low)
            return


def _read_varint(buf: memoryview, pos: int, end: int) -> tuple[int, int]:
    result = 0
    shift = 0
    count = 0
    while True:
        if pos >= end:
            raise WireError("truncated varint")
        byte = buf[pos]
        pos += 1
        count += 1
        if count > MAX_VARINT_BYTES:
            raise WireError("varint exceeds the byte ceiling")
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _zigzag(value: int) -> int:
    return value * 2 if value >= 0 else -value * 2 - 1


def _unzigzag(value: int) -> int:
    return value // 2 if value % 2 == 0 else -(value // 2) - 1


def _encode_v2(out: bytearray, value: Any, depth: int) -> None:
    if depth > MAX_DEPTH:
        raise WireError("payload nesting exceeds the depth ceiling")
    if value is None:
        out.append(_T2_NONE)
        return
    if isinstance(value, bool):  # must precede int: bool is an int subclass
        out.append(_T2_TRUE if value else _T2_FALSE)
        return
    if isinstance(value, int):
        if value.bit_length() > 7 * MAX_VARINT_BYTES - 1:
            raise WireError("integer exceeds the varint ceiling")
        out.append(_T2_INT)
        _write_varint(out, _zigzag(value))
        return
    if isinstance(value, float):
        out.append(_T2_FLOAT)
        out += _F64.pack(value)
        return
    if isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(_T2_STR)
        _write_varint(out, len(encoded))
        out += encoded
        return
    if isinstance(value, bytes):
        out.append(_T2_BYTES)
        _write_varint(out, len(value))
        out += value
        return
    registered = _BY_TYPE.get(type(value))
    if registered is not None:
        wire_name, to_fields = registered
        name = wire_name.encode("utf-8")
        out.append(_T2_REG)
        _write_varint(out, len(name))
        out += name
        fields = tuple(to_fields(value))
        _write_varint(out, len(fields))
        for field in fields:
            _encode_v2(out, field, depth + 1)
        return
    if isinstance(value, (tuple, list)):
        out.append(_T2_TUPLE)
        _write_varint(out, len(value))
        for item in value:
            _encode_v2(out, item, depth + 1)
        return
    if isinstance(value, dict):
        # Canonically sorted by encoded key, exactly like v1's D tag.
        items = []
        for key, val in value.items():
            key_out = bytearray()
            _encode_v2(key_out, key, depth + 1)
            val_out = bytearray()
            _encode_v2(val_out, val, depth + 1)
            items.append((bytes(key_out), bytes(val_out)))
        out.append(_T2_DICT)
        _write_varint(out, len(items))
        for key_bytes, val_bytes in sorted(items):
            out += key_bytes
            out += val_bytes
        return
    if isinstance(value, (set, frozenset)):
        members = []
        for item in value:
            item_out = bytearray()
            _encode_v2(item_out, item, depth + 1)
            members.append(bytes(item_out))
        out.append(_T2_SET)
        _write_varint(out, len(members))
        for member in sorted(members):
            out += member
        return
    raise WireError(f"type {type(value).__name__} is not wire-encodable")


def _read_count(buf: memoryview, pos: int, end: int) -> tuple[int, int]:
    """A container/length prefix, sanity-bounded by the remaining bytes."""
    count, pos = _read_varint(buf, pos, end)
    if count > end - pos:
        # Every item/byte needs at least one payload byte, so a count
        # beyond the remainder is a hostile prefix, not a short read.
        raise WireError("declared length exceeds the enclosing payload")
    return count, pos


def _decode_v2(buf: memoryview, pos: int, end: int, depth: int) -> tuple[Any, int]:
    if depth > MAX_DEPTH:
        raise WireError("payload nesting exceeds the depth ceiling")
    if pos >= end:
        raise WireError("truncated payload")
    tag = buf[pos]
    pos += 1
    if tag == _T2_NONE:
        return None, pos
    if tag == _T2_FALSE:
        return False, pos
    if tag == _T2_TRUE:
        return True, pos
    if tag == _T2_INT:
        raw, pos = _read_varint(buf, pos, end)
        return _unzigzag(raw), pos
    if tag == _T2_FLOAT:
        if pos + 8 > end:
            raise WireError("truncated float")
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if tag == _T2_STR:
        length, pos = _read_count(buf, pos, end)
        try:
            return bytes(buf[pos : pos + length]).decode("utf-8"), pos + length
        except UnicodeDecodeError as exc:
            raise WireError(f"malformed str: {exc}") from exc
    if tag == _T2_BYTES:
        length, pos = _read_count(buf, pos, end)
        return bytes(buf[pos : pos + length]), pos + length
    if tag == _T2_TUPLE:
        count, pos = _read_count(buf, pos, end)
        items = []
        for _ in range(count):
            item, pos = _decode_v2(buf, pos, end, depth + 1)
            items.append(item)
        return tuple(items), pos
    if tag == _T2_DICT:
        count, pos = _read_count(buf, pos, end)
        mapping: dict[Any, Any] = {}
        for _ in range(count):
            key, pos = _decode_v2(buf, pos, end, depth + 1)
            value, pos = _decode_v2(buf, pos, end, depth + 1)
            try:
                mapping[key] = value
            except TypeError as exc:
                raise WireError(f"unhashable dict key: {exc}") from exc
        return mapping, pos
    if tag == _T2_SET:
        count, pos = _read_count(buf, pos, end)
        members = []
        for _ in range(count):
            member, pos = _decode_v2(buf, pos, end, depth + 1)
            members.append(member)
        try:
            return frozenset(members), pos
        except TypeError as exc:
            raise WireError(f"unhashable set member: {exc}") from exc
    if tag == _T2_REG:
        length, pos = _read_count(buf, pos, end)
        try:
            wire_name = bytes(buf[pos : pos + length]).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError(f"malformed type name: {exc}") from exc
        pos += length
        entry = _BY_NAME.get(wire_name)
        if entry is None:
            raise WireError(f"unknown wire type {wire_name!r}")
        count, pos = _read_count(buf, pos, end)
        fields = []
        for _ in range(count):
            field, pos = _decode_v2(buf, pos, end, depth + 1)
            fields.append(field)
        _cls, _to_fields, from_fields = entry
        try:
            return from_fields(tuple(fields)), pos
        except WireError:
            raise
        except Exception as exc:
            raise WireError(f"cannot rebuild {wire_name}: {exc}") from exc
    raise WireError(f"unknown v2 tag {tag:#04x}")


def encode_payload(value: Any, version: int = VERSION) -> bytes:
    """Encode one message to payload bytes (no frame header)."""
    if version == VERSION:
        return _encode(value, 0)
    if version == VERSION_BINARY:
        out = bytearray()
        _encode_v2(out, value, 0)
        return bytes(out)
    raise WireError(f"unsupported wire version {version}")


def decode_payload(data: bytes | memoryview, version: int = VERSION) -> Any:
    """Decode one payload; any malformation raises :class:`WireError`."""
    buf = data if isinstance(data, memoryview) else memoryview(data)
    try:
        if version == VERSION:
            value, pos = _decode(buf, 0, len(buf), 0)
        elif version == VERSION_BINARY:
            value, pos = _decode_v2(buf, 0, len(buf), 0)
        else:
            raise WireError(f"unsupported wire version {version}")
    except WireError:
        raise
    except Exception as exc:  # belt and braces: hostile input never crashes
        raise WireError(f"undecodable payload: {exc}") from exc
    if pos != len(buf):
        raise WireError("trailing bytes after payload")
    return value


def encode_frame(value: Any, version: int = DEFAULT_VERSION) -> bytes:
    """Encode one message to a complete wire frame.

    ``version`` selects the payload encoding (default: the compact
    binary v2); any supported receiver decodes either.
    """
    payload = encode_payload(value, version=version)
    if len(payload) > MAX_FRAME:
        raise WireError(
            f"frame payload of {len(payload)} bytes exceeds MAX_FRAME"
        )
    return HEADER.pack(MAGIC, version, len(payload)) + payload


def decode_frame(data: bytes) -> Any:
    """Decode exactly one complete frame (loopback / tests)."""
    assembler = FrameAssembler()
    messages = assembler.feed(data)
    if len(messages) != 1 or assembler.buffered:
        raise WireError(
            f"expected exactly one frame, got {len(messages)} plus "
            f"{assembler.buffered} trailing bytes"
        )
    return messages[0]


class FrameAssembler:
    """Incremental frame parser over a byte stream.

    Feed arbitrary chunks as they arrive; complete frames decode to
    messages, partial frames wait for more bytes. A malformed stream
    raises :class:`WireError` — the caller drops the connection and
    counts a rejection. One assembler per connection: the error leaves
    the buffer unusable by design (resynchronising inside a hostile
    stream is not attempted).
    """

    __slots__ = ("_buffer", "_max_frame", "decoded_by_version")

    def __init__(self, max_frame: int = MAX_FRAME) -> None:
        self._buffer = bytearray()
        self._max_frame = max_frame
        #: version -> frames successfully decoded (transport metrics).
        self.decoded_by_version: dict[int, int] = {}

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def feed(self, data: bytes) -> list[Any]:
        self._buffer += data
        messages: list[Any] = []
        while len(self._buffer) >= HEADER.size:
            magic, version, length = HEADER.unpack_from(self._buffer)
            if magic != MAGIC:
                raise WireError(f"bad frame magic {magic!r}")
            if version not in SUPPORTED_VERSIONS:
                raise WireError(f"unsupported wire version {version}")
            if length > self._max_frame:
                raise WireError(f"oversized frame: {length} bytes declared")
            frame_end = HEADER.size + length
            if len(self._buffer) < frame_end:
                break  # partial frame: wait for more bytes
            # Zero-copy decode: slice a memoryview of the receive buffer
            # instead of copying the payload out. The view must be
            # released before the bytearray can shrink, so decode first,
            # then drop the consumed prefix.
            view = memoryview(self._buffer)
            try:
                message = decode_payload(
                    view[HEADER.size : frame_end], version=version
                )
            finally:
                view.release()
            del self._buffer[:frame_end]
            self.decoded_by_version[version] = (
                self.decoded_by_version.get(version, 0) + 1
            )
            messages.append(message)
        return messages


def _register_stack_types() -> None:
    """Register every message type the deployed service puts on the wire."""
    from repro.core.certificates import (
        Certificate,
        CertificateDigest,
        SignedMessage,
    )
    from repro.crypto.signatures import Signature
    from repro.messages.consensus import Init, VCurrent, VDecide, VNext
    from repro.net.messages import (
        Hello,
        ReadReply,
        ReadRequest,
        StatusReply,
        StatusRequest,
    )
    from repro.replication.kvstore import Command
    from repro.replication.log import SlotEnvelope
    from repro.service.checkpoint import CheckpointCertificate
    from repro.service.messages import (
        Checkpoint,
        ClientReply,
        ClientRequest,
        StateRequest,
        StateResponse,
    )

    for cls in (
        Signature,
        CertificateDigest,
        SignedMessage,
        Command,
        SlotEnvelope,
        Init,
        VCurrent,
        VNext,
        VDecide,
        ClientRequest,
        ClientReply,
        Checkpoint,
        StateRequest,
        StateResponse,
        CheckpointCertificate,
        Hello,
        ReadRequest,
        ReadReply,
        StatusRequest,
        StatusReply,
    ):
        register_wire_type(cls)
    # Certificate is a plain class sorting its entries itself; shipping
    # the entry tuple is enough to rebuild it canonically.
    register_wire_type(
        Certificate,
        to_fields=lambda cert: (cert.entries,),
        from_fields=lambda fields: Certificate(tuple(fields[0])),
    )


_register_stack_types()
