"""Fault-injecting peer transport: the real-socket end of a fault plan.

:class:`FaultyPeerTransport` is a :class:`~repro.net.transport.PeerTransport`
that consults a :class:`~repro.faults.injector.LinkFaultInjector` on
every *outbound* replica-to-replica send — each replica process owns the
plan's decisions for its own outbound links, so loss/duplication/reorder
and pre-signature bit-flips happen on real TCP without any privileged
network machinery. Partition windows sever links the same way; a delayed
copy re-enters :meth:`send` via ``loop.call_later``, overtaking
in-flight traffic exactly like a reordered segment. Muteness and crash
at this fidelity are *process* faults (SIGSTOP / SIGKILL, driven by
:class:`~repro.net.cluster.LocalCluster`), not link faults.

:meth:`inject_reset` is the chaos hook of the reconnect tests: it
tears down an established outbound connection mid-frame (optionally
flushing garbage bytes first), which the peer observes as a connection
reset with a partial frame in its assembler.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Any, Callable

from repro.net.genesis import Genesis
from repro.net.transport import MessageHandler, PeerTransport
from repro.observability.registry import NULL_METRICS

if TYPE_CHECKING:  # the injector lives upstack; avoid an import cycle
    from repro.faults.injector import LinkFaultInjector


class FaultyPeerTransport(PeerTransport):
    """A peer transport executing one fault plan on its outbound links."""

    def __init__(
        self,
        genesis: Genesis,
        pid: int,
        handler: MessageHandler,
        *,
        metrics: Any = NULL_METRICS,
        injector: "LinkFaultInjector | None" = None,
        plan_clock: Callable[[], float] | None = None,
        queue_limit: int | None = None,
    ) -> None:
        kwargs = {} if queue_limit is None else {"queue_limit": queue_limit}
        super().__init__(genesis, pid, handler, metrics=metrics, **kwargs)
        self._injector = injector
        self._plan_clock = plan_clock or (lambda: 0.0)

    def send(self, dst: int, payload: Any) -> None:
        if (
            self._injector is None
            or dst == self._pid
            or dst >= self._genesis.n_replicas
        ):
            super().send(dst, payload)
            return
        deliveries = self._injector.plan_deliveries(
            self._plan_clock(), self._pid, dst, payload
        )
        if deliveries is None:
            super().send(dst, payload)
            return
        loop = asyncio.get_running_loop()
        for copy, delay in deliveries:
            if delay > 0:
                loop.call_later(
                    delay, PeerTransport.send, self, dst, copy
                )
            else:
                super().send(dst, copy)

    # -- chaos hooks (tests) ----------------------------------------------

    def inject_reset(self, dst: int, *, partial: bytes = b"") -> bool:
        """Tear down the established outbound connection to ``dst``.

        ``partial`` bytes are written first (un-drained), so the peer's
        assembler is left holding a truncated or garbage frame when the
        transport layer aborts the connection — the closest userspace
        analogue of an RST mid-frame. Returns ``False`` when no
        connection to ``dst`` is currently established.
        """
        writer = self._peer_writers.get(dst)
        if writer is None or writer.is_closing():
            return False
        if partial:
            try:
                writer.write(partial)
            except (OSError, RuntimeError):
                pass
        writer.transport.abort()
        return True
