"""TCP client of a deployed cluster: writes, quorum reads, status probes.

The client is *outside* the trust boundary of any single replica, so it
never believes one reply (docs/NET.md):

* ``set`` completes once **f+1 distinct replicas** acknowledge the
  commit — at least one of them is correct, so the command is durably
  in the total order;
* ``get`` (the read-only path) completes once **f+1 distinct replicas**
  return the *same* ``(found, value)`` answer from their committed
  state — again at least one correct replica vouches for it, and a
  correct replica only reports committed state;
* ``status`` is an observability probe (no quorum): it reports what
  each replica *claims*, and the orchestrator cross-checks the claims
  against each other (digest convergence, exactly-once counts).

Submission mirrors the simulator's clients: a request goes to one
preferred replica, and silence past ``request_timeout`` resubmits the
same request to the next replica round-robin — replica-side
deduplication by ``(client, req_id)`` makes retries idempotent. Request
ids are drawn from a random base per client *instance*, so a restarted
client process cannot collide with its former self's ids.
"""

from __future__ import annotations

import asyncio
import os
from typing import Any

from repro.errors import ReproError
from repro.net.genesis import Genesis
from repro.net.messages import (
    ROLE_CLIENT,
    ReadReply,
    ReadRequest,
    StatusReply,
    StatusRequest,
)
from repro.net.wire import FrameAssembler, WireError, encode_frame
from repro.replication.kvstore import Command
from repro.service.messages import ClientReply, ClientRequest

READ_CHUNK = 1 << 16


class NetClientError(ReproError):
    """A client operation could not complete (exhausted retries)."""


class _PendingOp:
    """Reply accumulator: distinct-replica counting, optional matching."""

    __slots__ = ("need", "match", "replies", "future")

    def __init__(self, need: int, match: bool) -> None:
        self.need = need
        self.match = match
        self.replies: dict[int, Any] = {}
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()

    def add(self, replica: int, value: Any) -> None:
        if self.future.done():
            return
        self.replies[replica] = value
        if not self.match:
            if len(self.replies) >= self.need:
                self.future.set_result(value)
            return
        groups: dict[str, tuple[int, Any]] = {}
        for candidate in self.replies.values():
            key = repr(candidate)
            count, _ = groups.get(key, (0, candidate))
            groups[key] = (count + 1, candidate)
        for count, candidate in groups.values():
            if count >= self.need:
                self.future.set_result(candidate)
                return


class NetClient:
    """One client identity (pid ``n_replicas + index``) over TCP."""

    def __init__(self, genesis: Genesis, client_index: int = 0) -> None:
        genesis.validate()
        if not 0 <= client_index < genesis.max_clients:
            raise NetClientError(
                f"client index {client_index} outside 0.."
                f"{genesis.max_clients - 1}"
            )
        self.genesis = genesis
        self.pid = genesis.n_replicas + client_index
        self.f = genesis.service_config().params().f
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._readers: dict[int, asyncio.Task] = {}
        self._pending: dict[tuple[str, int], _PendingOp] = {}
        self._req_base = int.from_bytes(os.urandom(3), "big") << 24
        self._req_seq = 0
        self.sets_completed = 0
        self.gets_completed = 0
        self.resubmissions = 0

    # -- connections -------------------------------------------------------

    async def _ensure_connection(self, replica: int) -> asyncio.StreamWriter | None:
        writer = self._writers.get(replica)
        if writer is not None and not writer.is_closing():
            return writer
        self._drop_connection(replica)
        host, port = self.genesis.address_of(replica)
        try:
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                encode_frame(
                    self.genesis.hello_for(self.pid, replica, ROLE_CLIENT)
                )
            )
            await writer.drain()
        except (OSError, ConnectionError):
            return None
        self._writers[replica] = writer
        self._readers[replica] = asyncio.get_running_loop().create_task(
            self._read_loop(replica, reader)
        )
        return writer

    def _drop_connection(self, replica: int) -> None:
        writer = self._writers.pop(replica, None)
        if writer is not None:
            try:
                writer.close()
            except Exception:
                pass
        task = self._readers.pop(replica, None)
        if task is not None and task is not asyncio.current_task():
            task.cancel()

    async def _read_loop(self, replica: int, reader: asyncio.StreamReader) -> None:
        assembler = FrameAssembler()
        try:
            while True:
                data = await reader.read(READ_CHUNK)
                if not data:
                    return
                for message in assembler.feed(data):
                    self._on_message(replica, message)
        except (OSError, ConnectionError, WireError):
            return
        finally:
            if self._readers.get(replica) is asyncio.current_task():
                self._drop_connection(replica)

    async def _send(self, replica: int, payload: Any) -> None:
        writer = await self._ensure_connection(replica)
        if writer is None:
            return
        try:
            writer.write(encode_frame(payload))
            await writer.drain()
        except (OSError, ConnectionError):
            self._drop_connection(replica)

    async def close(self) -> None:
        for replica in list(self._writers):
            self._drop_connection(replica)
        await asyncio.sleep(0)

    # -- reply plumbing ----------------------------------------------------

    def _on_message(self, replica: int, message: Any) -> None:
        if isinstance(message, ClientReply) and message.client == self.pid:
            op = self._pending.get(("reply", message.req_id))
            if op is not None:
                op.add(message.replica, message.slot)
        elif isinstance(message, ReadReply) and message.client == self.pid:
            op = self._pending.get(("read", message.req_id))
            if op is not None:
                op.add(message.replica, (message.found, message.value))
        elif isinstance(message, StatusReply) and message.client == self.pid:
            op = self._pending.get(("status", message.req_id))
            if op is not None:
                op.add(message.replica, message)

    def _next_req_id(self) -> int:
        self._req_seq += 1
        return self._req_base + self._req_seq

    async def _await_quorum(
        self,
        kind: str,
        req_id: int,
        op: _PendingOp,
        submit,
        *,
        attempts: int,
        what: str,
    ) -> Any:
        """Drive submit / wait / resubmit until the op's future resolves."""
        self._pending[(kind, req_id)] = op
        try:
            for attempt in range(attempts):
                if attempt:
                    self.resubmissions += 1
                await submit(attempt)
                try:
                    return await asyncio.wait_for(
                        asyncio.shield(op.future),
                        self.genesis.request_timeout,
                    )
                except asyncio.TimeoutError:
                    continue
            raise NetClientError(
                f"{what} got {len(op.replies)} of {op.need} needed replies "
                f"after {attempts} attempts"
            )
        finally:
            self._pending.pop((kind, req_id), None)

    # -- operations --------------------------------------------------------

    async def set(self, key: str, value: Any, *, attempts: int = 40) -> int:
        """Commit ``set key=value``; returns the slot of the f+1th ack."""
        req_id = self._next_req_id()
        request = ClientRequest(
            client=self.pid, req_id=req_id, command=Command("set", key, value)
        )
        op = _PendingOp(need=self.f + 1, match=False)

        async def submit(attempt: int) -> None:
            # The simulator's redirect-on-silence rule, verbatim.
            target = (self.pid + req_id + attempt) % self.genesis.n_replicas
            await self._send(target, request)

        slot = await self._await_quorum(
            "reply", req_id, op, submit,
            attempts=attempts, what=f"set {key!r}",
        )
        self.sets_completed += 1
        return slot

    async def get(self, key: str, *, attempts: int = 40) -> tuple[bool, Any]:
        """Read ``key`` from committed state: f+1 matching distinct replies."""
        req_id = self._next_req_id()
        request = ReadRequest(client=self.pid, req_id=req_id, key=key)
        op = _PendingOp(need=self.f + 1, match=True)

        async def submit(attempt: int) -> None:
            for replica in range(self.genesis.n_replicas):
                await self._send(replica, request)

        found, value = await self._await_quorum(
            "read", req_id, op, submit,
            attempts=attempts, what=f"get {key!r}",
        )
        self.gets_completed += 1
        return found, value

    async def status(self, *, timeout: float = 1.0) -> dict[int, StatusReply]:
        """Best-effort per-replica status (whoever answers in ``timeout``)."""
        req_id = self._next_req_id()
        op = _PendingOp(need=self.genesis.n_replicas, match=False)
        self._pending[("status", req_id)] = op
        try:
            request = StatusRequest(client=self.pid, req_id=req_id)
            for replica in range(self.genesis.n_replicas):
                await self._send(replica, request)
            try:
                await asyncio.wait_for(asyncio.shield(op.future), timeout)
            except asyncio.TimeoutError:
                pass
            return dict(op.replies)
        finally:
            self._pending.pop(("status", req_id), None)

    async def workload(
        self,
        count: int,
        *,
        concurrency: int = 8,
        key_space: int | None = None,
        tag: str = "w",
    ) -> dict[str, Any]:
        """Issue ``count`` sets with bounded concurrency; return stats."""
        space = key_space or self.genesis.key_space
        loop = asyncio.get_running_loop()
        semaphore = asyncio.Semaphore(concurrency)
        latencies: list[float] = []

        async def one(i: int) -> None:
            async with semaphore:
                started = loop.time()
                await self.set(f"k{i % space}", f"{tag}{self.pid}-{i}")
                latencies.append(loop.time() - started)

        await asyncio.gather(*(one(i) for i in range(count)))
        latencies.sort()
        return {
            "issued": count,
            "completed": len(latencies),
            "resubmissions": self.resubmissions,
            "latency_p50": latencies[len(latencies) // 2] if latencies else 0.0,
            "latency_max": latencies[-1] if latencies else 0.0,
        }
