"""Local cluster orchestration: genesis, spawn, kill/restart, smoke verdict.

This module turns the net runtime into a one-command demonstration that
the simulated stack survives contact with real processes:
:func:`run_cluster_smoke` spawns ``n`` replicas as OS subprocesses over
TCP, commits a workload through a real client, SIGKILLs one replica
mid-run, restarts it with ``--join`` (certified state transfer over
sockets is the only way back), and asserts the end state:

* every replica reports the **same** applied-state digest;
* every replica committed **exactly** the number of commands the client
  completed (exactly-once, no loss, no duplication);
* the restarted replica completed at least one state transfer;
* a quorum ``get`` of a sentinel key returns the value written last.

The quiesce loop uses *nudge writes*: a lagging restarted replica may
hold no evidence that it is behind until new checkpoints circulate, so
the orchestrator keeps committing small writes until certificates
propagate and the laggard's checkpoint-lag / stall-probe transfer pulls
it level. That keeps liveness entirely inside the protocol — the
orchestrator never talks to replicas except as an ordinary client.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any

import repro
from repro.errors import ReproError
from repro.net.client import NetClient
from repro.net.genesis import Genesis


class ClusterError(ReproError):
    """The cluster failed to start, converge, or pass its assertions."""


def free_port() -> int:
    """A port the OS just handed out (racy in principle, fine locally)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def make_genesis(
    n_replicas: int = 4,
    *,
    seed: int = 7,
    name: str = "smoke",
    **overrides: Any,
) -> Genesis:
    """A loopback-interface genesis with freshly allocated ports."""
    addresses = tuple(("127.0.0.1", free_port()) for _ in range(n_replicas))
    genesis = Genesis(
        name=name,
        seed=seed,
        n_replicas=n_replicas,
        addresses=addresses,
        metrics_interval=1.0,
        **overrides,
    )
    genesis.validate()
    return genesis


def _subprocess_env() -> dict[str, str]:
    """Child env with this repo's ``src`` on PYTHONPATH, whatever spawned us."""
    env = dict(os.environ)
    src = str(Path(repro.__file__).parents[1])
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


class LocalCluster:
    """Replica subprocess supervisor bound to one genesis file.

    ``replica_args`` (plus ``spawn``'s ``extra_args``) append extra CLI
    arguments to every replica command line — the fault-plan runner uses
    them to hand each node its plan and time origin. :meth:`stop` /
    :meth:`cont` drive SIGSTOP/SIGCONT, the real-process realisation of
    a *mute* replica: frozen mid-instruction, it keeps its sockets open
    but neither reads, writes nor fires timers.
    """

    def __init__(
        self,
        genesis: Genesis,
        workdir: str | Path,
        *,
        replica_args: tuple[str, ...] = (),
    ) -> None:
        self.genesis = genesis
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.genesis_path = genesis.save(self.workdir / "genesis.json")
        self.metrics_dir = self.workdir / "metrics"
        self.metrics_dir.mkdir(exist_ok=True)
        self.replica_args = tuple(replica_args)
        self._procs: dict[int, subprocess.Popen] = {}
        self._logs: dict[int, Any] = {}
        self._stopped: set[int] = set()

    def spawn(
        self,
        pid: int,
        *,
        join: bool = False,
        extra_args: tuple[str, ...] = (),
    ) -> subprocess.Popen:
        if pid in self._procs and self._procs[pid].poll() is None:
            raise ClusterError(f"replica {pid} is already running")
        log = self._logs.get(pid)
        if log is None:
            log = open(self.workdir / f"node-{pid}.log", "ab")
            self._logs[pid] = log
        command = [
            sys.executable, "-m", "repro", "net", "replica",
            "--genesis", str(self.genesis_path),
            "--pid", str(pid),
            "--metrics-dir", str(self.metrics_dir),
        ]
        if join:
            command.append("--join")
        command.extend(self.replica_args)
        command.extend(extra_args)
        process = subprocess.Popen(
            command, env=_subprocess_env(), stdout=log, stderr=log
        )
        self._procs[pid] = process
        self._stopped.discard(pid)
        return process

    def start_all(self) -> None:
        for pid in range(self.genesis.n_replicas):
            self.spawn(pid)

    def kill(self, pid: int) -> None:
        """SIGKILL: no shutdown path runs, exactly like a crash."""
        process = self._procs.get(pid)
        if process is None or process.poll() is not None:
            raise ClusterError(f"replica {pid} is not running")
        if pid in self._stopped:
            # A SIGSTOPped process ignores nothing — but keep the
            # bookkeeping honest before the kill lands.
            process.send_signal(signal.SIGCONT)
            self._stopped.discard(pid)
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=10)

    def stop(self, pid: int) -> None:
        """SIGSTOP: freeze the replica (the real-process *mute* fault)."""
        process = self._procs.get(pid)
        if process is None or process.poll() is not None:
            raise ClusterError(f"replica {pid} is not running")
        process.send_signal(signal.SIGSTOP)
        self._stopped.add(pid)

    def cont(self, pid: int) -> None:
        """SIGCONT: thaw a replica frozen by :meth:`stop`."""
        process = self._procs.get(pid)
        if process is None or process.poll() is not None:
            raise ClusterError(f"replica {pid} is not running")
        process.send_signal(signal.SIGCONT)
        self._stopped.discard(pid)

    def terminate_all(self, timeout: float = 10.0) -> dict[int, int]:
        """SIGTERM every live replica; returns pid -> exit code.

        Replicas left SIGSTOPped (a run that aborted mid-scenario) are
        SIGCONTed first — a stopped process cannot act on SIGTERM, and
        without the thaw it would outlive the supervisor as an orphan —
        then escalated to SIGKILL like any other laggard.
        """
        codes: dict[int, int] = {}
        for pid, process in self._procs.items():
            if process.poll() is None:
                process.send_signal(signal.SIGCONT)
                process.send_signal(signal.SIGTERM)
        self._stopped.clear()
        deadline = time.monotonic() + timeout
        for pid, process in self._procs.items():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                codes[pid] = process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                codes[pid] = process.wait()
        for log in self._logs.values():
            log.close()
        self._logs.clear()
        return codes


async def wait_cluster_ready(
    client: NetClient, *, timeout: float = 20.0
) -> None:
    """Block until every replica answers a status probe."""
    n = client.genesis.n_replicas
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        replies = await client.status(timeout=1.0)
        if len(replies) == n:
            return
        await asyncio.sleep(0.2)
    raise ClusterError(
        f"cluster not ready within {timeout}s "
        f"(last probe saw {len(replies)}/{n} replicas)"
    )


async def _wait_converged(
    client: NetClient,
    *,
    restarted: int | None,
    timeout: float,
) -> dict[int, Any]:
    """Nudge-and-probe until every replica agrees with every other."""
    n = client.genesis.n_replicas
    deadline = time.monotonic() + timeout
    nudge = 0
    replies: dict[int, Any] = {}
    while time.monotonic() < deadline:
        replies = await client.status(timeout=1.0)
        if len(replies) == n:
            digests = {status.digest for status in replies.values()}
            committed = {status.committed for status in replies.values()}
            transfers_ok = (
                restarted is None
                or replies[restarted].transfers >= 1
            )
            if (
                len(digests) == 1
                and committed == {client.sets_completed}
                and transfers_ok
            ):
                return replies
        # Nudge: new commits force new checkpoints, whose certificates
        # reveal the laggard's gap and trigger its certified transfer.
        await client.set("nudge", f"n{nudge}")
        nudge += 1
        await asyncio.sleep(0.3)
    detail = {
        pid: (status.committed, status.transfers, status.digest[:8])
        for pid, status in sorted(replies.items())
    }
    raise ClusterError(
        f"cluster did not converge within {timeout}s: "
        f"client committed {client.sets_completed}, replicas report {detail}"
    )


async def run_cluster_smoke(
    *,
    replicas: int = 4,
    requests: int = 100,
    kill_pid: int = 2,
    seed: int = 7,
    workdir: str | Path | None = None,
    concurrency: int = 8,
    converge_timeout: float = 60.0,
) -> dict[str, Any]:
    """The `make net-smoke` scenario; returns the verdict record."""
    owned_tmp = None
    if workdir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="repro-net-")
        workdir = owned_tmp.name
    genesis = make_genesis(replicas, seed=seed)
    cluster = LocalCluster(genesis, workdir)
    client = NetClient(genesis, 0)
    phase1 = max(1, (requests * 2) // 5)
    phase2 = max(1, (requests * 2) // 5)
    phase3 = max(1, requests - phase1 - phase2)
    try:
        cluster.start_all()
        await wait_cluster_ready(client, timeout=30.0)

        await client.workload(phase1, concurrency=concurrency, tag="a")
        cluster.kill(kill_pid)
        await client.workload(phase2, concurrency=concurrency, tag="b")
        cluster.spawn(kill_pid, join=True)
        await client.workload(phase3, concurrency=concurrency, tag="c")

        sentinel = f"sentinel-{seed}"
        await client.set("sentinel", sentinel)

        replies = await _wait_converged(
            client, restarted=kill_pid, timeout=converge_timeout
        )

        found, value = await client.get("sentinel")
        if not found or value != sentinel:
            raise ClusterError(
                f"quorum get of sentinel returned {(found, value)!r}, "
                f"expected (True, {sentinel!r})"
            )
        rejections = {
            pid: status.suffix_rejections for pid, status in replies.items()
        }
        verdict = {
            "ok": True,
            "replicas": replicas,
            "killed": kill_pid,
            "committed": client.sets_completed,
            "workload": requests,
            "resubmissions": client.resubmissions,
            "digest": next(iter(replies.values())).digest,
            "transfers": {
                pid: status.transfers for pid, status in sorted(replies.items())
            },
            "suffix_rejections": rejections,
            "workdir": str(workdir),
        }
    finally:
        await client.close()
        exit_codes = cluster.terminate_all()
        if owned_tmp is not None:
            owned_tmp.cleanup()
    verdict["exit_codes"] = exit_codes
    bad = {pid: code for pid, code in exit_codes.items() if code != 0}
    if bad:
        raise ClusterError(f"replicas exited non-zero at shutdown: {bad}")
    return verdict


def print_verdict(verdict: dict[str, Any]) -> None:
    print(json.dumps(verdict, indent=2, sort_keys=True))
