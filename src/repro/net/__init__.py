"""``repro.net`` — the deployed runtime (docs/NET.md).

Runs the unchanged :mod:`repro.service` replica stack as real OS
processes over asyncio TCP: wire codec, authenticated transport,
replica host, quorum client and local-cluster orchestration.
"""

from repro.net.client import NetClient, NetClientError
from repro.net.clock import ManualScheduler, WallScheduler
from repro.net.cluster import (
    ClusterError,
    LocalCluster,
    free_port,
    make_genesis,
    run_cluster_smoke,
    wait_cluster_ready,
)
from repro.net.faulty import FaultyPeerTransport
from repro.net.genesis import HELLO_DOMAIN, Genesis
from repro.net.messages import (
    ROLE_CLIENT,
    ROLE_REPLICA,
    Hello,
    ReadReply,
    ReadRequest,
    StatusReply,
    StatusRequest,
)
from repro.net.node import BoundedTrace, NetNode, serve_replica
from repro.net.transport import (
    LoopbackHub,
    LoopbackTransport,
    PeerTransport,
    TransportError,
)
from repro.net.wire import (
    FrameAssembler,
    WireError,
    decode_frame,
    decode_payload,
    encode_frame,
    encode_payload,
    register_wire_type,
)

__all__ = [
    "NetClient",
    "NetClientError",
    "ManualScheduler",
    "WallScheduler",
    "ClusterError",
    "LocalCluster",
    "free_port",
    "make_genesis",
    "run_cluster_smoke",
    "wait_cluster_ready",
    "FaultyPeerTransport",
    "HELLO_DOMAIN",
    "Genesis",
    "ROLE_CLIENT",
    "ROLE_REPLICA",
    "Hello",
    "ReadReply",
    "ReadRequest",
    "StatusReply",
    "StatusRequest",
    "BoundedTrace",
    "NetNode",
    "serve_replica",
    "LoopbackHub",
    "LoopbackTransport",
    "PeerTransport",
    "TransportError",
    "FrameAssembler",
    "WireError",
    "decode_frame",
    "decode_payload",
    "encode_frame",
    "encode_payload",
    "register_wire_type",
]
