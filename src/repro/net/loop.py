"""Event-loop policy selection for the net runtime (optional uvloop).

The deployed runtime is plain asyncio everywhere; uvloop is an opt-in
accelerator for the socket-bound paths (``repro net replica``'s reader
loops and writer drains), requested with the ``--uvloop`` flag or the
``REPRO_UVLOOP=1`` environment variable. uvloop is **not** a dependency:
when it is not importable the runtime announces the fallback once and
runs on stock asyncio with identical semantics — every test and smoke
passes either way, which is what lets the knob exist without a new
requirement. Measured deltas live in docs/PERFORMANCE.md.
"""

from __future__ import annotations

import os
from typing import Any, Callable

#: Environment values that turn the knob on.
_TRUTHY = {"1", "true", "yes", "on"}

ENV_VAR = "REPRO_UVLOOP"


def uvloop_requested(flag: bool = False) -> bool:
    """Whether this invocation asked for uvloop (flag or environment)."""
    if flag:
        return True
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


def install_event_loop(
    *,
    uvloop_flag: bool = False,
    announce: Callable[[str], Any] | None = None,
) -> str:
    """Install the requested event-loop policy; returns its name.

    Returns ``"uvloop"`` after installing uvloop's policy, or
    ``"asyncio"`` when uvloop was not requested — or was requested but
    is not installed (graceful fallback, announced once via
    ``announce``). Call before :func:`asyncio.run`.
    """
    if not uvloop_requested(uvloop_flag):
        return "asyncio"
    try:
        import uvloop  # type: ignore[import-not-found]
    except ImportError:
        if announce is not None:
            announce(
                "uvloop requested but not installed; "
                "falling back to stock asyncio"
            )
        return "asyncio"
    uvloop.install()
    if announce is not None:
        announce("uvloop event-loop policy installed")
    return "uvloop"
