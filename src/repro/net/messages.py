"""Wire types that exist only in the deployed (net) runtime.

Everything the *protocol* says travels unchanged from the simulator
(:mod:`repro.service.messages`, :mod:`repro.messages.consensus`); this
module adds the envelope-level traffic a real deployment needs on top:

* :class:`Hello` — the authenticated first frame of every connection,
  binding the TCP stream to a process identity within one genesis;
* :class:`ReadRequest` / :class:`ReadReply` — read-only ``get`` traffic
  answered from committed state; the client accepts a value once f+1
  *distinct* replicas agree on it (docs/NET.md);
* :class:`StatusRequest` / :class:`StatusReply` — the observability
  probe the cluster orchestrator uses for readiness, convergence and
  exactly-once checks.

None of these are signed protocol messages: Hello carries its own MAC
in the genesis hello domain, and reads/status are answered from local
committed state, where the f+1 matching-reply rule supplies the
Byzantine protection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Connection roles a Hello may claim.
ROLE_REPLICA = "replica"
ROLE_CLIENT = "client"
ROLES = (ROLE_REPLICA, ROLE_CLIENT)


@dataclass(frozen=True, slots=True)
class Hello:
    """First frame on every connection: who is dialing, with proof.

    ``mac`` is computed in the genesis *hello domain* over
    ``(cluster, peer, dst, role)`` — it authenticates the dialer to one
    specific acceptor within one specific genesis, so a captured Hello
    replays against neither another node nor another cluster.
    """

    cluster: str
    peer: int
    role: str
    mac: bytes


@dataclass(frozen=True, slots=True)
class ReadRequest:
    """Client asking one replica for the committed value under ``key``."""

    client: int
    req_id: int
    key: str


@dataclass(frozen=True, slots=True)
class ReadReply:
    """One replica's answer from its committed store.

    ``found`` distinguishes an absent key from a stored ``None``;
    ``applied`` (the replica's applied-slot frontier) lets clients
    prefer fresh replies when diagnosing divergence.
    """

    replica: int
    client: int
    req_id: int
    key: str
    found: bool
    value: Any
    applied: int


@dataclass(frozen=True, slots=True)
class StatusRequest:
    """Orchestrator/client probe for one replica's service state."""

    client: int
    req_id: int


@dataclass(frozen=True, slots=True)
class StatusReply:
    """Snapshot of one replica's progress counters and state digest."""

    replica: int
    client: int
    req_id: int
    applied: int
    committed: int
    store_applied: int
    digest: str
    stable_count: int
    transfers: int
    suffix_rejections: int
