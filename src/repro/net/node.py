"""The replica host: one OS process running one ``ServiceReplicaProcess``.

The node is deliberately thin — Figure 1's modules, the transformed
consensus and the whole service replica run **unchanged**. The node only
re-plumbs their environment:

* timers go to a :class:`~repro.net.clock.WallScheduler` (asyncio
  ``call_later``) instead of the simulator's event queue;
* ``send`` goes to a transport (TCP mesh or loopback) instead of the
  simulated network;
* two read-only request types that exist only in deployments —
  :class:`~repro.net.messages.ReadRequest` and
  :class:`~repro.net.messages.StatusRequest` — are answered here at the
  node layer from committed state; everything else is delivered to the
  replica verbatim.

Observability: each node owns a private
:class:`~repro.observability.registry.MetricsRegistry` plus a bounded
trace, periodically exported as the standard ``repro.observability/v1``
JSONL artifact (one file per node, rewritten in place — the artifact is
a cumulative snapshot, so `python -m repro report` works on a live
cluster's directory).
"""

from __future__ import annotations

import asyncio
import signal
import time
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.net.clock import WallScheduler
from repro.net.genesis import Genesis
from repro.net.messages import ReadReply, ReadRequest, StatusReply, StatusRequest
from repro.net.transport import PeerTransport
from repro.observability.export import write_run_jsonl
from repro.observability.registry import MODULE_NET, MetricsRegistry
from repro.service.checkpoint import service_digest
from repro.service.replica import ServiceReplicaProcess
from repro.sim.process import ProcessEnv
from repro.sim.rng import SeededRng
from repro.sim.trace import Trace

_MISSING = object()


class BoundedTrace(Trace):
    """A trace that forgets its oldest events past a cap.

    Simulated runs are finite; a deployed node is not, so its trace must
    not grow without bound. The JSONL export of a long-lived node is
    therefore a *recent-events window* plus the (complete) metrics.
    """

    def __init__(self, max_events: int = 4096) -> None:
        super().__init__()
        self._max_events = max_events
        self.dropped = 0

    def record(self, time: float, kind: str, process: int | None = None, **detail: Any):
        event = super().record(time, kind, process=process, **detail)
        overflow = len(self._events) - self._max_events
        if overflow > 0:
            del self._events[:overflow]
            self.dropped += overflow
        return event


class _TransportFabric:
    """The ``network`` surface of :class:`ProcessEnv`, bridged to a node."""

    __slots__ = ("_node",)

    def __init__(self, node: "NetNode") -> None:
        self._node = node

    def send(self, src: int, dst: int, payload: Any) -> None:
        self._node.dispatch_send(dst, payload)


class NetNode:
    """One deployed replica: env plumbing, reads, status, metrics export."""

    def __init__(
        self,
        genesis: Genesis,
        pid: int,
        scheduler: Any,
        *,
        join: bool = False,
        metrics_path: str | Path | None = None,
        engine_factory: Any = None,
        config: Any = None,
    ) -> None:
        genesis.validate()
        if not 0 <= pid < genesis.n_replicas:
            raise ConfigurationError(
                f"pid {pid} outside the replica range 0..{genesis.n_replicas - 1}"
            )
        self.genesis = genesis
        self.pid = pid
        self.scheduler = scheduler
        self._join = join
        self._metrics_path = Path(metrics_path) if metrics_path else None
        self.metrics = MetricsRegistry()
        self.trace = BoundedTrace()
        self.net_metrics = self.metrics.scope(MODULE_NET, pid)
        # A non-default engine factory turns this node Byzantine at the
        # consensus layer (the fault-plan collusion axis, docs/FAULTS.md).
        replica_kwargs = {}
        if engine_factory is not None:
            replica_kwargs["engine_factory"] = engine_factory
        # ``config`` overrides the genesis-derived ServiceConfig (the
        # adversary-zoo runners arm self-heal / adaptive ◇M / a tighter
        # checkpoint cadence); it must agree across the cluster, so the
        # runners derive it from the shared plan, never per-node.
        self.process = ServiceReplicaProcess(
            config if config is not None else genesis.service_config(),
            **replica_kwargs,
        )
        env = ProcessEnv(
            pid=pid,
            n=genesis.n_replicas + genesis.max_clients,
            scheduler=scheduler,
            network=_TransportFabric(self),
            trace=self.trace,
            rng=SeededRng(genesis.seed, f"net-node-{pid}"),
            metrics=self.metrics,
        )
        self.process.bind(env)
        self.transport: Any = None

    # -- lifecycle ---------------------------------------------------------

    def attach_transport(self, transport: Any) -> None:
        self.transport = transport

    def start(self) -> None:
        if self.transport is None:
            raise ConfigurationError("node started without a transport")
        self.process.on_start()
        if self._join:
            self.process.catch_up()
        if self._metrics_path and self.genesis.metrics_interval > 0:
            self.scheduler.schedule_after(
                self.genesis.metrics_interval, "metrics", self._metrics_tick
            )

    # -- the data plane ----------------------------------------------------

    def dispatch_send(self, dst: int, payload: Any) -> None:
        self.net_metrics.inc("messages_out")
        self.transport.send(dst, payload)

    def handle_message(self, src: int, payload: Any) -> None:
        """Transport delivery callback: net-level requests, then the replica."""
        self.net_metrics.inc("messages_in")
        if isinstance(payload, ReadRequest):
            self._on_read(src, payload)
        elif isinstance(payload, StatusRequest):
            self._on_status(src, payload)
        else:
            self.process.deliver(src, payload)

    def _on_read(self, src: int, request: ReadRequest) -> None:
        """Answer from *committed* state only (docs/NET.md: the client
        assembles f+1 matching replies into a trustworthy read)."""
        if self.process.down:
            return
        value = self.process.store.get(request.key, _MISSING)
        found = value is not _MISSING
        self.net_metrics.inc("reads_served")
        self.dispatch_send(
            request.client,
            ReadReply(
                replica=self.pid,
                client=request.client,
                req_id=request.req_id,
                key=request.key,
                found=found,
                value=value if found else None,
                applied=self.process.next_apply,
            ),
        )

    def _on_status(self, src: int, request: StatusRequest) -> None:
        if self.process.down:
            return
        self.net_metrics.inc("status_served")
        self.dispatch_send(request.client, self.status_reply(request))

    def status_reply(self, request: StatusRequest) -> StatusReply:
        process = self.process
        return StatusReply(
            replica=self.pid,
            client=request.client,
            req_id=request.req_id,
            applied=process.next_apply,
            committed=process.committed_commands,
            store_applied=process.store.applied,
            digest=service_digest(process.store, process.executed),
            stable_count=process.stable.count if process.stable else 0,
            transfers=len(process.state_transfers_completed),
            suffix_rejections=process.suffix_rejections,
        )

    # -- observability -----------------------------------------------------

    def _metrics_tick(self) -> None:
        self.export_metrics()
        self.scheduler.schedule_after(
            self.genesis.metrics_interval, "metrics", self._metrics_tick
        )

    def export_metrics(self) -> Path | None:
        """Rewrite this node's JSONL artifact with the current state."""
        if not self._metrics_path:
            return None
        self.net_metrics.inc("metrics_exports")
        meta = {
            "runtime": "net",
            "genesis": self.genesis.genesis_id(),
            "node": self.pid,
            "applied": self.process.next_apply,
            "committed": self.process.committed_commands,
            "trace_dropped": self.trace.dropped,
        }
        write_run_jsonl(self._metrics_path, self.trace, self.metrics, meta)
        return self._metrics_path


async def serve_replica(
    genesis: Genesis,
    pid: int,
    *,
    join: bool = False,
    metrics_dir: str | Path | None = None,
    ready_message: bool = True,
    fault_plan: str | Path | None = None,
    fault_origin: float | None = None,
    attack: str | None = None,
) -> int:
    """Run one replica until SIGTERM/SIGINT; the ``net replica`` command.

    ``fault_plan``/``fault_origin`` load a :class:`repro.faults` plan and
    install a :class:`~repro.net.faulty.FaultyPeerTransport` that injects
    the plan's link faults on this node's *outbound* traffic, with plan
    time measured from the shared wall-clock ``fault_origin`` epoch.
    ``attack`` names a transformed-attack engine, turning this replica
    Byzantine (the collusion axis).
    """
    loop = asyncio.get_running_loop()
    scheduler = WallScheduler(loop)
    metrics_path = (
        Path(metrics_dir) / f"node-{pid}.jsonl" if metrics_dir else None
    )
    engine_factory = None
    if attack is not None:
        from repro.byzantine import transformed_attack

        engine_factory = transformed_attack(pid, attack)[pid]
    plan = origin = None
    config = None
    if fault_plan is not None:
        from repro.faults.plan import FaultPlan

        plan = FaultPlan.load(fault_plan)
        origin = fault_origin if fault_origin is not None else loop.time()
        if plan.has_zoo:
            # Zoo plans re-derive the cluster config from the shared
            # plan (every node computes the same overrides).
            import dataclasses

            from repro.zoo.runtime import zoo_loopback_overrides

            overrides = zoo_loopback_overrides(plan)
            if overrides:
                config = dataclasses.replace(
                    genesis.service_config(), **overrides
                )
    node = NetNode(
        genesis,
        pid,
        scheduler,
        join=join,
        metrics_path=metrics_path,
        engine_factory=engine_factory,
        config=config,
    )
    if plan is not None:
        from repro.faults.injector import LinkFaultInjector
        from repro.net.faulty import FaultyPeerTransport

        injector = LinkFaultInjector(
            plan, registry=node.metrics, local_pid=pid
        )
        transport: PeerTransport = FaultyPeerTransport(
            genesis,
            pid,
            node.handle_message,
            metrics=node.net_metrics,
            injector=injector,
            plan_clock=lambda: time.time() - origin,
        )
        if plan.has_zoo:
            # Families (b)/(d) are *self*-injections: each subprocess
            # corrupts only its own replica, at the plan instant mapped
            # onto the shared wall-clock origin.
            from repro.zoo.runtime import ZooInjections, install_zoo_injections

            install_zoo_injections(
                plan,
                lambda at, label, thunk: scheduler.schedule_after(
                    max(0.0, at - (time.time() - origin)), label, thunk
                ),
                lambda p: node.process if p == pid else None,
                ZooInjections(),
                node.metrics,
                pids=frozenset({pid}),
            )
    else:
        transport = PeerTransport(
            genesis, pid, node.handle_message, metrics=node.net_metrics
        )
    await transport.start()
    node.attach_transport(transport)
    node.start()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    if ready_message:
        host, _ = genesis.address_of(pid)
        print(
            f"repro-net replica {pid} serving {host}:{transport.bound_port} "
            f"genesis {genesis.genesis_id()}",
            flush=True,
        )
    try:
        await stop.wait()
    finally:
        node.export_metrics()
        await transport.stop()
    return 0
