"""Reliable-channel transport: the paper's channels, implemented not assumed.

The paper's system model (Section 2) gives every pair of processes a
reliable FIFO channel. :class:`~repro.sim.network.Network` provides that
only when no :class:`~repro.sim.network.LinkModel` is installed; under
loss, duplication, reordering or partitions the assumption breaks — and
with it every layer above. :class:`ReliableTransport` restores the
assumption on top of the faulty fabric with the classic machinery:

* **per-peer sequence numbers** — every app payload on a ``src -> dst``
  channel is framed as a :class:`DataSegment` carrying the channel's next
  sequence number;
* **cumulative acks** — the receiver answers every data segment with an
  :class:`AckSegment` carrying the highest in-order sequence delivered;
* **retransmission with exponential backoff** — unacked segments are
  resent after a retransmission timeout (RTO) that doubles per silent
  round up to ``max_rto``, and resets once an ack shows progress; after
  ``retry_limit`` consecutive silent rounds the channel is abandoned
  (the peer is crashed or permanently partitioned — retransmitting
  forever would keep the world from quiescing);
* **duplicate suppression + FIFO reassembly** — the receiver delivers
  each sequence number exactly once, in order, buffering out-of-order
  arrivals until the gap fills.

The transport exposes the same ``register``/``send`` surface as the
network, so :class:`~repro.sim.world.World` can slide it between the
process environments and the wire without any protocol module noticing —
exactly the modularity the paper's Figure 1 argues for. A process's
channel to itself never leaves the process, so self-sends bypass framing.

Everything is attributed to the ``transport`` module of the
:class:`~repro.observability.registry.MetricsRegistry`, including
per-link ``retransmit[src->dst]`` / ``ack[src->dst]`` counters that
``repro report`` aggregates into its link-health table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError, NetworkError
from repro.observability.registry import MODULE_TRANSPORT, MetricsRegistry
from repro.sim.events import CancellationToken
from repro.sim.network import DeliverCallback, Network
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Trace


@dataclass(frozen=True, slots=True)
class DataSegment:
    """One framed app payload: ``seq`` is per ``(src, dst)`` channel."""

    seq: int
    payload: Any


@dataclass(frozen=True, slots=True)
class AckSegment:
    """Cumulative ack: every seq ``<= ack`` was delivered in order."""

    ack: int


@dataclass(slots=True)
class _SendChannel:
    """Sender-side state of one ``(src, dst)`` channel."""

    next_seq: int = 0
    #: seq -> payload, awaiting ack.
    unacked: dict[int, Any] = field(default_factory=dict)
    rto: float = 0.0
    #: Consecutive retransmission rounds without an ack showing progress.
    silent_rounds: int = 0
    timer: CancellationToken | None = None
    abandoned: bool = False


@dataclass(slots=True)
class _RecvChannel:
    """Receiver-side state of one ``(src, dst)`` channel."""

    expected: int = 0
    #: Out-of-order segments parked until the gap fills.
    buffer: dict[int, Any] = field(default_factory=dict)


class ReliableTransport:
    """Seq/ack/retransmit layer making a faulty :class:`Network` reliable.

    Args:
        network: the (possibly faulty) fabric to run over.
        scheduler: the world's scheduler (owns the retransmit timers).
        trace: the world's trace (retransmits and abandons are recorded).
        metrics: the world's registry; ``None`` disables instrumentation.
        crashed: ground-truth predicate — a crashed endpoint neither
            acks, delivers, nor retransmits (crash semantics must hold
            below the transport too).
        rto: initial retransmission timeout per channel.
        backoff: RTO multiplier per silent round (> 1).
        max_rto: RTO ceiling, keeping retransmission alive (not ever
            rarer) through long partitions.
        retry_limit: consecutive silent rounds before a channel is
            abandoned.
        retransmit: master switch; ``False`` keeps framing, acking and
            reassembly but never resends — the ablation demonstrating
            that retransmission is the load-bearing part.
    """

    def __init__(
        self,
        network: Network,
        scheduler: Scheduler,
        trace: Trace,
        metrics: MetricsRegistry | None = None,
        crashed: Callable[[int], bool] | None = None,
        rto: float = 4.0,
        backoff: float = 2.0,
        max_rto: float = 30.0,
        retry_limit: int = 20,
        retransmit: bool = True,
    ) -> None:
        if rto <= 0 or backoff <= 1.0 or max_rto < rto or retry_limit < 1:
            raise ConfigurationError(
                "transport needs rto > 0, backoff > 1, max_rto >= rto and "
                f"retry_limit >= 1; got rto={rto!r}, backoff={backoff!r}, "
                f"max_rto={max_rto!r}, retry_limit={retry_limit!r}"
            )
        self._network = network
        self._scheduler = scheduler
        self._trace = trace
        self._metrics = metrics
        self._crashed = crashed or (lambda pid: False)
        self._base_rto = rto
        self._backoff = backoff
        self._max_rto = max_rto
        self._retry_limit = retry_limit
        self._retransmit = retransmit
        self._upper: dict[int, DeliverCallback] = {}
        self._send_channels: dict[tuple[int, int], _SendChannel] = {}
        self._recv_channels: dict[tuple[int, int], _RecvChannel] = {}
        self._retransmissions = 0
        self._duplicates_suppressed = 0
        self._channels_abandoned = 0

    # -- counters (tests and oracles read these) -----------------------------

    @property
    def retransmissions(self) -> int:
        return self._retransmissions

    @property
    def duplicates_suppressed(self) -> int:
        return self._duplicates_suppressed

    @property
    def channels_abandoned(self) -> int:
        return self._channels_abandoned

    @property
    def retransmit_enabled(self) -> bool:
        return self._retransmit

    # -- network-compatible surface ------------------------------------------

    @property
    def process_ids(self) -> list[int]:
        return sorted(self._upper)

    def register(self, process_id: int, deliver: DeliverCallback) -> None:
        """Attach a process above the transport (and below, on the wire)."""
        if process_id in self._upper:
            raise NetworkError(f"process {process_id} registered twice")
        self._upper[process_id] = deliver
        self._network.register(
            process_id,
            lambda src, segment, dst=process_id: self._on_wire(dst, src, segment),
        )

    def send(self, src: int, dst: int, payload: Any) -> None:
        """Frame and transmit ``payload``; it will be delivered exactly once,
        in order, as long as the channel is not abandoned."""
        if src == dst:
            # The channel to oneself never touches the wire's fault model
            # (the network never faults it either); skip framing entirely.
            self._network.send(src, dst, payload)
            return
        channel = self._send_channel(src, dst)
        seq = channel.next_seq
        channel.next_seq += 1
        channel.unacked[seq] = payload
        if self._metrics is not None:
            self._metrics.inc(MODULE_TRANSPORT, "data_sent", pid=src)
        self._network.send(src, dst, DataSegment(seq=seq, payload=payload))
        if self._retransmit and channel.timer is None:
            self._arm(src, dst, channel)

    # -- sender side ----------------------------------------------------------

    def _send_channel(self, src: int, dst: int) -> _SendChannel:
        channel = self._send_channels.get((src, dst))
        if channel is None:
            channel = _SendChannel(rto=self._base_rto)
            self._send_channels[(src, dst)] = channel
        return channel

    def _arm(self, src: int, dst: int, channel: _SendChannel) -> None:
        channel.timer = self._scheduler.schedule_after(
            channel.rto,
            "retransmit",
            lambda: self._on_rto(src, dst, channel),
        )

    def _disarm(self, channel: _SendChannel) -> None:
        if channel.timer is not None:
            channel.timer.cancel()
            channel.timer = None

    def _on_rto(self, src: int, dst: int, channel: _SendChannel) -> None:
        channel.timer = None
        if not channel.unacked or channel.abandoned or self._crashed(src):
            return
        channel.silent_rounds += 1
        if channel.silent_rounds > self._retry_limit:
            self._abandon(src, dst, channel)
            return
        outstanding = sorted(channel.unacked)
        for seq in outstanding:
            self._retransmissions += 1
            if self._metrics is not None:
                self._metrics.inc(MODULE_TRANSPORT, "retransmissions", pid=src)
                self._metrics.inc(MODULE_TRANSPORT, f"retransmit[{src}->{dst}]")
            self._network.send(
                src, dst, DataSegment(seq=seq, payload=channel.unacked[seq])
            )
        self._trace.record(
            self._scheduler.now,
            "transport-retransmit",
            process=src,
            dst=dst,
            segments=len(outstanding),
            rto=channel.rto,
        )
        channel.rto = min(channel.rto * self._backoff, self._max_rto)
        self._arm(src, dst, channel)

    def _abandon(self, src: int, dst: int, channel: _SendChannel) -> None:
        channel.abandoned = True
        channel.unacked.clear()
        self._channels_abandoned += 1
        if self._metrics is not None:
            self._metrics.inc(MODULE_TRANSPORT, "channels_abandoned", pid=src)
        self._trace.record(
            self._scheduler.now,
            "transport-abandon",
            process=src,
            dst=dst,
            after_rounds=channel.silent_rounds - 1,
        )

    def _on_ack(self, src: int, dst: int, segment: AckSegment) -> None:
        """``dst`` (the original sender) received ``segment`` from ``src``."""
        channel = self._send_channels.get((dst, src))
        if channel is None:
            return
        if self._metrics is not None:
            self._metrics.inc(MODULE_TRANSPORT, "acks_received", pid=dst)
            self._metrics.inc(MODULE_TRANSPORT, f"ack[{dst}->{src}]")
        before = len(channel.unacked)
        for seq in [s for s in channel.unacked if s <= segment.ack]:
            del channel.unacked[seq]
        if len(channel.unacked) < before:
            # Progress: the peer is reachable again, restart patience.
            channel.silent_rounds = 0
            channel.rto = self._base_rto
        self._disarm(channel)
        if channel.unacked and self._retransmit and not channel.abandoned:
            self._arm(dst, src, channel)

    # -- receiver side --------------------------------------------------------

    def _on_wire(self, dst: int, src: int, segment: Any) -> None:
        if self._crashed(dst):
            return
        if isinstance(segment, AckSegment):
            self._on_ack(src, dst, segment)
            return
        if not isinstance(segment, DataSegment):
            # Unframed traffic (self-channel payloads) passes straight up.
            self._upper[dst](src, segment)
            return
        channel = self._recv_channels.setdefault((src, dst), _RecvChannel())
        if segment.seq < channel.expected or segment.seq in channel.buffer:
            self._duplicates_suppressed += 1
            if self._metrics is not None:
                self._metrics.inc(
                    MODULE_TRANSPORT, "duplicates_suppressed", pid=dst
                )
        else:
            channel.buffer[segment.seq] = segment.payload
            if segment.seq > channel.expected and self._metrics is not None:
                self._metrics.inc(
                    MODULE_TRANSPORT, "out_of_order_buffered", pid=dst
                )
            while channel.expected in channel.buffer:
                payload = channel.buffer.pop(channel.expected)
                channel.expected += 1
                if self._metrics is not None:
                    self._metrics.inc(
                        MODULE_TRANSPORT, "delivered_in_order", pid=dst
                    )
                self._upper[dst](src, payload)
        # Ack (cumulatively) even for duplicates: the ack that would have
        # silenced the sender may itself have been lost.
        if self._metrics is not None:
            self._metrics.inc(MODULE_TRANSPORT, "acks_sent", pid=dst)
        self._network.send(dst, src, AckSegment(ack=channel.expected - 1))
