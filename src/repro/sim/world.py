"""World: composition root of a simulated asynchronous system.

A :class:`World` wires a set of :class:`~repro.sim.process.Process`
instances to one scheduler, one network and one trace, starts them, and
runs the event loop. It also owns substrate-level fault scheduling for the
*crash* model (arbitrary-fault behaviour is implemented by Byzantine
process subclasses in :mod:`repro.byzantine`, not by the world).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.observability.registry import MetricsRegistry
from repro.sim.network import DelayModel, LinkModel, Network, TamperHook
from repro.sim.process import Process, ProcessEnv
from repro.sim.scheduler import RunResult, Scheduler
from repro.sim.trace import Trace
from repro.sim.transport import ReliableTransport

#: Accepted values of ``World(transport=...)``.
TRANSPORTS = ("none", "reliable", "no-retransmit")


class World:
    """A closed system of ``n`` processes over a reliable FIFO network.

    With a faulty :class:`LinkModel` installed, the channels are only
    reliable again if ``transport="reliable"`` slides a
    :class:`ReliableTransport` between the processes and the wire;
    ``transport="no-retransmit"`` is the ablation that frames and acks
    but never resends, and ``"none"`` exposes the raw fabric.
    """

    def __init__(
        self,
        processes: Sequence[Process],
        seed: int = 0,
        delay_model: DelayModel | None = None,
        fifo: bool = True,
        link_model: LinkModel | None = None,
        transport: str = "none",
        transport_rto: float = 4.0,
        transport_retry_limit: int = 20,
        tamper: TamperHook | None = None,
    ) -> None:
        if not processes:
            raise ConfigurationError("a world needs at least one process")
        if transport not in TRANSPORTS:
            raise ConfigurationError(
                f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
            )
        self.scheduler = Scheduler(seed=seed)
        self.trace = Trace()
        self.metrics = MetricsRegistry()
        self.scheduler.metrics = self.metrics
        self.network = Network(
            self.scheduler,
            self.trace,
            delay_model=delay_model,
            fifo=fifo,
            metrics=self.metrics,
            link_model=link_model,
            tamper=tamper,
        )
        self.transport: ReliableTransport | None = None
        fabric: Network | ReliableTransport = self.network
        if transport != "none":
            self.transport = ReliableTransport(
                self.network,
                self.scheduler,
                self.trace,
                metrics=self.metrics,
                crashed=self.is_crashed,
                rto=transport_rto,
                retry_limit=transport_retry_limit,
                retransmit=(transport != "no-retransmit"),
            )
            fabric = self.transport
        self.processes: list[Process] = list(processes)
        self._envs: list[ProcessEnv] = []
        n = len(self.processes)
        for pid, process in enumerate(self.processes):
            env = ProcessEnv(
                pid=pid,
                n=n,
                scheduler=self.scheduler,
                network=fabric,
                trace=self.trace,
                rng=self.scheduler.rng.fork(f"process-{pid}"),
                metrics=self.metrics,
            )
            process.bind(env)
            self._envs.append(env)
            fabric.register(pid, process.deliver)
        self._started = False

    @property
    def n(self) -> int:
        return len(self.processes)

    @property
    def now(self) -> float:
        return self.scheduler.now

    # -- crash-model faults --------------------------------------------------

    def crash_at(self, pid: int, time: float) -> None:
        """Schedule a crash (permanent halt) of ``pid`` at virtual ``time``."""
        self._check_pid(pid)
        self.scheduler.schedule_at(
            time, "crash", lambda: self._envs[pid].mark_crashed()
        )

    def crash_now(self, pid: int) -> None:
        """Crash ``pid`` immediately."""
        self._check_pid(pid)
        self._envs[pid].mark_crashed()

    def is_crashed(self, pid: int) -> bool:
        self._check_pid(pid)
        return self._envs[pid].crashed

    # -- execution ------------------------------------------------------------

    def start(self) -> None:
        """Invoke every process's ``on_start`` hook (at time 0)."""
        if self._started:
            raise ConfigurationError("world started twice")
        self._started = True
        for process in self.processes:
            self.scheduler.schedule_at(
                self.scheduler.now, "start", process.on_start
            )

    def run(
        self,
        max_events: int | None = 1_000_000,
        max_time: float | None = None,
    ) -> RunResult:
        """Start (if needed) and run the system to quiescence or a budget."""
        if not self._started:
            self.start()
        return self.scheduler.run(max_events=max_events, max_time=max_time)

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < self.n:
            raise ConfigurationError(f"unknown process id {pid}")
