"""Discrete-event simulation substrate: an asynchronous message-passing
system with reliable FIFO channels, virtual time and deterministic seeds.

This package implements the system model of Section 2 of the paper —
``n`` processes, every pair connected by a reliable FIFO channel, no
assumption on relative speeds or transfer delays — as a reproducible
simulator.
"""

from repro.sim.clock import VirtualClock
from repro.sim.events import CancellationToken, Event, EventQueue
from repro.sim.network import (
    DelayModel,
    ExponentialDelay,
    FixedDelay,
    LinkModel,
    Network,
    Partition,
    TargetedSlowdown,
    UniformDelay,
)
from repro.sim.process import Process, ProcessEnv
from repro.sim.rng import SeededRng
from repro.sim.scheduler import RunResult, Scheduler
from repro.sim.trace import Trace, TraceEvent
from repro.sim.transport import AckSegment, DataSegment, ReliableTransport
from repro.sim.world import TRANSPORTS, World

__all__ = [
    "AckSegment",
    "CancellationToken",
    "DataSegment",
    "DelayModel",
    "Event",
    "EventQueue",
    "ExponentialDelay",
    "FixedDelay",
    "LinkModel",
    "Network",
    "Partition",
    "Process",
    "ProcessEnv",
    "ReliableTransport",
    "RunResult",
    "Scheduler",
    "SeededRng",
    "TRANSPORTS",
    "TargetedSlowdown",
    "Trace",
    "TraceEvent",
    "UniformDelay",
    "VirtualClock",
    "World",
]
