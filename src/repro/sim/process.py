"""Process abstraction for the simulator.

A :class:`Process` is a deterministic reactive object driven entirely by
three callbacks — :meth:`Process.on_start`, :meth:`Process.on_message` and
:meth:`Process.on_timer` — exactly the shape of a round-based protocol in
the paper: local steps happen only in reaction to message receipts and
timer expirations.

The paper's broadcast ``send m to Π`` includes the sender itself; our
:meth:`Process.broadcast` does the same (a process has a FIFO channel to
itself like to anyone else).
"""

from __future__ import annotations

from typing import Any

from repro.errors import ProcessError
from repro.observability.registry import (
    MODULE_PROCESS,
    MetricsRegistry,
    ModuleMetrics,
    NULL_METRICS,
)
from repro.sim.events import CancellationToken
from repro.sim.network import Network
from repro.sim.rng import SeededRng
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Trace


class ProcessEnv:
    """Everything a process may touch: its window onto the simulated world.

    The environment also implements the *crash* fault at the substrate
    level: once :meth:`mark_crashed` is called, the process neither sends
    nor receives anything, matching the halt semantics of the crash model.
    """

    def __init__(
        self,
        pid: int,
        n: int,
        scheduler: Scheduler,
        network: Network,  # or any fabric with the same register/send surface
        trace: Trace,
        rng: SeededRng,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.pid = pid
        self.n = n
        self.scheduler = scheduler
        self.network = network
        self.trace = trace
        self.rng = rng
        #: The world's metrics registry; a no-op stand-in when the env is
        #: constructed outside a world (unit tests), so module code can
        #: instrument unconditionally.
        self.metrics: MetricsRegistry | Any = (
            metrics if metrics is not None else NULL_METRICS
        )
        self._own_metrics: ModuleMetrics | Any = self.metrics.scope(
            MODULE_PROCESS, pid
        )
        self.crashed = False
        self.crash_time: float | None = None
        self._timers: dict[str, CancellationToken] = {}

    @property
    def now(self) -> float:
        return self.scheduler.now

    def mark_crashed(self) -> None:
        """Halt the process permanently (crash-model fault)."""
        if not self.crashed:
            self.crashed = True
            self.crash_time = self.now
            self._own_metrics.inc("crashes")
            self.trace.record(self.now, "crash", process=self.pid)

    def send(self, dst: int, payload: Any) -> None:
        if self.crashed:
            return
        self.network.send(self.pid, dst, payload)

    def set_timer(self, owner: "Process", name: str, delay: float) -> None:
        """(Re)arm the named timer; a previous pending instance is cancelled."""
        self.cancel_timer(name)
        token = self.scheduler.schedule_after(
            delay, "timer", lambda: self._fire_timer(owner, name)
        )
        self._own_metrics.inc("timers_set")
        self._timers[name] = token

    def cancel_timer(self, name: str) -> None:
        token = self._timers.pop(name, None)
        if token is not None:
            token.cancel()

    def _fire_timer(self, owner: "Process", name: str) -> None:
        self._timers.pop(name, None)
        if self.crashed:
            return
        self._own_metrics.inc("timers_fired")
        owner.on_timer(name)


class Process:
    """Base class for all simulated processes.

    Subclasses implement the protocol logic in the three ``on_*`` hooks and
    use the ``send``/``broadcast``/``set_timer`` helpers. A process must be
    bound to an environment (by :class:`~repro.sim.world.World`) before it
    runs.
    """

    def __init__(self) -> None:
        self._env: ProcessEnv | None = None

    # -- wiring ---------------------------------------------------------

    def bind(self, env: ProcessEnv) -> None:
        if self._env is not None:
            raise ProcessError(f"process {env.pid} bound twice")
        self._env = env

    @property
    def env(self) -> ProcessEnv:
        if self._env is None:
            raise ProcessError("process used before bind()")
        return self._env

    @property
    def pid(self) -> int:
        return self.env.pid

    @property
    def n(self) -> int:
        return self.env.n

    @property
    def now(self) -> float:
        return self.env.now

    @property
    def crashed(self) -> bool:
        return self._env is not None and self._env.crashed

    # -- actions ----------------------------------------------------------

    def send(self, dst: int, payload: Any) -> None:
        """Send ``payload`` to process ``dst`` over the FIFO network."""
        self.env.send(dst, payload)

    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` to every process, the sender included."""
        for dst in range(self.n):
            self.send(dst, payload)

    def set_timer(self, name: str, delay: float) -> None:
        """(Re)arm a named local timer firing after virtual ``delay``."""
        self.env.set_timer(self, name, delay)

    def cancel_timer(self, name: str) -> None:
        self.env.cancel_timer(name)

    def record(self, kind: str, **detail: Any) -> None:
        """Append a process-attributed event to the run trace."""
        self.env.trace.record(self.now, kind, process=self.pid, **detail)

    # -- hooks (overridden by protocols) ------------------------------------

    def on_start(self) -> None:
        """Called once when the world starts, before any delivery."""

    def on_message(self, src: int, payload: Any) -> None:
        """Called for every message delivered to this process."""

    def on_timer(self, name: str) -> None:
        """Called when a timer armed with :meth:`set_timer` fires."""

    # -- delivery dispatch (called by the world) -----------------------------

    def deliver(self, src: int, payload: Any) -> None:
        if self.crashed:
            return
        self.on_message(src, payload)
