"""Virtual time for the discrete-event simulator.

The simulator has no relation to wall-clock time: the paper's system model
is asynchronous (no bound on process speed or message delay), so all the
clock provides is a total order on events. Time is a non-negative float
that only the scheduler may advance, and never backwards.
"""

from __future__ import annotations

from repro.errors import ClockError


class VirtualClock:
    """A monotonically non-decreasing virtual clock.

    The scheduler advances the clock to the timestamp of each event it
    dispatches. Components read ``clock.now`` but must never set it.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises :class:`~repro.errors.ClockError` if ``timestamp`` lies in
        the past; equal timestamps are permitted (simultaneous events are
        ordered by their insertion sequence, see ``EventQueue``).
        """
        if timestamp < self._now:
            raise ClockError(
                f"cannot move virtual time backwards: {self._now} -> {timestamp}"
            )
        self._now = float(timestamp)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now})"
