"""Events and the event queue of the discrete-event simulator.

An :class:`Event` is a timestamped thunk. The :class:`EventQueue` is a
binary heap ordered by ``(time, sequence)`` so that simultaneous events are
dispatched in insertion order — this makes every run fully deterministic
for a fixed seed, which is what lets the experiment harness replay runs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SchedulerError

EventCallback = Callable[[], None]


@dataclass(frozen=True, slots=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: virtual time at which the callback fires.
        seq: global insertion sequence number; ties on ``time`` are broken
            by ``seq`` so the queue is a stable priority queue.
        kind: free-form label used by traces and debugging (``"deliver"``,
            ``"timer"``, ...).
        callback: zero-argument callable executed when the event fires.
        cancelled: cooperative cancellation flag (see :meth:`EventQueue.cancel`).
        meta: optional structured tag identifying what the event *is*
            (e.g. ``("deliver", src, dst)`` for a network delivery) so
            external drivers — the model checker above all — can
            enumerate and select pending events without inspecting
            opaque callbacks.
    """

    time: float
    seq: int
    kind: str
    callback: EventCallback = field(compare=False)
    cancelled: "CancellationToken" = field(compare=False)
    meta: Any = field(compare=False, default=None)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class CancellationToken:
    """Mutable flag shared between an event and whoever may cancel it."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """Stable min-heap of :class:`Event` objects keyed by ``(time, seq)``."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(
        self,
        time: float,
        kind: str,
        callback: EventCallback,
        meta: Any = None,
    ) -> CancellationToken:
        """Schedule ``callback`` at virtual ``time``; returns a cancel token."""
        if time < 0.0:
            raise SchedulerError(f"cannot schedule event at negative time {time!r}")
        token = CancellationToken()
        event = Event(
            time=time,
            seq=next(self._counter),
            kind=kind,
            callback=callback,
            cancelled=token,
            meta=meta,
        )
        heapq.heappush(self._heap, event)
        return token

    def live_events(self) -> list[Event]:
        """Every pending non-cancelled event in dispatch order.

        A read-only snapshot for external drivers (the model checker);
        the queue itself is untouched.
        """
        return sorted(e for e in self._heap if not e.cancelled.cancelled)

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises :class:`~repro.errors.SchedulerError` when empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled.cancelled:
                return event
        raise SchedulerError("pop() on an empty event queue")

    def peek_time(self) -> float | None:
        """Timestamp of the earliest pending event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled.cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def is_empty(self) -> bool:
        return self.peek_time() is None
