"""The discrete-event scheduler.

The scheduler is the single authority over virtual time: it pops the
earliest event, advances the clock to its timestamp, and runs its callback.
Runs end in one of four ways, reported by :class:`RunResult`:

* ``quiescent`` — no pending events remain (the system reached a fixpoint),
* ``max_events`` — the event budget was exhausted (used as a liveness
  watchdog in experiments: a correct run should quiesce well before it),
* ``max_time`` — virtual time passed the configured horizon,
* ``stopped`` — a callback requested early termination via :meth:`Scheduler.stop`.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Any

from repro.errors import SchedulerError
from repro.observability.registry import MODULE_SCHEDULER, MetricsRegistry
from repro.sim.clock import VirtualClock
from repro.sim.events import CancellationToken, Event, EventCallback, EventQueue
from repro.sim.rng import SeededRng


@dataclass(frozen=True, slots=True)
class RunResult:
    """Outcome of a :meth:`Scheduler.run` call."""

    reason: str
    events_dispatched: int
    end_time: float

    def quiescent(self) -> bool:
        return self.reason == "quiescent"


class Scheduler:
    """Owns the clock, the event queue and the master random stream."""

    def __init__(self, seed: int = 0) -> None:
        self.clock = VirtualClock()
        self.rng = SeededRng(seed)
        self._queue = EventQueue()
        self._stopped = False
        self._dispatched = 0
        #: Observability sink; the owning world rebinds this to its registry.
        self.metrics: MetricsRegistry | None = None

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def events_dispatched(self) -> int:
        return self._dispatched

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    # -- scheduling ---------------------------------------------------------

    def schedule_at(
        self, time: float, kind: str, callback: EventCallback, meta: Any = None
    ) -> CancellationToken:
        """Schedule ``callback`` at absolute virtual ``time`` (>= now)."""
        if time < self.clock.now:
            raise SchedulerError(
                f"cannot schedule event in the past: now={self.clock.now}, at={time}"
            )
        return self._queue.push(time, kind, callback, meta=meta)

    def schedule_after(
        self, delay: float, kind: str, callback: EventCallback, meta: Any = None
    ) -> CancellationToken:
        """Schedule ``callback`` after a non-negative virtual ``delay``."""
        if delay < 0.0:
            raise SchedulerError(f"negative delay {delay!r}")
        return self._queue.push(self.clock.now + delay, kind, callback, meta=meta)

    def stop(self) -> None:
        """Request that the current :meth:`run` loop stop after this event."""
        self._stopped = True

    # -- controlled dispatch (the model checker's step function) -------------

    def pending(self) -> list[Event]:
        """Snapshot of every live pending event in ``(time, seq)`` order."""
        return self._queue.live_events()

    def dispatch_event(self, event: Event) -> None:
        """Dispatch one chosen pending event out of queue order.

        This is the step function of the ``repro.mc`` explorer: the
        driver picks *which* enabled event fires next instead of letting
        virtual time decide, which is exactly the asynchronous
        adversary's scheduling power. The clock is clamped forward only
        (dispatching an event whose timestamp is older than ``now``
        leaves the clock in place — its causal moment already passed on
        this interleaving), and the event is cancelled in the queue so a
        later :meth:`run` never fires it twice.
        """
        if event.cancelled.cancelled:
            raise SchedulerError("dispatch_event() on a cancelled event")
        event.cancelled.cancel()
        if event.time > self.clock.now:
            self.clock.advance_to(event.time)
        if self.metrics is not None:
            self.metrics.inc(MODULE_SCHEDULER, f"events_{event.kind}")
        event.callback()
        self._dispatched += 1

    # -- execution ----------------------------------------------------------

    def run(
        self,
        max_events: int | None = None,
        max_time: float | None = None,
    ) -> RunResult:
        """Dispatch events until quiescence, a budget, or :meth:`stop`."""
        self._stopped = False
        dispatched_this_run = 0
        while True:
            if self._stopped:
                return self._result("stopped", dispatched_this_run)
            if max_events is not None and dispatched_this_run >= max_events:
                return self._result("max_events", dispatched_this_run)
            next_time = self._queue.peek_time()
            if next_time is None:
                return self._result("quiescent", dispatched_this_run)
            if max_time is not None and next_time > max_time:
                self.clock.advance_to(max_time)
                return self._result("max_time", dispatched_this_run)
            if self.metrics is not None:
                # Event-loop depth *before* the pop: how much work is queued
                # at the moment this event runs.
                self.metrics.gauge_max(
                    MODULE_SCHEDULER, "queue_depth_max", len(self._queue)
                )
            event = self._queue.pop()
            self.clock.advance_to(event.time)
            if self.metrics is not None:
                self.metrics.inc(MODULE_SCHEDULER, f"events_{event.kind}")
            event.callback()
            self._dispatched += 1
            dispatched_this_run += 1

    def _result(self, reason: str, dispatched: int) -> RunResult:
        return RunResult(
            reason=reason,
            events_dispatched=dispatched,
            end_time=self.clock.now,
        )
