"""Deterministic random-number streams for simulation components.

Every source of nondeterminism in a run (message delays, adversary choices,
failure-detector noise) draws from its own named substream derived from the
run's master seed. Two runs with the same seed therefore produce identical
traces, and adding a new consumer of randomness does not perturb the
streams of existing consumers.
"""

from __future__ import annotations

import hashlib
import random


class SeededRng:
    """A named, forkable random stream.

    ``fork(name)`` derives a child stream whose seed is a cryptographic
    hash of the parent seed and the child name, so sibling streams are
    statistically independent and stable across code changes elsewhere.
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self._seed = int(seed)
        self._name = name
        self._random = random.Random(self._derive(seed, name))

    @staticmethod
    def _derive(seed: int, name: str) -> int:
        digest = hashlib.sha256(f"{seed}/{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def name(self) -> str:
        return self._name

    def fork(self, name: str) -> "SeededRng":
        """Derive an independent child stream labelled ``name``."""
        return SeededRng(self._seed, f"{self._name}/{name}")

    # -- drawing primitives -------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def choice(self, seq):
        return self._random.choice(seq)

    def sample(self, population, k: int):
        return self._random.sample(population, k)

    def shuffle(self, seq) -> None:
        self._random.shuffle(seq)

    def chance(self, probability: float) -> bool:
        """Bernoulli draw: ``True`` with the given probability."""
        return self._random.random() < probability

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeededRng(seed={self._seed}, name={self._name!r})"
