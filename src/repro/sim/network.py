"""Point-to-point network: reliable FIFO by default, faulty on request.

The default configuration implements exactly the channel assumptions of
the paper's model (Section 2): every pair of processes is connected by a
*reliable* channel (no loss, no duplication, no corruption in transit)
that is *FIFO*, with no bound on transfer delays. Delay distributions are
pluggable so the adversary can delay messages arbitrarily (but finitely)
— the standard way to model asynchrony in a discrete-event simulator.

A :class:`LinkModel` turns the substrate into the network a production
deployment actually faces: per-link message loss, duplication, burst
reordering and scripted (healing) :class:`Partition` windows, all drawn
from the run's seeded randomness so faulty runs replay exactly. The
paper's channel assumptions are then *restored* one layer up by
:mod:`repro.sim.transport`, whose seq/ack/retransmit machinery is what
lets the five Figure-1 modules run unmodified above a lossy fabric (see
``docs/NETWORK.md``).

Corruption and *process* omission remain process faults in this paper and
live in :mod:`repro.byzantine`; what lives here is strictly what a wire
can do to a frame in transit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Protocol

from repro.errors import ConfigurationError, NetworkError
from repro.observability.registry import (
    MODULE_NETWORK,
    MetricsRegistry,
)
from repro.sim.rng import SeededRng
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Trace

DeliverCallback = Callable[[int, Any], None]

#: Message-tampering hook (the fault-plan injector, docs/FAULTS.md).
#: Called as ``tamper(now, src, dst, payload)`` for every ``src != dst``
#: send. ``None`` means "no opinion" (the normal link handling runs); an
#: empty iterable destroys the message (a counted ``fault`` drop); a list
#: of ``(payload, extra_delay)`` pairs schedules each copy, where a
#: positive ``extra_delay`` escapes the FIFO clamp exactly like a burst
#: reordering.
TamperHook = Callable[[float, int, int, Any], "list[tuple[Any, float]] | None"]

# Minimal spacing inserted between two deliveries on the same channel so
# FIFO order is preserved even when a sampled delay would reorder them.
_FIFO_EPSILON = 1e-9


class DelayModel(Protocol):
    """Strategy drawing the transfer delay of one message."""

    def sample(self, rng: SeededRng, src: int, dst: int) -> float:
        """Return a finite, non-negative delay for a ``src -> dst`` message."""
        ...


class FixedDelay:
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise NetworkError(f"negative delay {delay!r}")
        self.delay = delay

    def sample(self, rng: SeededRng, src: int, dst: int) -> float:
        return self.delay


class UniformDelay:
    """Delays drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if not 0 <= low <= high:
            raise NetworkError(f"invalid delay range [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: SeededRng, src: int, dst: int) -> float:
        return rng.uniform(self.low, self.high)


class ExponentialDelay:
    """Heavy-ish tailed delays: ``base + Exp(mean)`` capped at ``cap``.

    The cap keeps every delay finite, as the asynchronous model requires
    (messages are eventually delivered).
    """

    def __init__(self, mean: float = 1.0, base: float = 0.1, cap: float = 50.0) -> None:
        if mean <= 0 or base < 0 or cap <= base:
            raise NetworkError("invalid exponential delay parameters")
        self.mean = mean
        self.base = base
        self.cap = cap

    def sample(self, rng: SeededRng, src: int, dst: int) -> float:
        return min(self.base + rng.expovariate(1.0 / self.mean), self.cap)


class ScriptedDelay:
    """Payload-aware delays: the adversarial scheduler of experiment E14.

    Rules are ``(matcher, delay)`` pairs evaluated in order; the first
    matcher returning True fixes the message's delay, otherwise the
    default applies. Matchers receive ``(src, dst, payload)``, so the
    adversary can, e.g., rush a NEXT past the CURRENT that preceded it on
    the same channel — which is only deliverable on a non-FIFO network.
    """

    def __init__(
        self,
        rules: list[tuple["ScriptMatcher", float]],
        default: float = 1.0,
    ) -> None:
        self.rules = list(rules)
        self.default = default

    def sample(self, rng: SeededRng, src: int, dst: int) -> float:
        return self.default

    def sample_for(
        self, rng: SeededRng, src: int, dst: int, payload: Any
    ) -> float:
        for matcher, delay in self.rules:
            if matcher(src, dst, payload):
                return delay
        return self.default


ScriptMatcher = Callable[[int, int, Any], bool]


class TargetedSlowdown:
    """Adversarial asynchrony: traffic touching ``slow`` processes is dilated.

    Used by experiments to provoke wrongful suspicions of correct
    processes (the failure-detector mistakes the paper allows).
    """

    def __init__(
        self,
        inner: DelayModel,
        slow: frozenset[int] | set[int],
        factor: float = 10.0,
    ) -> None:
        if factor < 1.0:
            raise NetworkError(f"slowdown factor must be >= 1, got {factor!r}")
        self.inner = inner
        self.slow = frozenset(slow)
        self.factor = factor

    def sample(self, rng: SeededRng, src: int, dst: int) -> float:
        delay = self.inner.sample(rng, src, dst)
        if src in self.slow or dst in self.slow:
            return delay * self.factor
        return delay


@dataclass(frozen=True, slots=True)
class Partition:
    """A scripted network partition that later heals.

    During ``[start, heal)`` every message whose endpoints sit in
    *different* groups is severed (dropped on the wire); at ``heal`` the
    cut disappears. Pids absent from every group are unaffected — list a
    pid in some group to make it partitionable. Groups must be disjoint.
    """

    start: float
    heal: float
    groups: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if self.start < 0 or self.heal <= self.start:
            raise ConfigurationError(
                f"partition window [{self.start}, {self.heal}) is not a "
                "non-empty forward window"
            )
        if len(self.groups) < 2:
            raise ConfigurationError("a partition needs at least two groups")
        seen: set[int] = set()
        for group in self.groups:
            if not group:
                raise ConfigurationError("empty partition group")
            overlap = seen & set(group)
            if overlap:
                raise ConfigurationError(
                    f"pids {sorted(overlap)} appear in two partition groups"
                )
            seen |= set(group)

    def severs(self, now: float, src: int, dst: int) -> bool:
        """Is the ``src -> dst`` link cut at virtual time ``now``?"""
        if not self.start <= now < self.heal:
            return False
        side_src = side_dst = None
        for index, group in enumerate(self.groups):
            if src in group:
                side_src = index
            if dst in group:
                side_dst = index
        return side_src is not None and side_dst is not None and side_src != side_dst


class LinkModel:
    """Composable per-link fault model: loss, duplication, reordering, cuts.

    Probabilities are per message; all sampling happens on the network's
    dedicated ``links`` substream, so two runs with the same seed lose,
    duplicate and reorder exactly the same messages. A process's channel
    to itself is internal and never faulted.

    Args:
        loss: probability a message silently vanishes in transit.
        duplication: probability the wire delivers a second copy.
        reorder: probability a message escapes the FIFO clamp and is
            additionally delayed by up to ``reorder_spread`` (a burst
            reordering: later traffic on the channel may overtake it).
        reorder_spread: maximum extra delay of a reordered message.
        partitions: scripted :class:`Partition` windows (may overlap).
    """

    def __init__(
        self,
        loss: float = 0.0,
        duplication: float = 0.0,
        reorder: float = 0.0,
        reorder_spread: float = 5.0,
        partitions: tuple[Partition, ...] | list[Partition] = (),
    ) -> None:
        for name, probability in (
            ("loss", loss), ("duplication", duplication), ("reorder", reorder)
        ):
            if not 0.0 <= probability < 1.0:
                raise ConfigurationError(
                    f"link {name} probability must be in [0, 1), got {probability!r}"
                )
        if reorder_spread <= 0:
            raise ConfigurationError(
                f"reorder_spread must be positive, got {reorder_spread!r}"
            )
        self.loss = loss
        self.duplication = duplication
        self.reorder = reorder
        self.reorder_spread = reorder_spread
        self.partitions = tuple(partitions)

    @property
    def faultless(self) -> bool:
        return (
            not self.loss
            and not self.duplication
            and not self.reorder
            and not self.partitions
        )

    def severed(self, now: float, src: int, dst: int) -> bool:
        return any(p.severs(now, src, dst) for p in self.partitions)


class Network:
    """Point-to-point network over a :class:`~repro.sim.scheduler.Scheduler`.

    Processes are registered with a delivery callback; :meth:`send`
    schedules a delivery event whose timestamp respects per-channel FIFO
    order regardless of the sampled delays. An optional :class:`LinkModel`
    makes individual links lossy, duplicating, reordering or partitioned;
    every drop, duplicate and partition transition is traced and counted
    so nothing the wire does is invisible to the oracles.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        trace: Trace,
        delay_model: DelayModel | None = None,
        fifo: bool = True,
        metrics: MetricsRegistry | None = None,
        link_model: LinkModel | None = None,
        tamper: TamperHook | None = None,
    ) -> None:
        self._scheduler = scheduler
        self._trace = trace
        self._metrics = metrics
        self._tamper = tamper
        self._delay_model: DelayModel = delay_model or UniformDelay()
        self._rng = scheduler.rng.fork("network")
        self._link_rng = scheduler.rng.fork("links")
        self._link_model = link_model
        self._inboxes: dict[int, DeliverCallback] = {}
        self._last_delivery: dict[tuple[int, int], float] = {}
        self._messages_sent = 0
        self._messages_delivered = 0
        self._messages_dropped = 0
        self._messages_duplicated = 0
        # FIFO is the paper's channel assumption; ``fifo=False`` exists
        # only so experiment E14 can demonstrate the assumption is
        # load-bearing (agreement breaks without it).
        self._fifo = fifo
        if link_model is not None:
            self._schedule_partition_transitions(link_model)

    def _schedule_partition_transitions(self, link_model: LinkModel) -> None:
        """Trace every partition cut and heal as a first-class event."""
        for index, partition in enumerate(link_model.partitions):
            for kind, time in (
                ("partition-start", partition.start),
                ("partition-heal", partition.heal),
            ):
                self._scheduler.schedule_at(
                    time,
                    "partition",
                    lambda k=kind, i=index, p=partition: self._partition_transition(
                        k, i, p
                    ),
                )

    def _partition_transition(self, kind: str, index: int, partition: Partition) -> None:
        self._trace.record(
            self._scheduler.now,
            kind,
            partition=index,
            groups=[list(group) for group in partition.groups],
        )
        if self._metrics is not None:
            self._metrics.inc(MODULE_NETWORK, "partition_transitions")

    @property
    def messages_sent(self) -> int:
        return self._messages_sent

    @property
    def messages_delivered(self) -> int:
        """First-copy deliveries only — duplicate copies are counted apart."""
        return self._messages_delivered

    @property
    def messages_dropped(self) -> int:
        """Messages the link model destroyed in transit (loss + partition)."""
        return self._messages_dropped

    @property
    def messages_duplicated(self) -> int:
        """Extra copies the link model delivered beyond the first."""
        return self._messages_duplicated

    @property
    def link_model(self) -> LinkModel | None:
        return self._link_model

    @property
    def process_ids(self) -> list[int]:
        return sorted(self._inboxes)

    def register(self, process_id: int, deliver: DeliverCallback) -> None:
        """Attach a process's delivery callback to the network."""
        if process_id in self._inboxes:
            raise NetworkError(f"process {process_id} registered twice")
        self._inboxes[process_id] = deliver

    def send(self, src: int, dst: int, payload: Any) -> None:
        """Transmit ``payload`` from ``src`` to ``dst`` (may be ``src`` itself).

        The message is delivered after a finite delay drawn from the delay
        model, never before any earlier message on the same channel.
        """
        if dst not in self._inboxes:
            raise NetworkError(f"send to unknown process {dst}")
        if src not in self._inboxes:
            raise NetworkError(f"send from unknown process {src}")
        now = self._scheduler.now
        self._messages_sent += 1
        if self._metrics is not None:
            self._metrics.inc(MODULE_NETWORK, "messages_sent", pid=src)
        if self._tamper is not None and src != dst:
            deliveries = self._tamper(now, src, dst, payload)
            if deliveries is not None:
                deliveries = list(deliveries)
                if not deliveries:
                    self._drop(now, src, dst, payload, "fault")
                    return
                if len(deliveries) > 1:
                    self._messages_duplicated += len(deliveries) - 1
                    if self._metrics is not None:
                        self._metrics.inc(
                            MODULE_NETWORK,
                            "messages_duplicated",
                            len(deliveries) - 1,
                            pid=src,
                        )
                for index, (copy, extra_delay) in enumerate(deliveries):
                    self._schedule_copy(
                        now,
                        src,
                        dst,
                        copy,
                        duplicate=index > 0,
                        extra_delay=extra_delay,
                    )
                return
        links = self._link_model
        if links is not None and src != dst:
            if links.severed(now, src, dst):
                self._drop(now, src, dst, payload, "partition")
                return
            if links.loss and self._link_rng.chance(links.loss):
                self._drop(now, src, dst, payload, "loss")
                return
        deliver_at = self._schedule_copy(now, src, dst, payload, duplicate=False)
        if (
            links is not None
            and src != dst
            and links.duplication
            and self._link_rng.chance(links.duplication)
        ):
            self._messages_duplicated += 1
            if self._metrics is not None:
                self._metrics.inc(MODULE_NETWORK, "messages_duplicated", pid=src)
                self._metrics.inc(MODULE_NETWORK, f"dup[{src}->{dst}]")
            self._schedule_copy(now, src, dst, payload, duplicate=True)
        if self._metrics is not None:
            # Scheduled transfer delay: FIFO back-pressure included, so the
            # histogram reflects what the receiver actually experiences.
            self._metrics.observe(
                MODULE_NETWORK, "delivery_latency", deliver_at - now, pid=dst
            )
            self._metrics.gauge_max(
                MODULE_NETWORK,
                "in_flight_max",
                self._messages_sent - self._messages_delivered
                - self._messages_dropped,
            )

    def _drop(self, now: float, src: int, dst: int, payload: Any, reason: str) -> None:
        """The wire destroyed the message: count and trace, never deliver."""
        self._messages_dropped += 1
        if self._metrics is not None:
            self._metrics.inc(MODULE_NETWORK, "messages_dropped", pid=src)
            self._metrics.inc(MODULE_NETWORK, f"drop[{src}->{dst}]")
        self._trace.record(
            now, "link-drop", process=src, dst=dst, payload=payload, reason=reason
        )

    def _schedule_copy(
        self,
        now: float,
        src: int,
        dst: int,
        payload: Any,
        duplicate: bool,
        extra_delay: float = 0.0,
    ) -> float:
        """Sample a delay and schedule one delivery; returns the timestamp."""
        sample_for = getattr(self._delay_model, "sample_for", None)
        if sample_for is not None:
            delay = sample_for(self._rng, src, dst, payload)
        else:
            delay = self._delay_model.sample(self._rng, src, dst)
        if delay < 0:
            raise NetworkError(f"delay model produced negative delay {delay!r}")
        links = self._link_model
        reordered = (
            links is not None
            and src != dst
            and links.reorder
            and self._link_rng.chance(links.reorder)
        )
        channel = (src, dst)
        if extra_delay > 0:
            # A tamper-hook delay escapes the FIFO clamp (and does not
            # tighten it) exactly like a burst reordering, so later
            # traffic on the channel may overtake the delayed copy.
            deliver_at = now + delay + extra_delay
            if self._metrics is not None:
                self._metrics.inc(MODULE_NETWORK, "messages_reordered", pid=src)
        elif reordered:
            # A burst reordering: the copy escapes the FIFO clamp (and does
            # not tighten it), so later traffic on the channel may overtake.
            deliver_at = now + delay + self._link_rng.uniform(
                0.0, links.reorder_spread
            )
            if self._metrics is not None:
                self._metrics.inc(MODULE_NETWORK, "messages_reordered", pid=src)
        elif self._fifo:
            earliest = self._last_delivery.get(channel, 0.0) + _FIFO_EPSILON
            deliver_at = max(now + delay, earliest)
            self._last_delivery[channel] = deliver_at
        else:
            deliver_at = now + delay
        self._trace.record(
            now,
            "send",
            process=src,
            dst=dst,
            payload=payload,
            deliver_at=deliver_at,
            **({"duplicate": True} if duplicate else {}),
        )
        self._scheduler.schedule_at(
            deliver_at,
            "deliver",
            lambda: self._deliver(src, dst, payload, duplicate),
            meta=("deliver", src, dst, payload),
        )
        return deliver_at

    def _deliver(
        self, src: int, dst: int, payload: Any, duplicate: bool = False
    ) -> None:
        if duplicate:
            if self._metrics is not None:
                self._metrics.inc(
                    MODULE_NETWORK, "duplicates_delivered", pid=dst
                )
        else:
            self._messages_delivered += 1
            if self._metrics is not None:
                self._metrics.inc(MODULE_NETWORK, "messages_delivered", pid=dst)
        self._trace.record(
            self._scheduler.now,
            "deliver",
            process=dst,
            src=src,
            payload=payload,
            **({"duplicate": True} if duplicate else {}),
        )
        self._inboxes[dst](src, payload)
