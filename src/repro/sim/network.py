"""Reliable FIFO point-to-point network.

This implements exactly the channel assumptions of the paper's model
(Section 2): every pair of processes is connected by a *reliable* channel
(no loss, no duplication, no corruption in transit) that is *FIFO*, with
no bound on transfer delays. Delay distributions are pluggable so the
adversary can delay messages arbitrarily (but finitely) — the standard way
to model asynchrony in a discrete-event simulator.

Corruption, duplication and omission are *process* faults in this paper,
not channel faults, so they live in :mod:`repro.byzantine`, never here.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol

from repro.errors import NetworkError
from repro.observability.registry import (
    MODULE_NETWORK,
    MetricsRegistry,
)
from repro.sim.rng import SeededRng
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Trace

DeliverCallback = Callable[[int, Any], None]

# Minimal spacing inserted between two deliveries on the same channel so
# FIFO order is preserved even when a sampled delay would reorder them.
_FIFO_EPSILON = 1e-9


class DelayModel(Protocol):
    """Strategy drawing the transfer delay of one message."""

    def sample(self, rng: SeededRng, src: int, dst: int) -> float:
        """Return a finite, non-negative delay for a ``src -> dst`` message."""
        ...


class FixedDelay:
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise NetworkError(f"negative delay {delay!r}")
        self.delay = delay

    def sample(self, rng: SeededRng, src: int, dst: int) -> float:
        return self.delay


class UniformDelay:
    """Delays drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if not 0 <= low <= high:
            raise NetworkError(f"invalid delay range [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: SeededRng, src: int, dst: int) -> float:
        return rng.uniform(self.low, self.high)


class ExponentialDelay:
    """Heavy-ish tailed delays: ``base + Exp(mean)`` capped at ``cap``.

    The cap keeps every delay finite, as the asynchronous model requires
    (messages are eventually delivered).
    """

    def __init__(self, mean: float = 1.0, base: float = 0.1, cap: float = 50.0) -> None:
        if mean <= 0 or base < 0 or cap <= base:
            raise NetworkError("invalid exponential delay parameters")
        self.mean = mean
        self.base = base
        self.cap = cap

    def sample(self, rng: SeededRng, src: int, dst: int) -> float:
        return min(self.base + rng.expovariate(1.0 / self.mean), self.cap)


class ScriptedDelay:
    """Payload-aware delays: the adversarial scheduler of experiment E14.

    Rules are ``(matcher, delay)`` pairs evaluated in order; the first
    matcher returning True fixes the message's delay, otherwise the
    default applies. Matchers receive ``(src, dst, payload)``, so the
    adversary can, e.g., rush a NEXT past the CURRENT that preceded it on
    the same channel — which is only deliverable on a non-FIFO network.
    """

    def __init__(
        self,
        rules: list[tuple["ScriptMatcher", float]],
        default: float = 1.0,
    ) -> None:
        self.rules = list(rules)
        self.default = default

    def sample(self, rng: SeededRng, src: int, dst: int) -> float:
        return self.default

    def sample_for(
        self, rng: SeededRng, src: int, dst: int, payload: Any
    ) -> float:
        for matcher, delay in self.rules:
            if matcher(src, dst, payload):
                return delay
        return self.default


ScriptMatcher = Callable[[int, int, Any], bool]


class TargetedSlowdown:
    """Adversarial asynchrony: traffic touching ``slow`` processes is dilated.

    Used by experiments to provoke wrongful suspicions of correct
    processes (the failure-detector mistakes the paper allows).
    """

    def __init__(
        self,
        inner: DelayModel,
        slow: frozenset[int] | set[int],
        factor: float = 10.0,
    ) -> None:
        if factor < 1.0:
            raise NetworkError(f"slowdown factor must be >= 1, got {factor!r}")
        self.inner = inner
        self.slow = frozenset(slow)
        self.factor = factor

    def sample(self, rng: SeededRng, src: int, dst: int) -> float:
        delay = self.inner.sample(rng, src, dst)
        if src in self.slow or dst in self.slow:
            return delay * self.factor
        return delay


class Network:
    """Reliable FIFO network over a :class:`~repro.sim.scheduler.Scheduler`.

    Processes are registered with a delivery callback; :meth:`send`
    schedules a delivery event whose timestamp respects per-channel FIFO
    order regardless of the sampled delays.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        trace: Trace,
        delay_model: DelayModel | None = None,
        fifo: bool = True,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._scheduler = scheduler
        self._trace = trace
        self._metrics = metrics
        self._delay_model: DelayModel = delay_model or UniformDelay()
        self._rng = scheduler.rng.fork("network")
        self._inboxes: dict[int, DeliverCallback] = {}
        self._last_delivery: dict[tuple[int, int], float] = {}
        self._messages_sent = 0
        self._messages_delivered = 0
        # FIFO is the paper's channel assumption; ``fifo=False`` exists
        # only so experiment E14 can demonstrate the assumption is
        # load-bearing (agreement breaks without it).
        self._fifo = fifo

    @property
    def messages_sent(self) -> int:
        return self._messages_sent

    @property
    def messages_delivered(self) -> int:
        return self._messages_delivered

    @property
    def process_ids(self) -> list[int]:
        return sorted(self._inboxes)

    def register(self, process_id: int, deliver: DeliverCallback) -> None:
        """Attach a process's delivery callback to the network."""
        if process_id in self._inboxes:
            raise NetworkError(f"process {process_id} registered twice")
        self._inboxes[process_id] = deliver

    def send(self, src: int, dst: int, payload: Any) -> None:
        """Transmit ``payload`` from ``src`` to ``dst`` (may be ``src`` itself).

        The message is delivered after a finite delay drawn from the delay
        model, never before any earlier message on the same channel.
        """
        if dst not in self._inboxes:
            raise NetworkError(f"send to unknown process {dst}")
        if src not in self._inboxes:
            raise NetworkError(f"send from unknown process {src}")
        now = self._scheduler.now
        sample_for = getattr(self._delay_model, "sample_for", None)
        if sample_for is not None:
            delay = sample_for(self._rng, src, dst, payload)
        else:
            delay = self._delay_model.sample(self._rng, src, dst)
        if delay < 0:
            raise NetworkError(f"delay model produced negative delay {delay!r}")
        channel = (src, dst)
        if self._fifo:
            earliest = self._last_delivery.get(channel, 0.0) + _FIFO_EPSILON
            deliver_at = max(now + delay, earliest)
            self._last_delivery[channel] = deliver_at
        else:
            deliver_at = now + delay
        self._messages_sent += 1
        if self._metrics is not None:
            self._metrics.inc(MODULE_NETWORK, "messages_sent", pid=src)
            # Scheduled transfer delay: FIFO back-pressure included, so the
            # histogram reflects what the receiver actually experiences.
            self._metrics.observe(
                MODULE_NETWORK, "delivery_latency", deliver_at - now, pid=dst
            )
            self._metrics.gauge_max(
                MODULE_NETWORK,
                "in_flight_max",
                self._messages_sent - self._messages_delivered,
            )
        self._trace.record(
            now,
            "send",
            process=src,
            dst=dst,
            payload=payload,
            deliver_at=deliver_at,
        )
        self._scheduler.schedule_at(
            deliver_at,
            "deliver",
            lambda: self._deliver(src, dst, payload),
        )

    def _deliver(self, src: int, dst: int, payload: Any) -> None:
        self._messages_delivered += 1
        if self._metrics is not None:
            self._metrics.inc(MODULE_NETWORK, "messages_delivered", pid=dst)
        self._trace.record(
            self._scheduler.now, "deliver", process=dst, src=src, payload=payload
        )
        self._inboxes[dst](src, payload)
