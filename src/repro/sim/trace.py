"""Run traces.

Every observable step of a simulation — sends, deliveries, decisions,
suspicions, fault declarations, crashes — is appended to a :class:`Trace`.
The property checkers in :mod:`repro.analysis.properties` and the metrics
in :mod:`repro.analysis.metrics` work entirely off this record, so a trace
is a complete, replayable account of a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One observable step of a run.

    Attributes:
        time: virtual time of the step.
        kind: event category (``send``, ``deliver``, ``decide``, ``crash``,
            ``suspect``, ``declare_faulty``, ``discard``, ...).
        process: id of the process the event belongs to, or ``None`` for
            system-level events.
        detail: free-form payload describing the step.
    """

    time: float
    kind: str
    process: int | None
    detail: dict[str, Any] = field(default_factory=dict)


class Trace:
    """Append-only sequence of :class:`TraceEvent` with query helpers."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def record(
        self,
        time: float,
        kind: str,
        process: int | None = None,
        **detail: Any,
    ) -> TraceEvent:
        """Append and return a new event."""
        event = TraceEvent(time=time, kind=kind, process=process, detail=detail)
        self._events.append(event)
        return event

    # -- queries ------------------------------------------------------------

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All events with the given ``kind``, in order."""
        return [e for e in self._events if e.kind == kind]

    def by_process(self, process: int) -> list[TraceEvent]:
        """All events attributed to ``process``, in order."""
        return [e for e in self._events if e.process == process]

    def where(self, predicate: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        """All events satisfying ``predicate``, in order."""
        return [e for e in self._events if predicate(e)]

    def first(self, kind: str, process: int | None = None) -> TraceEvent | None:
        """Earliest event of ``kind`` (optionally for one process)."""
        for event in self._events:
            if event.kind == kind and (process is None or event.process == process):
                return event
        return None

    def last(self, kind: str, process: int | None = None) -> TraceEvent | None:
        """Latest event of ``kind`` (optionally for one process)."""
        for event in reversed(self._events):
            if event.kind == kind and (process is None or event.process == process):
                return event
        return None

    def count(self, kind: str) -> int:
        """Number of events of the given kind."""
        return sum(1 for e in self._events if e.kind == kind)
