"""Small-scope model checking of the real module stack.

``repro.mc`` drives the *actual* transformed protocol — the same
processes, monitors, certification layer and scheduler the tests and
campaigns run — through **all** interleavings of a bounded world
(n = 4, F = 1, bounded rounds, a bounded adversary-action alphabet),
checking the paper's safety properties in every reachable state and
emitting any counterexample as a replayable, shrinkable campaign
scenario. See docs/MODELCHECK.md for the scope bounds and the worked
counterexample example.
"""

from repro.mc.adversary import ScriptedAdversary
from repro.mc.config import ADVERSARY_ACTIONS, STRATEGIES, McConfig
from repro.mc.digest import canonical_state, payload_id, state_digest
from repro.mc.explorer import (
    ARTIFACT_FORMAT,
    ExplorationResult,
    Explorer,
    Violation,
    counterexample_scenario,
    load_artifact,
)
from repro.mc.mutations import MUTATIONS, apply_mutation
from repro.mc.predicates import check_state
from repro.mc.stepper import Label, Stepper

__all__ = [
    "ADVERSARY_ACTIONS",
    "ARTIFACT_FORMAT",
    "ExplorationResult",
    "Explorer",
    "Label",
    "MUTATIONS",
    "McConfig",
    "STRATEGIES",
    "ScriptedAdversary",
    "Stepper",
    "Violation",
    "apply_mutation",
    "canonical_state",
    "check_state",
    "counterexample_scenario",
    "load_artifact",
    "payload_id",
    "state_digest",
]
