"""The bounded explorer: all interleavings, memoized, resumable.

The explorer drives :class:`~repro.mc.stepper.Stepper` replays through
the bounded transition system, prunes convergent states by canonical
digest (:mod:`repro.mc.digest`), evaluates the safety predicates
(:mod:`repro.mc.predicates`) in every newly-reached state, and records
everything in an append-only JSONL artifact (format ``repro.mc/v1``)
that is byte-identical for a fixed config and resumable after an
interruption.

Artifact grammar (one JSON object per line)::

    {"type": "header", "format": "repro.mc/v1", "config": {...}}
    {"type": "violation", "path": [...], "violations": [...]}   # 0..n
    {"type": "layer", "depth": d, "frontier": [[...], ...],
     "new_digests": [...], "pruned": k, "transitions": m}       # bfs
    {"type": "checkpoint", "expansions": e, "stack": [[...], ...],
     "new_digests": [...], "pruned": k, "transitions": m}       # dfs
    {"type": "summary", ...}

Violation records always precede the layer/checkpoint record of the
unit that found them, so a resume can truncate to the last complete
unit and regenerate the tail deterministically — an interrupted-then-
resumed artifact is byte-identical to a straight run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.campaign.scenario import Scenario
from repro.errors import ConfigurationError
from repro.mc.config import McConfig
from repro.mc.digest import state_digest
from repro.mc.mutations import apply_mutation
from repro.mc.predicates import check_state
from repro.mc.stepper import Label, Stepper
from repro.observability.registry import MODULE_MC, MetricsRegistry

#: Artifact format tag; bump on any change to the record grammar.
ARTIFACT_FORMAT = "repro.mc/v1"

#: DFS writes a resumable checkpoint after this many node expansions.
CHECKPOINT_EVERY = 200


@dataclass(slots=True)
class Violation:
    """One counterexample: a replayable path and what it violates."""

    path: tuple[Label, ...]
    violations: tuple[str, ...]

    def kinds(self) -> frozenset[str]:
        return frozenset(v.split(":", 1)[0] for v in self.violations)


@dataclass(slots=True)
class ExplorationResult:
    """Outcome of one (possibly resumed) exploration."""

    config: McConfig
    states_explored: int
    states_pruned: int
    frontier_depth: int
    transitions: int
    stop_reason: str
    violations: list[Violation] = field(default_factory=list)
    visited: frozenset[str] = frozenset()

    @property
    def safe(self) -> bool:
        return not self.violations


def _encode_path(path: tuple[Label, ...]) -> list[list[Any]]:
    return [list(label) for label in path]


def _decode_path(encoded: list[list[Any]]) -> tuple[Label, ...]:
    return tuple(tuple(label) for label in encoded)


class Explorer:
    """Bounded exploration of one :class:`McConfig`, artifact-backed."""

    def __init__(
        self,
        config: McConfig,
        artifact: str | Path,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        config.validate()
        self.config = config
        self.artifact = Path(artifact)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Exploration state (populated by run/resume).
        self.visited: set[str] = set()
        self.violations: list[Violation] = []
        self.pruned = 0
        self.transitions = 0
        self.frontier_depth = 0
        self._records: list[dict[str, Any]] = []

    # -- public entry points -------------------------------------------------

    def run(self) -> ExplorationResult:
        """Explore from scratch, writing the artifact as layers complete."""
        self.artifact.parent.mkdir(parents=True, exist_ok=True)
        self._records = [
            {
                "type": "header",
                "format": ARTIFACT_FORMAT,
                "config": self.config.to_config(),
            }
        ]
        self._rewrite()
        with apply_mutation(self.config.mutation):
            initial = Stepper(self.config)
            digest0 = state_digest(initial.system)
            self.visited.add(digest0)
            unit_violations = self._examine((), initial)
            self._commit_unit(
                unit_violations,
                {
                    "type": "layer",
                    "depth": 0,
                    "frontier": [[]],
                    "new_digests": [digest0],
                    "pruned": 0,
                    "transitions": 0,
                },
            )
            if self.config.stop_on_violation and self.violations:
                return self._finish("violation")
            if self.config.strategy == "bfs":
                return self._run_bfs(frontier=[()], depth=0)
            return self._run_dfs(stack=[()], expansions=0)

    @classmethod
    def resume(
        cls, artifact: str | Path, metrics: MetricsRegistry | None = None
    ) -> ExplorationResult:
        """Continue an interrupted exploration from its artifact.

        Truncates any trailing partial unit (violations not yet sealed by
        their layer/checkpoint record) and re-explores from the last
        complete one; the finished artifact is byte-identical to a
        straight run.
        """
        records = _read_artifact(Path(artifact))
        header = records[0]
        config = McConfig.from_config(header["config"])
        explorer = cls(config, artifact, metrics=metrics)
        if records and records[-1]["type"] == "summary":
            return explorer._result_from_records(records)

        kept: list[dict[str, Any]] = [header]
        pending_violations: list[dict[str, Any]] = []
        units: list[dict[str, Any]] = []
        for record in records[1:]:
            if record["type"] == "violation":
                pending_violations.append(record)
            elif record["type"] in ("layer", "checkpoint"):
                kept.extend(pending_violations)
                pending_violations = []
                kept.append(record)
                units.append(record)
        if not units:
            # Nothing complete beyond the header: start over.
            return Explorer(config, artifact, metrics=explorer.metrics).run()
        explorer._records = kept
        for record in kept:
            if record["type"] == "violation":
                explorer.violations.append(
                    Violation(
                        path=_decode_path(record["path"]),
                        violations=tuple(record["violations"]),
                    )
                )
            elif record["type"] in ("layer", "checkpoint"):
                explorer.visited.update(record["new_digests"])
                explorer.pruned += record["pruned"]
                explorer.transitions += record["transitions"]
        explorer._rewrite()
        last = units[-1]
        with apply_mutation(config.mutation):
            if config.stop_on_violation and explorer.violations:
                return explorer._finish("violation")
            if config.strategy == "bfs":
                frontier = [_decode_path(p) for p in last["frontier"]]
                depth = last["depth"]
                explorer.frontier_depth = depth
                return explorer._run_bfs(frontier=frontier, depth=depth)
            stack = [_decode_path(p) for p in last.get("stack", [[]])]
            explorer.frontier_depth = last.get("depth", 0)
            return explorer._run_dfs(
                stack=stack, expansions=last.get("expansions", 0)
            )

    # -- breadth-first layers ------------------------------------------------

    def _run_bfs(
        self, frontier: list[tuple[Label, ...]], depth: int
    ) -> ExplorationResult:
        while frontier:
            if depth >= self.config.max_depth:
                return self._finish("max-depth")
            if len(self.visited) >= self.config.max_states:
                return self._finish("max-states")
            depth += 1
            next_frontier: list[tuple[Label, ...]] = []
            new_digests: list[str] = []
            unit_violations: list[dict[str, Any]] = []
            unit_pruned = 0
            unit_transitions = 0
            capped = False
            for path in frontier:
                parent = Stepper.replay(self.config, path)
                for label in parent.enabled():
                    child = Stepper.replay(self.config, path)
                    child.apply(label)
                    unit_transitions += 1
                    digest = state_digest(child.system)
                    if digest in self.visited:
                        unit_pruned += 1
                        continue
                    self.visited.add(digest)
                    new_digests.append(digest)
                    child_path = path + (label,)
                    violations = self._examine(child_path, child)
                    unit_violations.extend(violations)
                    if self.config.stop_on_violation and violations:
                        capped = True
                        break
                    if not violations and not child.rounds_exceeded():
                        next_frontier.append(child_path)
                    if len(self.visited) >= self.config.max_states:
                        capped = True
                        break
                if capped:
                    break
            self.pruned += unit_pruned
            self.transitions += unit_transitions
            self.frontier_depth = depth
            self._commit_unit(
                unit_violations,
                {
                    "type": "layer",
                    "depth": depth,
                    "frontier": [_encode_path(p) for p in next_frontier],
                    "new_digests": new_digests,
                    "pruned": unit_pruned,
                    "transitions": unit_transitions,
                },
            )
            if self.config.stop_on_violation and self.violations:
                return self._finish("violation")
            frontier = next_frontier
        return self._finish("exhausted")

    # -- depth-first dives ---------------------------------------------------

    def _run_dfs(
        self, stack: list[tuple[Label, ...]], expansions: int
    ) -> ExplorationResult:
        unit_violations: list[dict[str, Any]] = []
        unit_digests: list[str] = []
        unit_pruned = 0
        unit_transitions = 0
        while stack:
            if len(self.visited) >= self.config.max_states:
                self._commit_dfs_unit(
                    unit_violations, unit_digests, unit_pruned,
                    unit_transitions, stack, expansions,
                )
                return self._finish("max-states")
            path = stack.pop()
            if len(path) >= self.config.max_depth:
                continue
            parent = Stepper.replay(self.config, path)
            expansions += 1
            # Reversed push so the first enabled label is explored first.
            for label in reversed(parent.enabled()):
                child = Stepper.replay(self.config, path)
                child.apply(label)
                unit_transitions += 1
                digest = state_digest(child.system)
                if digest in self.visited:
                    unit_pruned += 1
                    continue
                self.visited.add(digest)
                unit_digests.append(digest)
                child_path = path + (label,)
                self.frontier_depth = max(self.frontier_depth, len(child_path))
                violations = self._examine(child_path, child)
                unit_violations.extend(violations)
                if self.config.stop_on_violation and violations:
                    self.pruned += unit_pruned
                    self.transitions += unit_transitions
                    self._commit_dfs_unit(
                        unit_violations, unit_digests, 0, 0, stack, expansions,
                        counters_committed=True,
                    )
                    return self._finish("violation")
                if not violations and not child.rounds_exceeded():
                    stack.append(child_path)
            if expansions % CHECKPOINT_EVERY == 0:
                self.pruned += unit_pruned
                self.transitions += unit_transitions
                self._commit_dfs_unit(
                    unit_violations, unit_digests, unit_pruned,
                    unit_transitions, stack, expansions,
                    counters_committed=True,
                )
                unit_violations = []
                unit_digests = []
                unit_pruned = 0
                unit_transitions = 0
        self.pruned += unit_pruned
        self.transitions += unit_transitions
        self._commit_dfs_unit(
            unit_violations, unit_digests, unit_pruned, unit_transitions,
            [], expansions, counters_committed=True,
        )
        return self._finish("exhausted")

    def _commit_dfs_unit(
        self,
        unit_violations: list[dict[str, Any]],
        unit_digests: list[str],
        unit_pruned: int,
        unit_transitions: int,
        stack: list[tuple[Label, ...]],
        expansions: int,
        counters_committed: bool = False,
    ) -> None:
        if not counters_committed:
            self.pruned += unit_pruned
            self.transitions += unit_transitions
        self._commit_unit(
            unit_violations,
            {
                "type": "checkpoint",
                "depth": self.frontier_depth,
                "expansions": expansions,
                "stack": [_encode_path(p) for p in stack],
                "new_digests": unit_digests,
                "pruned": unit_pruned,
                "transitions": unit_transitions,
            },
        )

    # -- shared plumbing -----------------------------------------------------

    def _examine(
        self, path: tuple[Label, ...], stepper: Stepper
    ) -> list[dict[str, Any]]:
        """Safety predicates on one new state -> violation records."""
        problems = check_state(stepper.system)
        if not problems:
            return []
        violation = Violation(path=path, violations=tuple(problems))
        self.violations.append(violation)
        return [
            {
                "type": "violation",
                "path": _encode_path(path),
                "violations": list(violation.violations),
            }
        ]

    def _commit_unit(
        self, violations: list[dict[str, Any]], unit: dict[str, Any]
    ) -> None:
        """Seal one unit of work: its violations, then the unit record."""
        self._records.extend(violations)
        self._records.append(unit)
        with self.artifact.open("a", encoding="utf-8") as sink:
            for record in violations + [unit]:
                sink.write(_dump(record))

    def _rewrite(self) -> None:
        with self.artifact.open("w", encoding="utf-8") as sink:
            for record in self._records:
                sink.write(_dump(record))

    def _finish(self, stop_reason: str) -> ExplorationResult:
        summary = {
            "type": "summary",
            "states_explored": len(self.visited),
            "states_pruned": self.pruned,
            "frontier_depth": self.frontier_depth,
            "transitions": self.transitions,
            "violations": len(self.violations),
            "stop_reason": stop_reason,
        }
        self._records.append(summary)
        with self.artifact.open("a", encoding="utf-8") as sink:
            sink.write(_dump(summary))
        self.metrics.inc(MODULE_MC, "mc_states_explored", len(self.visited))
        self.metrics.inc(MODULE_MC, "mc_states_pruned", self.pruned)
        self.metrics.gauge_max(MODULE_MC, "mc_frontier_depth", self.frontier_depth)
        return ExplorationResult(
            config=self.config,
            states_explored=len(self.visited),
            states_pruned=self.pruned,
            frontier_depth=self.frontier_depth,
            transitions=self.transitions,
            stop_reason=stop_reason,
            violations=list(self.violations),
            visited=frozenset(self.visited),
        )

    def _result_from_records(
        self, records: list[dict[str, Any]]
    ) -> ExplorationResult:
        """Parse a finished artifact into a result (no exploration)."""
        summary = records[-1]
        violations = [
            Violation(
                path=_decode_path(r["path"]),
                violations=tuple(r["violations"]),
            )
            for r in records
            if r["type"] == "violation"
        ]
        visited: set[str] = set()
        for record in records:
            if record["type"] in ("layer", "checkpoint"):
                visited.update(record["new_digests"])
        return ExplorationResult(
            config=self.config,
            states_explored=summary["states_explored"],
            states_pruned=summary["states_pruned"],
            frontier_depth=summary["frontier_depth"],
            transitions=summary["transitions"],
            stop_reason=summary["stop_reason"],
            violations=violations,
            visited=frozenset(visited),
        )


# -- artifact i/o ------------------------------------------------------------


def _dump(record: dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


def _read_artifact(path: Path) -> list[dict[str, Any]]:
    if not path.exists():
        raise ConfigurationError(f"no artifact at {path}")
    records: list[dict[str, Any]] = []
    with path.open("r", encoding="utf-8") as source:
        for line in source:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                break  # a torn trailing line from an interrupted write
    if not records or records[0].get("format") != ARTIFACT_FORMAT:
        raise ConfigurationError(
            f"{path} is not a {ARTIFACT_FORMAT} artifact"
        )
    return records


def load_artifact(path: str | Path) -> tuple[McConfig, list[dict[str, Any]]]:
    """The artifact's config and raw records (for replay and reporting)."""
    records = _read_artifact(Path(path))
    return McConfig.from_config(records[0]["config"]), records


# -- counterexample emission -------------------------------------------------


def counterexample_scenario(config: McConfig, path: tuple[Label, ...]) -> Scenario:
    """Map one violating path onto a replayable campaign scenario.

    The explorer's path is a *schedule*; the campaign runner replays
    *behaviours*. The mapping keeps the fault structure — which seat
    misbehaved and how — and lets the campaign's own seeded scheduler
    pick the timing: the adversary modes used along the path select the
    closest attack from the transformed catalogue. The scenario uses the
    ``timeout`` muteness detector: the campaign's time-driven schedule
    must leave the attacked round open long enough to exhibit the fault
    the explorer reached with explicit scheduling, and the oracle
    detector would guard the round closed before the quorum forms. The
    emitted scenario is what ``repro mc replay --shrink`` hands to the
    campaign shrinker (under the same mutation, if one is injected).
    """
    used = {label[0] for label in path}
    attacks: tuple[tuple[int, str], ...] = ()
    if config.adversary is not None:
        if "equivocate-current" in used:
            attack = "equivocate-current"
        elif "forge-attempt" in used:
            attack = "bad-signature"
        elif "mute" in used or "drop" in used:
            attack = "mute"
        else:
            attack = None
        if attack is not None:
            attacks = ((config.adversary, attack),)
    return Scenario(
        protocol="transformed",
        n=config.n,
        seed=config.seed,
        attacks=attacks,
        muteness="timeout",
    )
