"""Known-bad protocol mutations for checking the checker.

A model checker that never finds anything proves nothing: it may be
exploring too little, or its predicates may be vacuous. Each entry here
is a *deliberately wrong* variant of the transformed protocol, applied
as a reversible monkey-patch so the very same module stack the library
ships is explored — not a re-model of it. The tier-1 suite asserts that
the explorer finds a counterexample for every mutation and that the
counterexample shrinks to a small campaign scenario
(tests/test_mc_explorer.py).

The patch is process-wide while the context manager is held, which is
exactly what the counterexample workflow needs: the same mutation must
be active when the campaign shrinker re-runs the emitted scenario, or
the scenario would not fail and there would be nothing to shrink.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

from repro.consensus.transformed import TransformedConsensusProcess
from repro.errors import ConfigurationError
from repro.messages.consensus import VDecide, VNext

#: The shipped known-bad mutation: the decision guard accepts *any*
#: (n - F) CURRENT quorum, dropping the same-vector filter of Figure 3
#: line 20. Under an equivocating round-1 coordinator this decides on a
#: certificate without n - F distinct signers of the decided vector —
#: the exact bug class the certificate-validity predicate exists for.
ACCEPT_ANY_CURRENT_QUORUM = "accept-any-current-quorum"


def _check_progress_accept_any(self: TransformedConsensusProcess) -> None:
    """Figure 3 lines 20-31 with the same-vector filter removed (BUG)."""
    if self.decided:
        return
    matching = self.current_cert  # BUG: no est_vect filter on the quorum
    if len(matching.senders()) >= self._quorum():
        decide_cert = matching.union(self.est_cert)
        self.decision_justification = self._broadcast_signed(
            VDecide(sender=self.pid, est_vect=self.est_vect), decide_cert
        )
        self.decide_value(self.est_vect, round_number=self.round)
        return
    current_senders = self.current_cert.senders()
    rec_from = current_senders | self.next_cert.senders()
    if (
        self.sent_current
        and not self.sent_next
        and len(rec_from) >= self._quorum()
    ):
        self._broadcast_signed(
            VNext(sender=self.pid, round=self.round),
            self.current_cert.union(self.next_cert),
        )
        self.sent_next = True
    if len(self.next_cert.senders()) >= self._quorum():
        if not self.sent_next:
            self._broadcast_signed(
                VNext(sender=self.pid, round=self.round), self.next_cert
            )
            self.sent_next = True
        self._begin_round(self.round + 1)


#: name -> replacement for ``TransformedConsensusProcess._check_progress``.
MUTATIONS: dict[str, Callable[[TransformedConsensusProcess], None]] = {
    ACCEPT_ANY_CURRENT_QUORUM: _check_progress_accept_any,
}


@contextmanager
def apply_mutation(name: str | None) -> Iterator[None]:
    """Temporarily install the named mutation (None is a no-op).

    The patch lands on :class:`TransformedConsensusProcess` itself so
    every subclass — the scripted model-checking adversary and the
    campaign attack gallery alike — runs the mutated guard, and is
    restored on exit even if the exploration raises.
    """
    if name is None:
        yield
        return
    replacement = MUTATIONS.get(name)
    if replacement is None:
        raise ConfigurationError(
            f"unknown mutation {name!r}; known: {sorted(MUTATIONS)}"
        )
    original = TransformedConsensusProcess._check_progress
    TransformedConsensusProcess._check_progress = replacement  # type: ignore[method-assign]
    try:
        yield
    finally:
        TransformedConsensusProcess._check_progress = original  # type: ignore[method-assign]
