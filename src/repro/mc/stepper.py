"""The step function: one real module stack under explorer control.

A :class:`Stepper` owns one freshly-built transformed system (the very
same :func:`~repro.systems.build_transformed_system` world the tests and
campaigns run — *not* a re-model) and exposes it as a labelled
transition system:

* ``("deliver", src, dst)`` — dispatch the oldest in-flight message on
  channel ``src -> dst`` (FIFO heads only, so channel order is
  preserved on every interleaving);
* ``("tick",)`` — dispatch the earliest pending non-delivery event
  (a timer or detector poll);
* ``("mute",)`` / ``("equivocate-current",)`` / ``("forge-attempt",)``
  — activate the corresponding :class:`ScriptedAdversary` mode;
* ``("drop", dst)`` — withhold (cancel) the oldest in-flight message
  from the adversary to ``dst``;
* ``("suppress", dst)`` — the zoo's message adversary, model-checker
  scale: cancel the oldest in-flight *CURRENT* delivery from the
  adversary to ``dst``, at most ``config.suppress_d`` cancellations per
  protocol round (the round is read off the suppressed message itself,
  ``event.meta[3]``, so the budget follows the broadcast, not the wall).

State identity is the label path from the initial state: snapshotting a
live world is impossible (event callbacks are closures over it), so the
explorer *replays* paths through fresh steppers instead — which is sound
because a fixed config builds a bit-identical world every time.

Scope bound: self-channel deliveries are drained eagerly after every
transition (a process always hears its own broadcast first). This
removes the n self-channels from the interleaving space; no cross-process
race is hidden because only the sender itself observes the difference.
"""

from __future__ import annotations

from typing import Iterable

from repro.consensus.transformed import PHASE_INIT
from repro.errors import ProtocolError
from repro.mc.adversary import ScriptedAdversary
from repro.mc.config import McConfig
from repro.messages.consensus import VCurrent
from repro.sim.events import Event
from repro.sim.network import FixedDelay
from repro.systems import ConsensusSystem, build_transformed_system

#: A transition label (see module docstring for the grammar).
Label = tuple

#: Wire delay of the explored world. The explorer chooses delivery
#: *order* explicitly, so the delay only spaces FIFO timestamps.
_WIRE_DELAY = 1.0


def _adversary_factory(pid, proposal, params, authority, detector, cfg):
    return ScriptedAdversary(
        proposal=proposal,
        params=params,
        authority=authority,
        detector=detector,
        config=cfg,
    )


class Stepper:
    """One controlled execution of the real stack along one label path."""

    def __init__(self, config: McConfig) -> None:
        self.config = config
        self.system = self._build()
        self.scheduler = self.system.world.scheduler
        self.adversary: ScriptedAdversary | None = None
        if config.adversary is not None:
            process = self.system.processes[config.adversary]
            assert isinstance(process, ScriptedAdversary)
            self.adversary = process
        self.path: tuple[Label, ...] = ()
        self.dropped = 0
        #: CURRENT suppressions spent, per protocol round (suppress-d).
        self.suppressed: dict[int, int] = {}
        self._preamble()

    @classmethod
    def replay(cls, config: McConfig, path: Iterable[Label]) -> "Stepper":
        """A fresh stepper driven through ``path`` from the initial state."""
        stepper = cls(config)
        for label in path:
            stepper.apply(tuple(label))
        return stepper

    # -- construction --------------------------------------------------------

    def _build(self) -> ConsensusSystem:
        byzantine = {}
        if self.config.adversary is not None:
            byzantine[self.config.adversary] = _adversary_factory
        return build_transformed_system(
            [f"v{i}" for i in range(self.config.n)],
            byzantine=byzantine,
            f=self.config.f,
            seed=self.config.seed,
            delay_model=FixedDelay(_WIRE_DELAY),
        )

    def _preamble(self) -> None:
        """Fire every start event, then drain the self-channels."""
        self.system.world.start()
        for event in self.scheduler.pending():
            if event.kind == "start":
                self.scheduler.dispatch_event(event)
        self._drain_self_deliveries()

    # -- views ---------------------------------------------------------------

    def channels(self) -> dict[tuple[int, int], list[Event]]:
        """Pending delivery events per (src, dst), in FIFO order."""
        channels: dict[tuple[int, int], list[Event]] = {}
        for event in self.scheduler.pending():
            meta = event.meta
            if meta is not None and meta[0] == "deliver":
                channels.setdefault((meta[1], meta[2]), []).append(event)
        return channels

    def _pending_non_delivery(self) -> Event | None:
        for event in self.scheduler.pending():
            if event.meta is None or event.meta[0] != "deliver":
                return event
        return None

    def enabled(self) -> list[Label]:
        """Every transition enabled in the current state.

        Adversary actions come first (so depth-first hunts commit to an
        attack before exploring delivery orders), then deliveries —
        channels *into* the adversary seat ahead of the rest, each group
        in (src, dst) order — then the timer tick. Feeding the adversary
        first matters for depth-first hunts: scripted attacks trigger on
        what the adversary has received, so the first dive reaches the
        attack behaviour within a few steps instead of after an
        exponential detour. The order is deterministic — it is part of
        the artifact's byte-identity contract.
        """
        labels: list[Label] = []
        adversary = self.adversary
        alphabet = self.config.alphabet
        channels = self.channels()
        if adversary is not None:
            if "mute" in alphabet and "mute" not in adversary.modes:
                labels.append(("mute",))
            if (
                "equivocate-current" in alphabet
                and "equivocate-current" not in adversary.modes
                and adversary.phase == PHASE_INIT
            ):
                labels.append(("equivocate-current",))
            if "forge-attempt" in alphabet and not adversary.forged:
                labels.append(("forge-attempt",))
            if "drop-delivery" in alphabet:
                for (src, dst) in sorted(channels):
                    if src == adversary.pid and dst != adversary.pid:
                        labels.append(("drop", dst))
            if "suppress-d" in alphabet:
                for (src, dst) in sorted(channels):
                    if (
                        src == adversary.pid
                        and dst != adversary.pid
                        and self._suppressible(dst) is not None
                    ):
                        labels.append(("suppress", dst))
        adversary_pid = None if adversary is None else adversary.pid
        for (src, dst) in sorted(
            channels, key=lambda pair: (pair[1] != adversary_pid, pair)
        ):
            if src != dst:
                labels.append(("deliver", src, dst))
        if self._pending_non_delivery() is not None:
            labels.append(("tick",))
        return labels

    def _suppressible(self, dst: int) -> Event | None:
        """The oldest in-flight CURRENT from the adversary to ``dst``
        whose round still has ``suppress-d`` budget, or None.

        Only the oldest CURRENT on the channel is considered — skipping
        past a budget-exhausted round to a younger broadcast would let
        one label mean different messages on replay.
        """
        assert self.adversary is not None
        for event in self.scheduler.pending():
            meta = event.meta
            if (
                meta is None
                or meta[0] != "deliver"
                or meta[1] != self.adversary.pid
                or meta[2] != dst
            ):
                continue
            body = getattr(meta[3], "body", None)
            if not isinstance(body, VCurrent):
                continue
            if self.suppressed.get(body.round, 0) < self.config.suppress_d:
                return event
            return None
        return None

    def rounds_exceeded(self) -> bool:
        """True when any correct process passed the round bound."""
        return any(
            self.system.processes[pid].round > self.config.max_rounds  # type: ignore[attr-defined]
            for pid in self.system.correct_pids
        )

    # -- the step function ---------------------------------------------------

    def apply(self, label: Label) -> None:
        """Take one transition; raises :class:`ProtocolError` if disabled."""
        kind = label[0]
        if kind == "deliver":
            self._dispatch_head(label[1], label[2])
        elif kind == "tick":
            event = self._pending_non_delivery()
            if event is None:
                raise ProtocolError("tick applied with no pending timer")
            self.scheduler.dispatch_event(event)
        elif kind == "drop":
            adversary = self._require_adversary(kind)
            head = self.channels().get((adversary.pid, label[1]))
            if not head:
                raise ProtocolError(f"drop on empty channel to {label[1]}")
            head[0].cancelled.cancel()
            self.dropped += 1
        elif kind == "suppress":
            self._require_adversary(kind)
            event = self._suppressible(label[1])
            if event is None:
                raise ProtocolError(
                    f"suppress disabled on channel to {label[1]}"
                )
            round_ = event.meta[3].body.round
            event.cancelled.cancel()
            self.suppressed[round_] = self.suppressed.get(round_, 0) + 1
        elif kind == "mute":
            self._require_adversary(kind).activate_mute()
        elif kind == "equivocate-current":
            self._require_adversary(kind).arm_equivocation()
        elif kind == "forge-attempt":
            self._require_adversary(kind).forge_once()
        else:
            raise ProtocolError(f"unknown transition label {label!r}")
        self._drain_self_deliveries()
        self.path = self.path + (tuple(label),)

    def _require_adversary(self, kind: str) -> ScriptedAdversary:
        if self.adversary is None:
            raise ProtocolError(f"{kind!r} needs an adversary seat")
        return self.adversary

    def _dispatch_head(self, src: int, dst: int) -> None:
        for event in self.scheduler.pending():
            meta = event.meta
            if meta is not None and meta[0] == "deliver" and meta[1] == src and meta[2] == dst:
                self.scheduler.dispatch_event(event)
                return
        raise ProtocolError(f"deliver on empty channel {src} -> {dst}")

    def _drain_self_deliveries(self) -> None:
        while True:
            head = next(
                (
                    event
                    for event in self.scheduler.pending()
                    if event.meta is not None
                    and event.meta[0] == "deliver"
                    and event.meta[1] == event.meta[2]
                ),
                None,
            )
            if head is None:
                return
            self.scheduler.dispatch_event(head)
