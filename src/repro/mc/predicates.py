"""Safety predicates evaluated in every reachable state.

Unlike the end-of-run property checkers (:mod:`repro.analysis.properties`),
these run *mid-execution*: a state where only some correct processes have
decided must already satisfy every safety property over the decisions
that exist. Termination is deliberately absent — it is a liveness
property, meaningless on a bounded prefix.

The predicates, each yielding violations prefixed with a stable kind
(the text before the first ``:``), are:

* ``agreement`` — no two decided correct processes hold different vectors;
* ``vector validity`` — every decided vector satisfies the paper's
  Vector Validity (via :func:`repro.analysis.properties.vector_valid`);
* ``certificate validity`` — every correct decider's
  ``decision_justification`` carries ``n - F`` distinct-sender,
  correctly-signed CURRENTs for the decided vector (Figure 3 line 20's
  guard, re-checked from the evidence);
* ``proposition 1`` — every certified vector a correct process built
  holds that process's own proposal in its own slot;
* ``proposition 2`` — any two certified vectors built by correct
  processes are compatible (equal or null on every entry);
* ``detection soundness`` — no correct process ever declares another
  correct process faulty.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.properties import vector_valid
from repro.consensus.transformed import TransformedConsensusProcess
from repro.core.vector_certification import vectors_compatible
from repro.messages.consensus import VCurrent
from repro.systems import ConsensusSystem


def check_state(system: ConsensusSystem) -> list[str]:
    """All safety-predicate violations in the current state (empty = safe)."""
    params = system.params
    assert params is not None, "repro.mc explores transformed systems only"
    correct = sorted(system.correct_pids)
    correct_proposals = {
        pid: system.processes[pid].proposal for pid in correct
    }
    violations: list[str] = []

    decisions: dict[int, Any] = {
        pid: system.processes[pid].decision
        for pid in correct
        if system.processes[pid].decided
    }
    _check_agreement(decisions, violations)
    for vector in decisions.values():
        vector_valid(vector, correct_proposals, params, violations)
    for pid in decisions:
        process = system.processes[pid]
        assert isinstance(process, TransformedConsensusProcess)
        _check_justification(process, violations)
    _check_propositions(system, correct, correct_proposals, violations)
    for pid in correct:
        process = system.processes[pid]
        assert isinstance(process, TransformedConsensusProcess)
        wrongly = sorted(process.monitor_bank.faulty & set(correct))
        if wrongly:
            violations.append(
                f"detection soundness: correct p{pid} declared correct "
                f"processes {wrongly} faulty"
            )
    return violations


def _check_agreement(decisions: dict[int, Any], violations: list[str]) -> None:
    distinct = {tuple(v) if isinstance(v, list) else v for v in decisions.values()}
    if len(distinct) > 1:
        detail = ", ".join(
            f"p{pid}={decisions[pid]!r}" for pid in sorted(decisions)
        )
        violations.append(
            f"agreement: decided correct processes disagree ({detail})"
        )


def _check_justification(
    process: TransformedConsensusProcess, violations: list[str]
) -> None:
    justification = process.decision_justification
    if justification is None:
        violations.append(
            f"certificate validity: correct p{process.pid} decided without "
            "a decision justification"
        )
        return
    if not justification.has_full_cert:
        violations.append(
            f"certificate validity: p{process.pid}'s justification "
            "certificate was pruned away"
        )
        return
    matching_signers = {
        entry.body.sender
        for entry in justification.full_cert()
        if isinstance(entry.body, VCurrent)
        and entry.body.est_vect == process.decision
        and process.authority.signature_valid(entry)
    }
    quorum = process.params.quorum
    if len(matching_signers) < quorum:
        violations.append(
            f"certificate validity: p{process.pid}'s decision is justified "
            f"by only {len(matching_signers)} distinct correctly-signed "
            f"CURRENT(s) for the decided vector, needs n - F = {quorum}"
        )


def _check_propositions(
    system: ConsensusSystem,
    correct: list[int],
    correct_proposals: dict[int, Any],
    violations: list[str],
) -> None:
    built: dict[int, tuple] = {}
    for event in system.world.trace.of_kind("vector-built"):
        if event.process in correct and event.process not in built:
            built[event.process] = event.detail["vector"]
    for pid, vector in sorted(built.items()):
        if vector[pid] != correct_proposals[pid]:
            violations.append(
                f"proposition 1: p{pid} built a vector whose own entry is "
                f"{vector[pid]!r}, not its proposal {correct_proposals[pid]!r}"
            )
    pids = sorted(built)
    for i, a in enumerate(pids):
        for b in pids[i + 1:]:
            if not vectors_compatible(built[a], built[b]):
                violations.append(
                    f"proposition 2: vectors built by p{a} and p{b} "
                    f"disagree on a present entry"
                )
