"""The explorer-controlled Byzantine seat.

The campaign gallery (:mod:`repro.byzantine.transformed_attacks`) fixes
each attacker's behaviour at construction time; the model checker instead
needs an adversary whose misbehaviour is *scheduled* — the explorer picks
adversary actions from the bounded alphabet exactly like it picks message
deliveries, so "equivocate now or two deliveries later" are different
explored branches.

A :class:`ScriptedAdversary` therefore behaves as a perfectly correct
:class:`~repro.consensus.transformed.TransformedConsensusProcess` until
the explorer activates a mode:

* ``mute`` — every later send is suppressed (the signed message is still
  produced, mirroring :class:`TMuteAttacker`, so local state stays
  consistent);
* ``equivocate-current`` — the INIT phase over-collects past the quorum
  and, as round-1 coordinator, certifies two distinct ``n - F`` INIT
  subsets, sending branch A to even pids and branch B to odd pids (the
  :class:`TEquivocatingCurrentAttacker` construction);
* ``forge-attempt`` — a one-shot broadcast of a DECIDE whose signature
  bytes are forged garbage, a genuine attempt against the
  unforgeable-signature assumption.

``drop-delivery`` lives in the stepper, not here: withholding an
in-flight message is an action on the network state, applied by
cancelling the pending delivery event.
"""

from __future__ import annotations

from typing import Any

from repro.consensus.transformed import (
    PHASE_INIT,
    PHASE_ROUNDS,
    TransformedConsensusProcess,
)
from repro.core.certificates import (
    Certificate,
    CertificationAuthority,
    EMPTY_CERTIFICATE,
    SignedMessage,
)
from repro.core.modules import ModuleConfig
from repro.core.specs import SystemParameters
from repro.detectors.base import FailureDetector
from repro.errors import ProtocolError
from repro.messages.base import Message
from repro.messages.consensus import Init, NULL, VCurrent, VDecide

#: Entry values no honest INIT set can witness (forged traffic only).
POISON = "<mc-poison>"


class ScriptedAdversary(TransformedConsensusProcess):
    """One Byzantine process whose misbehaviour the explorer schedules."""

    def __init__(
        self,
        proposal: Any,
        params: SystemParameters,
        authority: CertificationAuthority,
        detector: FailureDetector,
        suspicion_poll: float = 0.5,
        config: ModuleConfig | None = None,
    ) -> None:
        super().__init__(
            proposal=proposal,
            params=params,
            authority=authority,
            detector=detector,
            suspicion_poll=suspicion_poll,
            config=config,
        )
        #: Modes activated so far (part of the canonical state digest).
        self.modes: set[str] = set()
        #: Every INIT seen, kept past the quorum for equivocation.
        self._all_inits: dict[int, SignedMessage] = {}
        self.equivocated = False
        self.forged = False

    # -- explorer controls ---------------------------------------------------

    def activate_mute(self) -> None:
        self.modes.add("mute")

    def arm_equivocation(self) -> None:
        """Commit to equivocating the round-1 CURRENT.

        Only meaningful while the INIT phase is still open (the stepper
        enables the label exactly then): from here on INITs are stashed
        past the quorum until the surplus INIT needed to certify two
        distinct subsets has arrived.
        """
        if self.phase != PHASE_INIT:
            raise ProtocolError(
                "equivocation armed after the INIT phase closed"
            )
        self.modes.add("equivocate-current")

    def forge_once(self) -> None:
        """Broadcast a DECIDE with forged (invalid) signature bytes."""
        if self.forged:
            raise ProtocolError("forge-attempt is a one-shot action")
        self.forged = True
        self.modes.add("forge-attempt")
        body = VDecide(
            sender=self.pid,
            est_vect=tuple(f"{POISON}{k}" for k in range(self.n)),
        )
        draft = SignedMessage(
            body=body,
            cert=EMPTY_CERTIFICATE,
            signature=self.authority.scheme.forge(self.pid, None),
        )
        forged = SignedMessage(
            body=body,
            cert=EMPTY_CERTIFICATE,
            signature=self.authority.scheme.forge(
                self.pid, draft.signed_payload()
            ),
        )
        self._send_all(forged)

    # -- mode-aware egress ---------------------------------------------------

    def _send_all(self, message: Any) -> None:
        if "mute" in self.modes:
            return
        self.broadcast(message)

    def _broadcast_signed(self, body: Message, cert: Certificate) -> SignedMessage:
        message = self.authority.make(body, cert)
        self._send_all(message)
        return message

    # -- mode-aware INIT phase ----------------------------------------------

    def _on_init(self, message: SignedMessage) -> None:
        assert isinstance(message.body, Init)
        self._all_inits.setdefault(message.body.sender, message)
        if "equivocate-current" not in self.modes or self.equivocated:
            super()._on_init(message)
            return
        # Armed: hold the vector open past the quorum until a surplus
        # INIT allows two distinct (n - F) subsets to be certified.
        if len(self._all_inits) <= self._quorum():
            return
        self._equivocate_round_one()

    def _equivocate_round_one(self) -> None:
        self.equivocated = True
        self.phase = PHASE_ROUNDS
        self.round = 1
        self.sent_current = True
        self.sent_next = False
        senders = sorted(self._all_inits)
        subset_a = senders[: self._quorum()]
        subset_b = senders[-self._quorum():]
        branches = []
        for subset in (subset_a, subset_b):
            vector = [NULL] * self.n
            for pid in subset:
                init = self._all_inits[pid]
                assert isinstance(init.body, Init)
                vector[pid] = init.body.value
            cert = Certificate(tuple(self._all_inits[pid] for pid in subset))
            body = VCurrent(sender=self.pid, round=1, est_vect=tuple(vector))
            branches.append(self.authority.make(body, cert))
        # Adopt branch A locally so later rounds stay runnable.
        self.est_vect = branches[0].body.est_vect  # type: ignore[union-attr]
        self.est_cert = branches[0].full_cert()
        if "mute" not in self.modes:
            for dst in range(self.n):
                self.send(dst, branches[0] if dst % 2 == 0 else branches[1])
        self.next_cert = EMPTY_CERTIFICATE
        self.current_cert = EMPTY_CERTIFICATE
