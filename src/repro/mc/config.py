"""Configuration of one bounded model-checking run.

An :class:`McConfig` pins everything an exploration depends on — system
size, the adversary seat and its action alphabet, the depth/state bounds,
the search strategy and an optional injected mutation — so that two runs
with equal configs produce byte-identical artifacts. The config
round-trips through plain JSON exactly like a campaign
:class:`~repro.campaign.scenario.Scenario` does.

Scope bounds of ``repro.mc`` v1 (see docs/MODELCHECK.md):

* the system is the paper's smallest interesting instance, ``n = 4``,
  ``F = 1``;
* at most one adversary seat, whose behaviour is chosen by the explorer
  from a small *action alphabet* instead of being a fixed attack script;
* self-channel deliveries are applied eagerly (a process always hears
  itself first), which removes the four self-channels from the
  interleaving space without hiding any cross-process race;
* exploration is bounded by depth, by visited-state count and by the
  protocol round number.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ConfigurationError

#: The bounded adversary-action alphabet (docs/MODELCHECK.md):
#:
#: * ``mute`` — stop sending anything from the moment of activation;
#: * ``equivocate-current`` — as round-1 coordinator, certify two
#:   different vectors and send one branch to each half of the system;
#: * ``forge-attempt`` — broadcast a message with forged signature bytes
#:   (a real attempt against the unforgeable-signature assumption);
#: * ``drop-delivery`` — withhold the oldest in-flight message on one
#:   outgoing channel (selective sending);
#: * ``suppress-d`` — the zoo's message adversary (docs/ADVERSARIES.md):
#:   withhold an in-flight CURRENT delivery, at most ``suppress_d`` per
#:   protocol round. Unlike ``drop-delivery`` it is round-bounded and
#:   phase-scoped, matching the ``(F, d)`` campaign axis.
ADVERSARY_ACTIONS = (
    "mute",
    "equivocate-current",
    "forge-attempt",
    "drop-delivery",
    "suppress-d",
)

#: Frontier disciplines: breadth-first layers (exhaustive up to the
#: depth bound) or depth-first dives (bug hunting).
STRATEGIES = ("bfs", "dfs")

#: The one system size v1 explores (the paper's n = 3F + 1 with F = 1).
MC_N = 4
MC_F = 1


@dataclass(frozen=True, slots=True)
class McConfig:
    """A point in the model checker's configuration space (immutable)."""

    n: int = MC_N
    f: int = MC_F
    #: The Byzantine seat the explorer controls (None: all-correct runs).
    adversary: int | None = None
    #: Subset of :data:`ADVERSARY_ACTIONS` the explorer may schedule.
    alphabet: tuple[str, ...] = ()
    #: Maximum path length (transitions from the initial state).
    max_depth: int = 6
    #: Maximum number of distinct state digests to visit.
    max_states: int = 20_000
    strategy: str = "bfs"
    #: Name of an injected known-bad mutation (``repro.mc.mutations``),
    #: or None for the real protocol.
    mutation: str | None = None
    seed: int = 0
    #: States whose correct processes passed this round are not expanded.
    max_rounds: int = 2
    #: Stop at the first violated predicate (bug hunting) instead of
    #: exploring the whole bounded space.
    stop_on_violation: bool = False
    #: Per-round budget of the ``suppress-d`` action (ignored unless the
    #: alphabet contains it).
    suppress_d: int = 1

    # -- identity -----------------------------------------------------------

    @property
    def config_id(self) -> str:
        """Stable content hash of the full config (``mc`` + 12 hex chars)."""
        canonical = json.dumps(
            self.to_config(), sort_keys=True, separators=(",", ":")
        )
        return "mc" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]

    # -- config round-trip ---------------------------------------------------

    def to_config(self) -> dict[str, Any]:
        """Plain-JSON rendering; :meth:`from_config` inverts it exactly."""
        return {
            "n": self.n,
            "f": self.f,
            "adversary": self.adversary,
            "alphabet": list(self.alphabet),
            "max_depth": self.max_depth,
            "max_states": self.max_states,
            "strategy": self.strategy,
            "mutation": self.mutation,
            "seed": self.seed,
            "max_rounds": self.max_rounds,
            "stop_on_violation": self.stop_on_violation,
            "suppress_d": self.suppress_d,
        }

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "McConfig":
        """Rebuild a config from :meth:`to_config` output."""
        try:
            return cls(
                n=int(config.get("n", MC_N)),
                f=int(config.get("f", MC_F)),
                adversary=(
                    None
                    if config.get("adversary") is None
                    else int(config["adversary"])
                ),
                alphabet=tuple(str(a) for a in (config.get("alphabet") or ())),
                max_depth=int(config.get("max_depth", 6)),
                max_states=int(config.get("max_states", 20_000)),
                strategy=str(config.get("strategy", "bfs")),
                mutation=(
                    None
                    if config.get("mutation") is None
                    else str(config["mutation"])
                ),
                seed=int(config.get("seed", 0)),
                max_rounds=int(config.get("max_rounds", 2)),
                stop_on_violation=bool(config.get("stop_on_violation", False)),
                suppress_d=int(config.get("suppress_d", 1)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed mc config: {exc}") from exc

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on any inconsistency.

        The exhaustive pre-flight check behind the CLI's exit-2
        convention: a config that validates explores without tracebacks.
        """
        from repro.mc.mutations import MUTATIONS

        if self.n != MC_N or self.f != MC_F:
            raise ConfigurationError(
                f"repro.mc v1 explores exactly n={MC_N}, F={MC_F} "
                f"(got n={self.n}, F={self.f}); see docs/MODELCHECK.md"
            )
        for action in self.alphabet:
            if action not in ADVERSARY_ACTIONS:
                raise ConfigurationError(
                    f"unknown adversary action {action!r}; known: "
                    f"{list(ADVERSARY_ACTIONS)}"
                )
        if len(set(self.alphabet)) != len(self.alphabet):
            raise ConfigurationError("duplicate adversary action in alphabet")
        if self.alphabet and self.adversary is None:
            raise ConfigurationError(
                "an adversary action alphabet needs an adversary seat"
            )
        if self.adversary is not None and not 0 <= self.adversary < self.n:
            raise ConfigurationError(
                f"adversary seat {self.adversary} out of range for n={self.n}"
            )
        if self.adversary is not None and not self.alphabet:
            raise ConfigurationError(
                "an adversary seat without an action alphabet is inert; "
                "drop the seat or give it actions"
            )
        if self.strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown strategy {self.strategy!r}; known: {list(STRATEGIES)}"
            )
        if self.max_depth < 1:
            raise ConfigurationError(
                f"max_depth must be positive, got {self.max_depth}"
            )
        if self.max_states < 1:
            raise ConfigurationError(
                f"max_states must be positive, got {self.max_states}"
            )
        if self.max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be positive, got {self.max_rounds}"
            )
        if not 1 <= self.suppress_d < self.n:
            raise ConfigurationError(
                f"suppress_d must be in 1..{self.n - 1}, got {self.suppress_d}"
            )
        if self.seed < 0:
            raise ConfigurationError(f"negative seed {self.seed}")
        if self.mutation is not None and self.mutation not in MUTATIONS:
            raise ConfigurationError(
                f"unknown mutation {self.mutation!r}; known: "
                f"{sorted(MUTATIONS)}"
            )
