"""Canonical state digests for memoized pruning.

Replay-based exploration identifies a state with the path that produced
it; the digest is what lets two different paths be recognised as having
*converged* so the subtree is explored once. The digest must therefore
cover everything that can influence future behaviour and nothing that
cannot:

**Included** — per-process protocol state (phase, round, vector,
certificate digests, vote booleans, buffered futures, the INIT
builder), the decision slots, each monitor bank (automaton states,
``faulty`` sets, the equivocation ledger), each ◇M detector's
``suspected`` set, the adversary's activated modes, the FIFO contents of
every network channel, and the multiset of pending non-delivery events
(timers, detector polls).

**Excluded** — the virtual clock, event timestamps and sequence
numbers, metrics, traces, and decision times. Two interleavings that
reach the same protocol/network state at different virtual times behave
identically from there on (the protocol never reads the clock; timers
fire relative to *pending events*, which are covered), so folding them
is sound. docs/MODELCHECK.md spells the argument out; the
cache-equivalence test (tests/test_mc_explorer.py) guards the related
claim that the crypto verdict caches never leak into digests.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.consensus.transformed import TransformedConsensusProcess
from repro.core.certificates import SignedMessage
from repro.errors import ProtocolError
from repro.mc.adversary import ScriptedAdversary
from repro.systems import ConsensusSystem


def payload_id(payload: Any) -> str:
    """Stable identity of one in-flight message payload.

    Signed envelopes hash by their pruning-invariant encoding; anything
    else (raw bodies sent by unsigned attackers) falls back to its
    ``repr``, which is deterministic for the frozen message dataclasses.
    """
    if isinstance(payload, SignedMessage):
        return payload.envelope_digest()[:16]
    return "raw:" + repr(payload)


def _vector(value: Any) -> Any:
    if isinstance(value, tuple):
        return list(value)
    return value


def _process_state(process: TransformedConsensusProcess) -> dict[str, Any]:
    if not isinstance(process, TransformedConsensusProcess):
        raise ProtocolError(
            f"repro.mc digests transformed processes only, got "
            f"{type(process).__name__}"
        )
    bank = process.monitor_bank
    state: dict[str, Any] = {
        "phase": process.phase,
        "round": process.round,
        "est_vect": _vector(process.est_vect),
        "est_cert": process.est_cert.digest().hex,
        "next_cert": process.next_cert.digest().hex,
        "current_cert": process.current_cert.digest().hex,
        "sent_current": process.sent_current,
        "sent_next": process.sent_next,
        "decided": process.decided,
        "decision": _vector(process.decision),
        "decision_round": process.decision_round,
        "justification": (
            None
            if process.decision_justification is None
            else process.decision_justification.envelope_digest()[:16]
        ),
        "inits": sorted(
            (sender, payload_id(message))
            for sender, message in process._vector_builder.collected.items()
        ),
        "future": {
            str(rnd): [payload_id(m) for m in messages]
            for rnd, messages in sorted(process._future.items())
        },
        "faulty": sorted(bank.faulty),
        "monitors": {
            str(peer): [monitor.state, getattr(monitor, "round", -1)]
            for peer, monitor in sorted(bank.monitors.items())
        },
        "ledger": (
            [] if bank.ledger is None else [list(t) for t in bank.ledger.snapshot()]
        ),
        "suspected": (
            []
            if process.detector is None
            else sorted(process.detector.suspected)
        ),
    }
    if isinstance(process, ScriptedAdversary):
        state["modes"] = sorted(process.modes)
        state["equivocated"] = process.equivocated
        state["stash"] = sorted(process._all_inits)
    return state


def canonical_state(system: ConsensusSystem) -> dict[str, Any]:
    """The complete digestable view of one explored state."""
    channels: dict[str, list[str]] = {}
    timers: dict[str, int] = {}
    for event in system.world.scheduler.pending():
        meta = event.meta
        if meta is not None and meta[0] == "deliver":
            _kind, src, dst, payload = meta
            channels.setdefault(f"{src}->{dst}", []).append(payload_id(payload))
        else:
            timers[event.kind] = timers.get(event.kind, 0) + 1
    return {
        "processes": [
            _process_state(process)  # type: ignore[arg-type]
            for process in system.processes
        ],
        "channels": {key: channels[key] for key in sorted(channels)},
        "timers": {key: timers[key] for key in sorted(timers)},
    }


def state_digest(system: ConsensusSystem) -> str:
    """SHA-256 hex over the canonical JSON rendering of the state."""
    canonical = json.dumps(
        canonical_state(system), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
