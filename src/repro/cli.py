"""Command-line interface: run and inspect reproductions from a shell.

Usage (``python -m repro <command> ...``):

* ``run`` — one consensus instance (any protocol, faults, attacks), with
  optional trace chart / JSON export;
* ``gallery`` — the full attack gallery against the transformed protocol
  as a table;
* ``attacks`` — list the attack catalogues and their fault profiles;
* ``params`` — the resilience arithmetic for a system size;
* ``report`` — aggregate a ``--metrics-out`` JSONL artifact into
  per-module / per-round tables (or JSON);
* ``campaign`` — scenario-matrix fault-injection campaigns with
  replayable counterexamples (``run`` / ``list`` / ``replay`` /
  ``shrink``; see ``docs/TESTING.md``);
* ``service`` — the long-lived BFT replicated key-value service:
  clients, batching, pipelining, checkpoints and state transfer
  (``run`` / ``campaign``; see ``docs/SERVICE.md``);
* ``net`` — the deployed runtime: the same replica stack as real OS
  processes over TCP (``keygen`` / ``replica`` / ``client`` /
  ``cluster``; see ``docs/NET.md``);
* ``shard`` — the sharded multi-group service: partition the key space
  across independent replicated groups for aggregate throughput
  (``keygen`` / ``route`` / ``client`` / ``cluster`` / ``loopback``;
  see ``docs/SHARDING.md``);
* ``mc`` — small-scope model checking: drive the real module stack
  through *all* interleavings of a bounded world, check the paper's
  safety properties in every reachable state, and emit counterexamples
  as shrinkable campaign scenarios (``run`` / ``resume`` / ``replay``;
  see docs/MODELCHECK.md);
* ``perf`` — the deterministic performance smoke: a short saturation
  run plus a cached/uncached equivalence check, exported as canonical
  JSON for byte-identity pinning (``smoke``; see docs/PERFORMANCE.md).

Invalid configurations (unknown attacks, malformed ``PID:VALUE`` pairs,
fault plans beyond the resilience bounds, ...) exit with status 2 via
:class:`~repro.errors.ConfigurationError` — never a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.properties import (
    check_crash_consensus,
    check_detection,
    check_vector_consensus,
)
from repro.analysis.reporting import print_table
from repro.analysis.run_report import RunReport
from repro.analysis.tracefmt import render_sequence, trace_to_json
from repro.observability.export import read_run_jsonl, write_run_jsonl
from repro.byzantine import (
    CRASH_ATTACKS,
    TRANSFORMED_ATTACKS,
    crash_attack,
    transformed_attack,
)
from repro.byzantine.ct_attacks import CT_ATTACKS, ct_attack
from repro.core.specs import SystemParameters, certification_resilience, crash_resilience
from repro.errors import ConfigurationError, ReproError
from repro.sim.network import LinkModel, Partition
from repro.sim.world import TRANSPORTS
from repro.systems import build_crash_system, build_transformed_system

CRASH_PROTOCOLS = ("hurfin-raynal", "chandra-toueg")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Baldoni/Hélary/Raynal (DSN 2000): "
        "crash-to-arbitrary fault-tolerance transformation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one consensus instance")
    run.add_argument("--n", type=int, default=4, help="number of processes")
    run.add_argument(
        "--protocol",
        choices=("transformed",) + CRASH_PROTOCOLS,
        default="transformed",
    )
    run.add_argument(
        "--variant",
        choices=("standard", "echo-init"),
        default="standard",
        help="transformed-protocol variant",
    )
    run.add_argument(
        "--base",
        choices=("hurfin-raynal", "chandra-toueg"),
        default="hurfin-raynal",
        help="which crash protocol the transformation was applied to",
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="PID:TIME",
        help="crash PID at virtual TIME (repeatable)",
    )
    run.add_argument(
        "--attack",
        action="append",
        default=[],
        metavar="PID:NAME",
        help="install a Byzantine behaviour (repeatable)",
    )
    run.add_argument("--max-time", type=float, default=3_000.0)
    run.add_argument(
        "--loss",
        type=float,
        default=0.0,
        help="per-link drop probability in [0, 1) (docs/NETWORK.md)",
    )
    run.add_argument(
        "--dup",
        type=float,
        default=0.0,
        help="per-link duplication probability in [0, 1)",
    )
    run.add_argument(
        "--reorder",
        type=float,
        default=0.0,
        help="per-link burst-reorder probability in [0, 1)",
    )
    run.add_argument(
        "--partition",
        action="append",
        default=[],
        metavar="START:HEAL:GROUPS",
        help="sever cross-group links during [START, HEAL), e.g. "
        "40:120:0,1|2,3 (repeatable)",
    )
    run.add_argument(
        "--transport",
        choices=TRANSPORTS,
        default="none",
        help="reliable-channel layer over the faulty wire "
        "(no-retransmit is the ablation)",
    )
    run.add_argument(
        "--muteness",
        choices=("oracle", "timeout", "round-aware", "adaptive"),
        default="oracle",
        help="◇M implementation (transformed protocol only)",
    )
    run.add_argument(
        "--chart", action="store_true", help="print the message-sequence chart"
    )
    run.add_argument(
        "--chart-rows", type=int, default=60, help="chart row budget"
    )
    run.add_argument(
        "--json", metavar="FILE", help="export the trace as JSON to FILE"
    )
    run.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="export metrics + trace as a schema-versioned JSONL artifact "
        "(read it back with `python -m repro report FILE`)",
    )

    report = sub.add_parser(
        "report", help="aggregate JSONL run artifacts into tables"
    )
    report.add_argument(
        "artifact",
        nargs="+",
        help="one or more .jsonl files written by --metrics-out / "
        "--metrics-dir; several files render per-pid rows grouped by "
        "artifact",
    )
    report.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )

    gallery = sub.add_parser(
        "gallery", help="run every attack against the transformed protocol"
    )
    gallery.add_argument("--n", type=int, default=4)
    gallery.add_argument("--seed", type=int, default=0)

    attacks = sub.add_parser("attacks", help="list the attack catalogues")
    attacks.add_argument(
        "--model",
        choices=("crash", "transformed", "both"),
        default="both",
    )

    params = sub.add_parser("params", help="resilience arithmetic for n")
    params.add_argument("--n", type=int, required=True)

    campaign = sub.add_parser(
        "campaign",
        help="scenario-matrix fault-injection campaigns (docs/TESTING.md)",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    c_run = campaign_sub.add_parser(
        "run", help="enumerate and run a campaign, export a JSONL artifact"
    )
    c_run.add_argument(
        "--preset",
        default="smoke",
        help="campaign preset: smoke (~55 scenarios), full (220), or the "
        "link-fault matrices lossy / partition (docs/NETWORK.md)",
    )
    c_run.add_argument("--master-seed", type=int, default=0)
    c_run.add_argument(
        "--out",
        metavar="FILE",
        help="write the campaign artifact (JSONL, repro.campaign/v1) here",
    )
    c_run.add_argument(
        "--max-scenarios",
        type=int,
        help="truncate the enumeration (debugging aid)",
    )
    c_run.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip the automatic shrink of failing scenarios",
    )
    c_run.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )

    c_list = campaign_sub.add_parser(
        "list", help="list the scenario ids a preset enumerates"
    )
    c_list.add_argument("--preset", default="smoke")
    c_list.add_argument("--master-seed", type=int, default=0)

    c_replay = campaign_sub.add_parser(
        "replay",
        help="re-run one recorded scenario and check the verdict reproduces",
    )
    c_replay.add_argument("id", help="scenario id (sXXXXXXXXXXXX)")
    c_replay.add_argument(
        "--artifact", required=True, help="campaign artifact holding the id"
    )
    c_replay.add_argument(
        "--json", action="store_true", help="emit the fresh record as JSON"
    )

    c_shrink = campaign_sub.add_parser(
        "shrink", help="minimise a recorded failing scenario"
    )
    c_shrink.add_argument("id", help="scenario id (sXXXXXXXXXXXX)")
    c_shrink.add_argument(
        "--artifact", required=True, help="campaign artifact holding the id"
    )

    def _add_fault_campaign_args(parser, preset_help: str) -> None:
        parser.add_argument("--preset", default="smoke", help=preset_help)
        parser.add_argument(
            "--plan",
            action="append",
            default=[],
            metavar="FILE",
            help="run this saved plan JSON instead of the preset (repeatable)",
        )
        parser.add_argument(
            "--fidelity",
            default="sim,loopback",
            metavar="F1,F2,...",
            help="comma-separated fidelities: sim, loopback, net",
        )
        parser.add_argument(
            "--out",
            metavar="FILE",
            help="write the cross-fidelity report (canonical JSON) here",
        )
        parser.add_argument(
            "--workdir",
            help="keep net-fidelity cluster state here (default: temp dirs)",
        )
        parser.add_argument(
            "--timeout", type=float, default=180.0,
            help="hard wall-clock cap per plan at the net fidelity (seconds)",
        )
        parser.add_argument(
            "--rehunt", type=int, default=0, metavar="K",
            help="flake hunting: re-run each verdict-disagreeing plan K more "
            "times per fidelity and report the verdict distribution",
        )
        parser.add_argument(
            "--shrink-out", metavar="DIR",
            help="delta-debug every plan that truly failed at the sim "
            "fidelity down to a minimal same-failure plan; write the "
            "shrunk plan JSONs here (docs/FAULTS.md)",
        )
        parser.add_argument(
            "--json", action="store_true", help="emit the report as JSON"
        )

    c_faults = campaign_sub.add_parser(
        "faults",
        help="run fault plans at several fidelities and cross-check the "
        "verdicts (docs/FAULTS.md)",
    )
    _add_fault_campaign_args(
        c_faults, "fault-plan preset: smoke or extended (docs/FAULTS.md)"
    )

    c_zoo = campaign_sub.add_parser(
        "zoo",
        help="run the adversary-zoo plan matrices across fidelities "
        "(docs/ADVERSARIES.md)",
    )
    _add_fault_campaign_args(
        c_zoo,
        "zoo preset: smoke, extended, sweep, or net-smoke "
        "(docs/ADVERSARIES.md)",
    )

    c_service = campaign_sub.add_parser(
        "service",
        help="run a service scenario preset with oracles (same engine as "
        "`service campaign`)",
    )
    c_service.add_argument("--preset", default="smoke")
    c_service.add_argument(
        "--out", metavar="FILE", help="write the records as JSON to FILE"
    )
    c_service.add_argument(
        "--json", action="store_true", help="emit the records as JSON"
    )

    service = sub.add_parser(
        "service",
        help="run the BFT replicated key-value service (docs/SERVICE.md)",
    )
    service_sub = service.add_subparsers(dest="service_command", required=True)

    s_run = service_sub.add_parser(
        "run", help="run one service deployment and report on it"
    )
    s_run.add_argument("--n", type=int, default=4, help="number of replicas")
    s_run.add_argument("--clients", type=int, default=2)
    s_run.add_argument("--mode", choices=("open", "closed"), default="open")
    s_run.add_argument(
        "--rate", type=float, default=2.0, help="open-loop arrival rate"
    )
    s_run.add_argument(
        "--think", type=float, default=1.0, help="closed-loop think time"
    )
    s_run.add_argument("--requests", type=int, default=20,
                       help="requests per client")
    s_run.add_argument("--batch-size", type=int, default=4)
    s_run.add_argument("--batch-delay", type=float, default=1.0)
    s_run.add_argument(
        "--window", type=int, default=2, help="pipelining window W"
    )
    s_run.add_argument(
        "--checkpoint-interval", type=int, default=2,
        help="checkpoint every K applied slots",
    )
    s_run.add_argument("--request-timeout", type=float, default=40.0)
    s_run.add_argument("--seed", type=int, default=0)
    s_run.add_argument(
        "--attack",
        action="append",
        default=[],
        metavar="PID:NAME",
        help="install a Byzantine consensus engine on a replica (repeatable)",
    )
    s_run.add_argument(
        "--recover",
        action="append",
        default=[],
        metavar="PID:DOWN:UP",
        help="take PID down at DOWN, restart (state transfer) at UP "
        "(repeatable)",
    )
    s_run.add_argument("--loss", type=float, default=0.0,
                       help="per-link drop probability in [0, 1)")
    s_run.add_argument("--transport", choices=TRANSPORTS, default="none")
    s_run.add_argument(
        "--delay-model",
        choices=("uniform", "fixed", "exponential"),
        default="uniform",
    )
    s_run.add_argument("--max-time", type=float, default=2_500.0)
    s_run.add_argument(
        "--json", metavar="FILE", help="export the run record as JSON to FILE"
    )

    s_campaign = service_sub.add_parser(
        "campaign", help="run a service scenario preset with oracles"
    )
    s_campaign.add_argument("--preset", default="smoke")
    s_campaign.add_argument(
        "--out", metavar="FILE", help="write the records as JSON to FILE"
    )
    s_campaign.add_argument(
        "--json", action="store_true", help="emit the records as JSON"
    )

    net = sub.add_parser(
        "net",
        help="deploy the replica stack as real processes over TCP "
        "(docs/NET.md)",
    )
    net_sub = net.add_subparsers(dest="net_command", required=True)

    n_keygen = net_sub.add_parser(
        "keygen", help="write a genesis file (addresses, seed, knobs)"
    )
    n_keygen.add_argument("--out", required=True, metavar="FILE")
    n_keygen.add_argument("--replicas", type=int, default=4)
    n_keygen.add_argument("--clients", type=int, default=4)
    n_keygen.add_argument("--seed", type=int, default=0)
    n_keygen.add_argument("--name", default="local")
    n_keygen.add_argument("--host", default="127.0.0.1")
    n_keygen.add_argument(
        "--base-port",
        type=int,
        default=0,
        help="replica i listens on base+i; 0 allocates free ports now",
    )

    n_replica = net_sub.add_parser(
        "replica", help="run one replica until SIGTERM/SIGINT"
    )
    n_replica.add_argument("--genesis", required=True, metavar="FILE")
    n_replica.add_argument("--pid", type=int, required=True)
    n_replica.add_argument(
        "--join",
        action="store_true",
        help="start by requesting certified state transfer (cold rejoin)",
    )
    n_replica.add_argument(
        "--metrics-dir",
        metavar="DIR",
        help="periodically export this node's JSONL metrics artifact here",
    )
    n_replica.add_argument(
        "--faults",
        metavar="FILE",
        help="execute this fault plan's link faults on outbound peer sends "
        "(docs/FAULTS.md)",
    )
    n_replica.add_argument(
        "--faults-origin",
        type=float,
        metavar="EPOCH",
        help="wall-clock epoch that maps to plan time zero (default: now)",
    )
    n_replica.add_argument(
        "--attack",
        metavar="NAME",
        help="run a Byzantine transformed-attack engine on this replica",
    )
    n_replica.add_argument(
        "--uvloop",
        action="store_true",
        help="run on uvloop if installed (REPRO_UVLOOP=1 works too); "
        "falls back to stock asyncio with a note when it is not",
    )

    n_client = net_sub.add_parser(
        "client", help="talk to a running cluster as a client"
    )
    n_client.add_argument("--genesis", required=True, metavar="FILE")
    n_client.add_argument("--index", type=int, default=0,
                          help="client identity index")
    n_client.add_argument(
        "op", choices=("set", "get", "status", "workload")
    )
    n_client.add_argument("operands", nargs="*",
                          help="set KEY VALUE | get KEY")
    n_client.add_argument("--requests", type=int, default=20,
                          help="workload size")
    n_client.add_argument("--concurrency", type=int, default=8)

    n_cluster = net_sub.add_parser(
        "cluster",
        help="spawn a local cluster, commit a workload through a "
        "kill+restart, assert convergence (the net smoke)",
    )
    n_cluster.add_argument("--replicas", type=int, default=4)
    n_cluster.add_argument("--requests", type=int, default=100)
    n_cluster.add_argument(
        "--kill", type=int, default=2,
        help="replica to SIGKILL mid-run and restart with --join",
    )
    n_cluster.add_argument("--seed", type=int, default=7)
    n_cluster.add_argument(
        "--workdir", help="keep genesis/logs/metrics here (default: temp)"
    )
    n_cluster.add_argument("--concurrency", type=int, default=8)

    shard = sub.add_parser(
        "shard",
        help="sharded multi-group service: partition the key space across "
        "independent replicated groups (docs/SHARDING.md)",
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)

    sh_keygen = shard_sub.add_parser(
        "keygen",
        help="write a shard genesis (per-shard addresses, derived seeds)",
    )
    sh_keygen.add_argument("--out", required=True, metavar="FILE")
    sh_keygen.add_argument("--shards", type=int, default=2)
    sh_keygen.add_argument("--replicas-per-shard", type=int, default=4)
    sh_keygen.add_argument("--clients", type=int, default=4)
    sh_keygen.add_argument("--seed", type=int, default=0)
    sh_keygen.add_argument("--name", default="sharded")
    sh_keygen.add_argument("--host", default="127.0.0.1")
    sh_keygen.add_argument(
        "--base-port",
        type=int,
        default=0,
        help="shard s replica i listens on base + s*replicas + i; "
        "0 allocates free ports now",
    )

    sh_route = shard_sub.add_parser(
        "route", help="show which shard each key routes to"
    )
    sh_route.add_argument("keys", nargs="+", help="keys to route")
    sh_route.add_argument(
        "--genesis", metavar="FILE", help="read the shard count from this file"
    )
    sh_route.add_argument(
        "--shards", type=int, help="shard count (instead of --genesis)"
    )

    sh_client = shard_sub.add_parser(
        "client", help="talk to a running sharded deployment as a client"
    )
    sh_client.add_argument("--genesis", required=True, metavar="FILE")
    sh_client.add_argument(
        "--index", type=int, default=0, help="client identity index"
    )
    sh_client.add_argument("op", choices=("set", "get", "status", "workload"))
    sh_client.add_argument(
        "operands", nargs="*", help="set KEY VALUE | get KEY"
    )
    sh_client.add_argument(
        "--requests", type=int, default=20, help="workload size"
    )
    sh_client.add_argument("--concurrency", type=int, default=8)

    sh_cluster = shard_sub.add_parser(
        "cluster",
        help="spawn every shard as a local TCP cluster, commit a workload "
        "through a kill+restart in one shard, assert per-shard "
        "convergence (the shard smoke)",
    )
    sh_cluster.add_argument("--shards", type=int, default=2)
    sh_cluster.add_argument("--replicas-per-shard", type=int, default=4)
    sh_cluster.add_argument("--requests", type=int, default=40)
    sh_cluster.add_argument(
        "--kill-shard", type=int, default=1,
        help="shard whose replica is SIGKILLed mid-run",
    )
    sh_cluster.add_argument(
        "--kill-pid", type=int, default=2,
        help="replica to SIGKILL and restart with --join",
    )
    sh_cluster.add_argument("--seed", type=int, default=7)
    sh_cluster.add_argument(
        "--workdir", help="keep genesis/logs/metrics here (default: temp)"
    )
    sh_cluster.add_argument("--concurrency", type=int, default=8)

    sh_loopback = shard_sub.add_parser(
        "loopback",
        help="run the deterministic in-process shard twin and emit its "
        "canonical record (byte-identical across runs)",
    )
    sh_loopback.add_argument("--shards", type=int, default=2)
    sh_loopback.add_argument("--replicas-per-shard", type=int, default=4)
    sh_loopback.add_argument("--requests", type=int, default=24)
    sh_loopback.add_argument("--seed", type=int, default=0)
    sh_loopback.add_argument(
        "--kill-shard", type=int, default=1,
        help="shard whose replica is killed and rejoined mid-run",
    )
    sh_loopback.add_argument("--kill-pid", type=int, default=2)
    sh_loopback.add_argument(
        "--no-kill", action="store_true", help="skip the kill/rejoin phase"
    )
    sh_loopback.add_argument(
        "--out",
        help="write the canonical JSON record to this file (default: stdout)",
    )

    mc = sub.add_parser(
        "mc",
        help="small-scope model checking of the real stack (docs/MODELCHECK.md)",
    )
    mc_sub = mc.add_subparsers(dest="mc_command", required=True)

    m_run = mc_sub.add_parser(
        "run",
        help="explore all interleavings of a bounded world, export an artifact",
    )
    m_run.add_argument(
        "--out",
        required=True,
        metavar="FILE",
        help="write the exploration artifact (JSONL, repro.mc/v1) here",
    )
    m_run.add_argument(
        "--strategy", choices=("bfs", "dfs"), default="bfs",
        help="bfs sweeps layer by layer; dfs dives (counterexample hunts)",
    )
    m_run.add_argument("--max-depth", type=int, default=6)
    m_run.add_argument("--max-states", type=int, default=20_000)
    m_run.add_argument(
        "--max-rounds", type=int, default=2,
        help="states past this protocol round are not expanded",
    )
    m_run.add_argument("--seed", type=int, default=0)
    m_run.add_argument(
        "--adversary", type=int, metavar="SEAT",
        help="seat of the scripted adversary (requires --alphabet)",
    )
    m_run.add_argument(
        "--alphabet", metavar="A,B,...",
        help="comma-separated adversary actions: mute, equivocate-current, "
        "forge-attempt, drop-delivery, suppress-d",
    )
    m_run.add_argument(
        "--suppress-d", type=int, default=1, metavar="D",
        help="per-round budget of the suppress-d action (default 1)",
    )
    m_run.add_argument(
        "--mutation", metavar="NAME",
        help="inject a known-bad protocol mutation (checker self-test)",
    )
    m_run.add_argument(
        "--stop-on-violation", action="store_true",
        help="stop at the first counterexample instead of sweeping on",
    )
    m_run.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )

    m_resume = mc_sub.add_parser(
        "resume", help="continue an interrupted exploration from its artifact"
    )
    m_resume.add_argument("artifact", help="repro.mc/v1 artifact to resume")
    m_resume.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )

    m_replay = mc_sub.add_parser(
        "replay",
        help="re-check a recorded counterexample and map it onto a "
        "campaign scenario",
    )
    m_replay.add_argument("artifact", help="repro.mc/v1 artifact with violations")
    m_replay.add_argument(
        "--index", type=int, default=0,
        help="which recorded violation to replay (default: first)",
    )
    m_replay.add_argument(
        "--shrink", action="store_true",
        help="hand the mapped scenario to the campaign shrinker",
    )
    m_replay.add_argument(
        "--json", action="store_true", help="emit the result as JSON"
    )

    perf = sub.add_parser(
        "perf",
        help="deterministic performance smoke (docs/PERFORMANCE.md)",
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)
    p_smoke = perf_sub.add_parser(
        "smoke",
        help="short saturation run + cached/uncached equivalence check",
    )
    p_smoke.add_argument(
        "--out",
        help="write the canonical JSON record to this file (default: stdout)",
    )

    experiments = sub.add_parser(
        "experiments",
        help="regenerate experiment tables (E1..E18) outside pytest",
    )
    experiments.add_argument(
        "--only",
        help="comma-separated experiment ids, e.g. e3,e13 (default: list them)",
    )
    experiments.add_argument(
        "--list", action="store_true", help="list available experiments"
    )

    return parser


def _parse_pairs(pairs: list[str], what: str) -> dict[int, str]:
    parsed: dict[int, str] = {}
    for pair in pairs:
        pid_text, _, value = pair.partition(":")
        if not value:
            raise ConfigurationError(
                f"--{what} expects PID:VALUE, got {pair!r}"
            )
        try:
            pid = int(pid_text)
        except ValueError:
            raise ConfigurationError(
                f"--{what} expects an integer PID, got {pid_text!r} "
                f"in {pair!r}"
            ) from None
        parsed[pid] = value
    return parsed


def _parse_partitions(specs: list[str]) -> tuple[Partition, ...]:
    partitions = []
    for spec in specs:
        parts = spec.split(":")
        if len(parts) != 3:
            raise ConfigurationError(
                f"--partition expects START:HEAL:GROUPS, got {spec!r}"
            )
        start_text, heal_text, groups_text = parts
        try:
            start, heal = float(start_text), float(heal_text)
            groups = tuple(
                tuple(int(pid) for pid in side.split(","))
                for side in groups_text.split("|")
            )
        except ValueError:
            raise ConfigurationError(
                f"--partition expects numeric START:HEAL and GROUPS like "
                f"0,1|2,3, got {spec!r}"
            ) from None
        partitions.append(Partition(start=start, heal=heal, groups=groups))
    return tuple(partitions)


def _build_link_model(args: argparse.Namespace) -> LinkModel | None:
    partitions = _parse_partitions(args.partition)
    if not (args.loss or args.dup or args.reorder or partitions):
        return None
    return LinkModel(
        loss=args.loss,
        duplication=args.dup,
        reorder=args.reorder,
        partitions=partitions,
    )


def _parse_crashes(pairs: list[str]) -> dict[int, float]:
    crashes: dict[int, float] = {}
    for pid, time_text in _parse_pairs(pairs, "crash").items():
        try:
            crashes[pid] = float(time_text)
        except ValueError:
            raise ConfigurationError(
                f"--crash expects PID:TIME with a numeric TIME, got "
                f"{time_text!r} for pid {pid}"
            ) from None
    return crashes


def cmd_run(args: argparse.Namespace) -> int:
    crash_at = _parse_crashes(args.crash)
    attack_names = _parse_pairs(args.attack, "attack")
    link_model = _build_link_model(args)
    proposals = [f"v{i}" for i in range(args.n)]
    if args.protocol == "transformed":
        byzantine = {}
        attack_maker = (
            transformed_attack if args.base == "hurfin-raynal" else ct_attack
        )
        for pid, name in attack_names.items():
            byzantine.update(attack_maker(pid, name))
        system = build_transformed_system(
            proposals,
            byzantine=byzantine,
            crash_at=crash_at,
            seed=args.seed,
            variant=args.variant,
            base=args.base,
            muteness=args.muteness,
            link_model=link_model,
            transport=args.transport,
        )
        system.run(max_time=args.max_time)
        report = check_vector_consensus(system)
    else:
        if args.muteness != "oracle":
            raise ConfigurationError(
                "--muteness selects a ◇M detector; crash protocols use ◇S"
            )
        byzantine = {}
        for pid, name in attack_names.items():
            byzantine.update(crash_attack(pid, name))
        system = build_crash_system(
            proposals,
            byzantine=byzantine,
            crash_at=crash_at,
            protocol=args.protocol,
            seed=args.seed,
            link_model=link_model,
            transport=args.transport,
        )
        system.run(max_time=args.max_time)
        report = check_crash_consensus(system)

    print(f"run finished: {system.result.reason} at t={system.result.end_time:.2f}, "
          f"{system.world.network.messages_sent} messages")
    if link_model is not None:
        transport = system.world.transport
        print(
            f"link faults: {system.world.network.messages_dropped} dropped, "
            f"{system.world.network.messages_duplicated} duplicated, "
            f"{transport.retransmissions if transport else 0} retransmitted "
            f"(transport={args.transport})"
        )
    for pid in sorted(system.correct_pids):
        process = system.processes[pid]
        state = f"decided {process.decision!r} (round {process.decision_round})" \
            if process.decided else "undecided"
        print(f"  p{pid}: {state}")
    detection = check_detection(system)
    if detection.detectors_per_culprit:
        print(f"detections: {detection.detectors_per_culprit}")
    print(f"properties: termination={report.termination} "
          f"agreement={report.agreement} validity={report.validity}")
    for violation in report.violations:
        print(f"  violation: {violation}")
    if args.chart:
        print()
        print(render_sequence(system.world.trace, args.n, max_events=args.chart_rows))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(trace_to_json(system.world.trace))
        print(f"trace exported to {args.json}")
    if args.metrics_out:
        write_run_jsonl(
            args.metrics_out,
            system.world.trace,
            system.world.metrics,
            meta={
                "n": args.n,
                "seed": args.seed,
                "protocol": args.protocol,
                "variant": args.variant,
                "base": args.base,
                "attacks": dict(sorted(attack_names.items())),
                "crashes": {pid: crash_at[pid] for pid in sorted(crash_at)},
            },
        )
        print(f"metrics artifact exported to {args.metrics_out}")
    return 0 if report.all_hold else 1


def cmd_report(args: argparse.Namespace) -> int:
    if len(args.artifact) == 1:
        run_report = RunReport.from_artifact(read_run_jsonl(args.artifact[0]))
        if args.json:
            import json

            print(json.dumps(run_report.to_json(), indent=2, sort_keys=True))
        else:
            print(run_report.render())
        return 0

    from repro.analysis.run_report import artifacts_to_json, render_artifacts

    items = [(path, read_run_jsonl(path)) for path in args.artifact]
    if args.json:
        import json

        print(json.dumps(artifacts_to_json(items), indent=2, sort_keys=True))
    else:
        print(render_artifacts(items))
    return 0


def cmd_gallery(args: argparse.Namespace) -> int:
    proposals = [f"v{i}" for i in range(args.n)]
    rows = []
    worst = 0
    for name in sorted(TRANSFORMED_ATTACKS):
        seat = 0 if name in ("equivocate-current", "wrong-cert-current") else args.n - 1
        system = build_transformed_system(
            proposals,
            byzantine=transformed_attack(seat, name),
            seed=args.seed,
        )
        system.run(max_time=3_000.0)
        report = check_vector_consensus(system)
        detection = check_detection(system)
        rows.append(
            [
                name,
                "yes" if report.all_hold else "NO",
                detection.detectors_per_culprit.get(seat, 0),
                "yes" if seat in detection.suspected_by_any else "no",
            ]
        )
        if not report.all_hold:
            worst = 1
    print_table(
        f"attack gallery (n={args.n}, seed={args.seed})",
        ["attack", "safe", "convictions", "suspected"],
        rows,
    )
    return worst


def cmd_attacks(args: argparse.Namespace) -> int:
    def rows_for(catalog):
        return [
            [
                cls.profile.name,
                cls.profile.failure_class.value,
                cls.profile.detecting_module.value,
                cls.profile.description,
            ]
            for cls in sorted(catalog.values(), key=lambda c: c.profile.name)
        ]

    headers = ["name", "failure class", "owning module", "description"]
    if args.model in ("crash", "both"):
        print_table("crash-model attacks (Figure 2 victims)", headers,
                    rows_for(CRASH_ATTACKS))
    if args.model in ("transformed", "both"):
        print_table("transformed-model attacks (Figure 3 targets)", headers,
                    rows_for(TRANSFORMED_ATTACKS))
        print_table("transformed-CT attacks (second case study)", headers,
                    rows_for(CT_ATTACKS))
    return 0


def cmd_params(args: argparse.Namespace) -> int:
    params = SystemParameters.for_n(args.n)
    print(f"n                          = {params.n}")
    print(f"crash resilience           = {crash_resilience(args.n)}  (floor((n-1)/2))")
    print(f"certification resilience C = {certification_resilience(args.n)}  (floor((n-1)/3))")
    print(f"arbitrary-fault bound F    = {params.f}  (min of the two)")
    print(f"quorum n-F                 = {params.quorum}")
    print(f"vector validity floor n-2F = {params.alpha}")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import (
        enumerate_scenarios,
        read_campaign_jsonl,
        run_campaign,
        run_scenario,
        shrink_scenario,
        write_campaign_jsonl,
    )
    from repro.campaign.matrix import campaign_spec

    if args.campaign_command in ("faults", "zoo"):
        return _faults_campaign(args)

    if args.campaign_command == "service":
        return _service_campaign(args.preset, args.out, args.json)

    if args.campaign_command == "list":
        spec = campaign_spec(args.preset)
        scenarios = enumerate_scenarios(spec, master_seed=args.master_seed)
        rows = [
            [
                scenario.scenario_id,
                scenario.protocol,
                scenario.n,
                scenario.seed,
                scenario.delay_model,
                _fault_plan(scenario),
            ]
            for scenario in scenarios
        ]
        print_table(
            f"campaign {args.preset!r} (master seed {args.master_seed}, "
            f"{len(scenarios)} scenarios)",
            ["id", "protocol", "n", "seed", "delay", "fault plan"],
            rows,
        )
        return 0

    if args.campaign_command == "run":
        spec = campaign_spec(args.preset)
        scenarios = enumerate_scenarios(spec, master_seed=args.master_seed)
        if args.max_scenarios is not None:
            if args.max_scenarios < 1:
                raise ConfigurationError(
                    f"--max-scenarios must be positive, got {args.max_scenarios}"
                )
            scenarios = scenarios[: args.max_scenarios]
        result = run_campaign(scenarios)
        meta = {
            "preset": args.preset,
            "master_seed": args.master_seed,
            "scenarios": len(scenarios),
        }
        if args.out:
            write_campaign_jsonl(args.out, result, meta=meta)
        summary = result.summary()
        if args.json:
            import json

            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print_table(
                f"campaign {args.preset!r} (master seed {args.master_seed})",
                ["verdict", "scenarios"],
                [[verdict, count] for verdict, count in summary["verdicts"].items()],
            )
            print_table(
                "failure-class coverage (Section-2 taxonomy)",
                ["failure class", "scenarios"],
                [
                    [failure_class, count]
                    for failure_class, count in summary[
                        "failure_class_coverage"
                    ].items()
                ],
            )
            if args.out:
                print(f"campaign artifact exported to {args.out}")
        for record in result.failures:
            print(f"FAIL {record.scenario_id}: {'; '.join(record.outcome.violations)}")
            if not args.no_shrink:
                shrink = shrink_scenario(record.scenario)
                print(
                    f"  minimal counterexample {shrink.minimal.scenario_id}: "
                    f"{shrink.minimal.to_config()}"
                )
                for step in shrink.steps:
                    print(f"    {step}")
        return 1 if result.failures else 0

    artifact = read_campaign_jsonl(args.artifact)
    scenario = artifact.scenario_for(args.id)
    if args.campaign_command == "replay":
        recorded = artifact.find(args.id)
        fresh = run_scenario(scenario)
        fresh_record = fresh.to_record()
        if args.json:
            import json

            print(json.dumps(fresh_record, indent=2, sort_keys=True))
        reproduced = recorded == fresh_record
        print(
            f"replay {args.id}: verdict={fresh.verdict} "
            f"({'matches the artifact' if reproduced else 'DIVERGED from the artifact'})"
        )
        if not reproduced:
            for key in sorted(set(recorded) | set(fresh_record)):
                if recorded.get(key) != fresh_record.get(key):
                    print(f"  {key}: recorded {recorded.get(key)!r}")
                    print(f"  {key}: fresh    {fresh_record.get(key)!r}")
        return 0 if reproduced else 1

    # shrink
    shrink = shrink_scenario(scenario)
    print(f"shrink {args.id} ({shrink.candidates_tried} candidates tried):")
    for step in shrink.steps:
        print(f"  {step}")
    if not shrink.shrunk:
        print("  already minimal")
    print(
        f"minimal scenario {shrink.minimal.scenario_id} "
        f"(verdict {shrink.record.verdict}):"
    )
    import json

    print(json.dumps(shrink.minimal.to_config(), indent=2, sort_keys=True))
    return 0


def _fault_plan(scenario) -> str:
    parts = [f"p{pid}:{name}" for pid, name in scenario.attacks]
    parts += [f"p{pid}@{time:g}" for pid, time in scenario.crashes]
    if scenario.collusion is not None:
        parts.append(scenario.collusion)
    if scenario.variant != "standard":
        parts.append(scenario.variant)
    if scenario.loss:
        parts.append(f"loss={scenario.loss:g}")
    if scenario.dup:
        parts.append(f"dup={scenario.dup:g}")
    if scenario.reorder:
        parts.append(f"reorder={scenario.reorder:g}")
    for start, heal, groups in scenario.partitions:
        parts.append(f"partition[{start:g},{heal:g}){groups}")
    if scenario.transport != "none":
        parts.append(scenario.transport)
    return " ".join(parts) or "fault-free"


def _parse_recoveries(specs: list[str]) -> tuple[tuple[int, float, float], ...]:
    recoveries = []
    for spec in specs:
        parts = spec.split(":")
        if len(parts) != 3:
            raise ConfigurationError(
                f"--recover expects PID:DOWN:UP, got {spec!r}"
            )
        try:
            recoveries.append((int(parts[0]), float(parts[1]), float(parts[2])))
        except ValueError:
            raise ConfigurationError(
                f"--recover expects numeric PID:DOWN:UP, got {spec!r}"
            ) from None
    return tuple(sorted(recoveries))


def _print_service_record(record: dict) -> None:
    service = record["service"]
    latency = record["latency"]
    print_table(
        f"service run {record['id']} ({record['config']['name']})",
        ["measure", "value"],
        [
            ["verdict", record["verdict"]],
            ["end reason", record["run"]["end_reason"]],
            ["virtual end time", f"{record['run']['end_time']:.2f}"],
            ["messages sent", record["run"]["messages_sent"]],
            ["commands committed", service["committed_commands"]],
            ["requests completed", service["completed_requests"]],
            ["certified checkpoints", service["certified_checkpoints"]],
            ["state transfers", service["state_transfers"]],
            ["client resubmissions", service["resubmissions"]],
            ["latency p50", latency["p50"]],
            ["latency p99", latency["p99"]],
        ],
    )
    for violation in record["violations"]:
        print(f"  violation: {violation}")


def cmd_service(args: argparse.Namespace) -> int:
    import json

    from repro.service import ServiceScenario, run_service_scenario

    if args.service_command == "run":
        attack_names = _parse_pairs(args.attack, "attack")
        scenario = ServiceScenario(
            name="cli",
            n_replicas=args.n,
            n_clients=args.clients,
            mode=args.mode,
            rate=args.rate,
            think=args.think,
            requests_per_client=args.requests,
            batch_size=args.batch_size,
            batch_delay=args.batch_delay,
            window=args.window,
            checkpoint_interval=args.checkpoint_interval,
            request_timeout=args.request_timeout,
            seed=args.seed,
            attacks=tuple(sorted(attack_names.items())),
            recoveries=_parse_recoveries(args.recover),
            loss=args.loss,
            transport=args.transport,
            delay_model=args.delay_model,
            max_time=args.max_time,
        )
        record = run_service_scenario(scenario)
        _print_service_record(record)
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"run record exported to {args.json}")
        return 0 if record["verdict"] == "pass" else 1

    # campaign (also reachable as `repro campaign service`)
    return _service_campaign(args.preset, args.out, args.json)


def _service_campaign(preset: str, out: str | None, as_json: bool) -> int:
    """The service campaign engine behind both CLI spellings."""
    import json

    from repro.service import run_service_scenario, service_preset

    records = [
        run_service_scenario(scenario) for scenario in service_preset(preset)
    ]
    payload = json.dumps(records, indent=2, sort_keys=True) + "\n"
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(payload)
    if as_json:
        print(payload, end="")
    else:
        print_table(
            f"service campaign {preset!r} ({len(records)} scenarios)",
            ["scenario", "verdict", "commands", "checkpoints", "transfers",
             "p50", "p99"],
            [
                [
                    record["config"]["name"],
                    record["verdict"],
                    record["service"]["committed_commands"],
                    record["service"]["certified_checkpoints"],
                    record["service"]["state_transfers"],
                    record["latency"]["p50"],
                    record["latency"]["p99"],
                ]
                for record in records
            ],
        )
        if out:
            print(f"campaign records exported to {out}")
    failures = [r for r in records if r["verdict"] != "pass"]
    for record in failures:
        print(
            f"FAIL {record['config']['name']}: "
            f"{'; '.join(record['violations'])}"
        )
    return 1 if failures else 0


def _faults_campaign(args: argparse.Namespace) -> int:
    """`repro campaign faults` / `repro campaign zoo`: the cross-fidelity
    fault-plan engine over the v1 presets or the adversary-zoo matrices."""
    from repro.faults import FAULT_PRESETS, FaultPlan, run_cross_fidelity

    if args.campaign_command == "zoo":
        from repro.zoo.presets import ZOO_PRESETS as presets
    else:
        presets = FAULT_PRESETS
    if args.plan:
        plans = tuple(FaultPlan.load(path) for path in args.plan)
    else:
        preset = presets.get(args.preset)
        if preset is None:
            raise ConfigurationError(
                f"unknown {args.campaign_command} preset {args.preset!r}; "
                f"known: {sorted(presets)}"
            )
        plans = preset
    fidelities = tuple(
        part.strip() for part in args.fidelity.split(",") if part.strip()
    )
    if not fidelities:
        raise ConfigurationError("--fidelity needs at least one fidelity")
    report = run_cross_fidelity(
        plans,
        fidelities,
        workdir=args.workdir,
        timeout=args.timeout,
        progress=lambda line: print(f"  running {line}", file=sys.stderr),
        rehunt=args.rehunt,
    )
    if args.out:
        report.save(args.out)
    if args.json:
        print(report.dumps(), end="")
    else:
        print_table(
            f"cross-fidelity fault campaign ({len(report.results)} plans "
            f"@ {', '.join(fidelities)})",
            ["plan", "id", "expect"]
            + list(fidelities)
            + ["agree", "expected"],
            [
                [
                    result.plan.name,
                    result.plan.plan_id,
                    result.plan.expect,
                ]
                + [
                    result.verdicts.get(fidelity, "-")
                    for fidelity in fidelities
                ]
                + [
                    "yes" if result.agree else "NO",
                    "yes" if result.expected else "NO",
                ]
                for result in report.results
            ],
        )
        if args.out:
            print(f"cross-fidelity report exported to {args.out}")
    for result in report.results:
        for fidelity, (verdict, violations, _obs) in sorted(
            result.outcomes.items()
        ):
            if verdict == "fail":
                print(
                    f"FAIL {result.plan.name} @ {fidelity}: "
                    f"{'; '.join(violations)}"
                )
        if result.rehunt:
            for fidelity, counts in sorted(result.rehunt.items()):
                distribution = ", ".join(
                    f"{verdict} x{count}"
                    for verdict, count in sorted(counts.items())
                )
                print(
                    f"rehunt {result.plan.name} @ {fidelity}: {distribution}"
                )
    if args.shrink_out:
        from pathlib import Path

        from repro.faults.shrink import shrink_fault_plan

        out_dir = Path(args.shrink_out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for result in report.results:
            if result.verdicts.get("sim") != "fail":
                continue
            shrunk = shrink_fault_plan(result.plan)
            path = shrunk.plan.save(out_dir / f"{result.plan.name}-shrunk.json")
            kept = sum(
                len(getattr(shrunk.plan, axis))
                for axis in (
                    "mutes", "kills", "partitions", "flips", "collusion",
                    "suppressions", "corruptions", "timing", "storage_flips",
                )
            )
            print(
                f"shrunk {result.plan.name}: {len(shrunk.removed)} clause(s) "
                f"removed, {kept} kept, {shrunk.runs} runs, "
                f"kinds={sorted(shrunk.kinds)} -> {path}"
            )
    return 0 if report.ok else 1


def cmd_net(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.net import (
        Genesis,
        NetClient,
        free_port,
        run_cluster_smoke,
        serve_replica,
    )
    from repro.net.loop import install_event_loop

    install_event_loop(
        uvloop_flag=getattr(args, "uvloop", False),
        announce=lambda note: print(f"note: {note}", file=sys.stderr),
    )

    if args.net_command == "keygen":
        if args.base_port:
            addresses = tuple(
                (args.host, args.base_port + pid)
                for pid in range(args.replicas)
            )
        else:
            addresses = tuple(
                (args.host, free_port()) for _ in range(args.replicas)
            )
        genesis = Genesis(
            name=args.name,
            seed=args.seed,
            n_replicas=args.replicas,
            max_clients=args.clients,
            addresses=addresses,
        )
        path = genesis.save(args.out)
        print(f"genesis {genesis.genesis_id()} written to {path}")
        for pid, (host, port) in enumerate(addresses):
            print(f"  replica {pid}: {host}:{port}")
        return 0

    if args.net_command == "replica":
        genesis = Genesis.load(args.genesis)
        return asyncio.run(
            serve_replica(
                genesis,
                args.pid,
                join=args.join,
                metrics_dir=args.metrics_dir,
                fault_plan=args.faults,
                fault_origin=args.faults_origin,
                attack=args.attack,
            )
        )

    if args.net_command == "client":
        genesis = Genesis.load(args.genesis)

        async def drive() -> int:
            client = NetClient(genesis, args.index)
            try:
                if args.op == "set":
                    if len(args.operands) != 2:
                        raise ConfigurationError("set expects KEY VALUE")
                    key, value = args.operands
                    slot = await client.set(key, value)
                    print(f"committed {key}={value} (slot {slot})")
                elif args.op == "get":
                    if len(args.operands) != 1:
                        raise ConfigurationError("get expects KEY")
                    found, value = await client.get(args.operands[0])
                    print(f"{args.operands[0]} = {value!r}"
                          if found else f"{args.operands[0]} is unset")
                elif args.op == "status":
                    replies = await client.status()
                    for pid, status in sorted(replies.items()):
                        print(
                            f"replica {pid}: applied={status.applied} "
                            f"committed={status.committed} "
                            f"digest={status.digest[:12]} "
                            f"transfers={status.transfers} "
                            f"rejected={status.suffix_rejections}"
                        )
                else:
                    stats = await client.workload(
                        args.requests, concurrency=args.concurrency
                    )
                    print(json.dumps(stats, indent=2, sort_keys=True))
            finally:
                await client.close()
            return 0

        return asyncio.run(drive())

    # cluster
    verdict = asyncio.run(
        run_cluster_smoke(
            replicas=args.replicas,
            requests=args.requests,
            kill_pid=args.kill,
            seed=args.seed,
            workdir=args.workdir,
            concurrency=args.concurrency,
        )
    )
    print(json.dumps(verdict, indent=2, sort_keys=True))
    return 0 if verdict["ok"] else 1


def cmd_shard(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.net.cluster import free_port
    from repro.net.loop import install_event_loop
    from repro.shard import (
        ShardGenesis,
        ShardedNetClient,
        run_loopback_smoke,
        run_shard_smoke,
        shard_of,
        smoke_json,
    )

    install_event_loop(
        announce=lambda note: print(f"note: {note}", file=sys.stderr),
    )

    if args.shard_command == "keygen":
        if args.base_port:
            addresses = tuple(
                tuple(
                    (
                        args.host,
                        args.base_port
                        + shard * args.replicas_per_shard
                        + pid,
                    )
                    for pid in range(args.replicas_per_shard)
                )
                for shard in range(args.shards)
            )
        else:
            addresses = tuple(
                tuple(
                    (args.host, free_port())
                    for _ in range(args.replicas_per_shard)
                )
                for _ in range(args.shards)
            )
        genesis = ShardGenesis(
            name=args.name,
            seed=args.seed,
            n_shards=args.shards,
            replicas_per_shard=args.replicas_per_shard,
            max_clients=args.clients,
            addresses=addresses,
        )
        genesis.validate()
        path = genesis.save(args.out)
        print(f"shard genesis {genesis.shard_genesis_id()} written to {path}")
        for shard in range(args.shards):
            sub_genesis = genesis.genesis_for(shard)
            print(f"  shard {shard} (genesis {sub_genesis.genesis_id()}):")
            for pid, (host, port) in enumerate(addresses[shard]):
                print(f"    replica {pid}: {host}:{port}")
        return 0

    if args.shard_command == "route":
        if args.genesis:
            n_shards = ShardGenesis.load(args.genesis).n_shards
        elif args.shards is not None:
            n_shards = args.shards
        else:
            raise ConfigurationError("route needs --genesis or --shards")
        for key in args.keys:
            print(f"{key} -> shard {shard_of(key, n_shards)}")
        return 0

    if args.shard_command == "client":
        genesis = ShardGenesis.load(args.genesis)

        async def drive() -> int:
            client = ShardedNetClient(genesis, args.index)
            try:
                if args.op == "set":
                    if len(args.operands) != 2:
                        raise ConfigurationError("set expects KEY VALUE")
                    key, value = args.operands
                    shard = client.shard_for(key)
                    slot = await client.set(key, value)
                    print(
                        f"committed {key}={value} "
                        f"(shard {shard}, slot {slot})"
                    )
                elif args.op == "get":
                    if len(args.operands) != 1:
                        raise ConfigurationError("get expects KEY")
                    key = args.operands[0]
                    found, value = await client.get(key)
                    shard = client.shard_for(key)
                    print(
                        f"{key} = {value!r} (shard {shard})"
                        if found
                        else f"{key} is unset (shard {shard})"
                    )
                elif args.op == "status":
                    for shard, replies in sorted(
                        (await client.status()).items()
                    ):
                        print(f"shard {shard}:")
                        for pid, status in sorted(replies.items()):
                            print(
                                f"  replica {pid}: applied={status.applied} "
                                f"committed={status.committed} "
                                f"digest={status.digest[:12]} "
                                f"transfers={status.transfers}"
                            )
                else:
                    stats = await client.workload(
                        args.requests, concurrency=args.concurrency
                    )
                    print(json.dumps(stats, indent=2, sort_keys=True))
            finally:
                await client.close()
            return 0

        return asyncio.run(drive())

    if args.shard_command == "cluster":
        verdict = asyncio.run(
            run_shard_smoke(
                shards=args.shards,
                replicas_per_shard=args.replicas_per_shard,
                requests=args.requests,
                kill_shard=args.kill_shard,
                kill_pid=args.kill_pid,
                seed=args.seed,
                workdir=args.workdir,
                concurrency=args.concurrency,
            )
        )
        print(json.dumps(verdict, indent=2, sort_keys=True))
        return 0 if verdict["ok"] else 1

    # loopback
    record = run_loopback_smoke(
        shards=args.shards,
        replicas_per_shard=args.replicas_per_shard,
        requests=args.requests,
        seed=args.seed,
        kill_shard=None if args.no_kill else args.kill_shard,
        kill_pid=args.kill_pid,
    )
    text = smoke_json(record)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        print(text, end="")
    print(
        f"shard loopback smoke: {'ok' if record['ok'] else 'FAILED'} "
        f"({record['shards']} shards x {record['replicas_per_shard']} "
        f"replicas, {record['completed']}/{record['requests']} completed)",
        file=sys.stderr,
    )
    return 0 if record["ok"] else 1


def cmd_mc(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.mc import (
        Explorer,
        McConfig,
        Stepper,
        check_state,
        counterexample_scenario,
        load_artifact,
    )
    from repro.mc.mutations import apply_mutation

    def summarize(result) -> int:
        record = {
            "config_id": result.config.config_id,
            "states_explored": result.states_explored,
            "states_pruned": result.states_pruned,
            "frontier_depth": result.frontier_depth,
            "transitions": result.transitions,
            "stop_reason": result.stop_reason,
            "violations": [
                {"path": [list(l) for l in v.path], "violations": list(v.violations)}
                for v in result.violations
            ],
        }
        if args.json:
            print(json_module.dumps(record, indent=2, sort_keys=True))
        else:
            print_table(
                f"mc exploration {result.config.config_id} "
                f"({result.config.strategy}, depth <= {result.config.max_depth})",
                ["metric", "value"],
                [
                    ["states explored", result.states_explored],
                    ["states pruned", result.states_pruned],
                    ["frontier depth", result.frontier_depth],
                    ["transitions", result.transitions],
                    ["stop reason", result.stop_reason],
                    ["violations", len(result.violations)],
                ],
            )
            for violation in result.violations:
                print(f"counterexample ({len(violation.path)} steps):")
                for problem in violation.violations:
                    print(f"  {problem}")
        return 1 if result.violations else 0

    if args.mc_command == "run":
        alphabet = tuple(
            part.strip() for part in (args.alphabet or "").split(",") if part.strip()
        )
        config = McConfig(
            adversary=args.adversary,
            alphabet=alphabet,
            max_depth=args.max_depth,
            max_states=args.max_states,
            max_rounds=args.max_rounds,
            strategy=args.strategy,
            mutation=args.mutation,
            seed=args.seed,
            stop_on_violation=args.stop_on_violation,
            suppress_d=args.suppress_d,
        )
        config.validate()
        return summarize(Explorer(config, args.out).run())

    if args.mc_command == "resume":
        return summarize(Explorer.resume(args.artifact))

    # replay: re-check the recorded counterexample against the live stack,
    # then map it onto a campaign scenario (optionally shrinking it).
    config, records = load_artifact(args.artifact)
    violations = [r for r in records if r["type"] == "violation"]
    if not violations:
        raise ConfigurationError(f"{args.artifact} records no violations")
    if not 0 <= args.index < len(violations):
        raise ConfigurationError(
            f"--index {args.index} out of range; artifact has "
            f"{len(violations)} violation(s)"
        )
    chosen = violations[args.index]
    path = tuple(tuple(label) for label in chosen["path"])
    with apply_mutation(config.mutation):
        stepper = Stepper.replay(config, path)
        reproduced = check_state(stepper.system)
        scenario = counterexample_scenario(config, path)
        shrink_record = None
        if args.shrink:
            from repro.campaign import shrink_scenario

            shrink_record = shrink_scenario(scenario).to_record()
    record = {
        "path": [list(label) for label in path],
        "recorded": list(chosen["violations"]),
        "reproduced": reproduced,
        "reproduces": sorted(reproduced) == sorted(chosen["violations"]),
        "scenario": scenario.to_config(),
        "scenario_id": scenario.scenario_id,
        "shrink": shrink_record,
    }
    if args.json:
        print(json_module.dumps(record, indent=2, sort_keys=True))
    else:
        status = "reproduces" if record["reproduces"] else "DIVERGED"
        print(f"counterexample replay ({len(path)} steps): {status}")
        for problem in reproduced:
            print(f"  {problem}")
        print(f"campaign scenario: {scenario.scenario_id}")
        if shrink_record is not None:
            print(
                f"shrunk in {len(shrink_record['steps'])} step(s) to "
                f"scenario {shrink_record['minimal_id']}"
            )
    return 0 if record["reproduces"] else 1


def cmd_perf(args: argparse.Namespace) -> int:
    from repro.analysis.perf import smoke_json, smoke_ok, smoke_record

    record = smoke_record()
    text = smoke_json(record) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        print(text, end="")
    ok = smoke_ok(record)
    print(
        f"perf smoke: {'ok' if ok else 'FAILED'} "
        f"({len(record['cells'])} cells, equivalence "
        f"{'held' if record['equivalence']['equivalent'] else 'BROKEN'})",
        file=sys.stderr,
    )
    return 0 if ok else 1


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import print_table as table
    from repro.analysis.suite import discover, run_experiments

    available = discover()
    if args.list or not args.only:
        table(
            "available experiments (see DESIGN.md §3 / EXPERIMENTS.md)",
            ["id", "benchmark file"],
            [[key, available[key].name] for key in sorted(
                available, key=lambda k: int(k[1:])
            )],
        )
        if not args.only:
            print("run some with: python -m repro experiments --only e3,e13")
        return 0
    selected = [key.strip() for key in args.only.split(",") if key.strip()]
    results = run_experiments(only=selected)
    for key, result in results.items():
        rows = result[0] if isinstance(result, tuple) else result
        width = max(len(row) for row in rows)
        table(
            f"{key.upper()} — {available[key].stem.removeprefix('test_')}",
            [f"col {i}" for i in range(width)],
            rows,
        )
    print(
        "(column legends and shape assertions live in the benchmark files; "
        "run `pytest benchmarks/ --benchmark-only -s` for the full report)"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": cmd_run,
        "report": cmd_report,
        "gallery": cmd_gallery,
        "attacks": cmd_attacks,
        "params": cmd_params,
        "campaign": cmd_campaign,
        "service": cmd_service,
        "net": cmd_net,
        "shard": cmd_shard,
        "mc": cmd_mc,
        "perf": cmd_perf,
        "experiments": cmd_experiments,
    }
    try:
        return handlers[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
