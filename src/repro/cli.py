"""Command-line interface: run and inspect reproductions from a shell.

Usage (``python -m repro <command> ...``):

* ``run`` — one consensus instance (any protocol, faults, attacks), with
  optional trace chart / JSON export;
* ``gallery`` — the full attack gallery against the transformed protocol
  as a table;
* ``attacks`` — list the attack catalogues and their fault profiles;
* ``params`` — the resilience arithmetic for a system size;
* ``report`` — aggregate a ``--metrics-out`` JSONL artifact into
  per-module / per-round tables (or JSON).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.properties import (
    check_crash_consensus,
    check_detection,
    check_vector_consensus,
)
from repro.analysis.reporting import print_table
from repro.analysis.run_report import RunReport
from repro.analysis.tracefmt import render_sequence, trace_to_json
from repro.observability.export import read_run_jsonl, write_run_jsonl
from repro.byzantine import (
    CRASH_ATTACKS,
    TRANSFORMED_ATTACKS,
    crash_attack,
    transformed_attack,
)
from repro.byzantine.ct_attacks import CT_ATTACKS, ct_attack
from repro.core.specs import SystemParameters, certification_resilience, crash_resilience
from repro.errors import ReproError
from repro.systems import build_crash_system, build_transformed_system

CRASH_PROTOCOLS = ("hurfin-raynal", "chandra-toueg")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Baldoni/Hélary/Raynal (DSN 2000): "
        "crash-to-arbitrary fault-tolerance transformation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one consensus instance")
    run.add_argument("--n", type=int, default=4, help="number of processes")
    run.add_argument(
        "--protocol",
        choices=("transformed",) + CRASH_PROTOCOLS,
        default="transformed",
    )
    run.add_argument(
        "--variant",
        choices=("standard", "echo-init"),
        default="standard",
        help="transformed-protocol variant",
    )
    run.add_argument(
        "--base",
        choices=("hurfin-raynal", "chandra-toueg"),
        default="hurfin-raynal",
        help="which crash protocol the transformation was applied to",
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="PID:TIME",
        help="crash PID at virtual TIME (repeatable)",
    )
    run.add_argument(
        "--attack",
        action="append",
        default=[],
        metavar="PID:NAME",
        help="install a Byzantine behaviour (repeatable)",
    )
    run.add_argument("--max-time", type=float, default=3_000.0)
    run.add_argument(
        "--chart", action="store_true", help="print the message-sequence chart"
    )
    run.add_argument(
        "--chart-rows", type=int, default=60, help="chart row budget"
    )
    run.add_argument(
        "--json", metavar="FILE", help="export the trace as JSON to FILE"
    )
    run.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="export metrics + trace as a schema-versioned JSONL artifact "
        "(read it back with `python -m repro report FILE`)",
    )

    report = sub.add_parser(
        "report", help="aggregate a JSONL run artifact into tables"
    )
    report.add_argument("artifact", help="a .jsonl file written by --metrics-out")
    report.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )

    gallery = sub.add_parser(
        "gallery", help="run every attack against the transformed protocol"
    )
    gallery.add_argument("--n", type=int, default=4)
    gallery.add_argument("--seed", type=int, default=0)

    attacks = sub.add_parser("attacks", help="list the attack catalogues")
    attacks.add_argument(
        "--model",
        choices=("crash", "transformed", "both"),
        default="both",
    )

    params = sub.add_parser("params", help="resilience arithmetic for n")
    params.add_argument("--n", type=int, required=True)

    experiments = sub.add_parser(
        "experiments",
        help="regenerate experiment tables (E1..E18) outside pytest",
    )
    experiments.add_argument(
        "--only",
        help="comma-separated experiment ids, e.g. e3,e13 (default: list them)",
    )
    experiments.add_argument(
        "--list", action="store_true", help="list available experiments"
    )

    return parser


def _parse_pairs(pairs: list[str], what: str) -> dict[int, str]:
    parsed: dict[int, str] = {}
    for pair in pairs:
        pid_text, _, value = pair.partition(":")
        if not value:
            raise SystemExit(f"--{what} expects PID:VALUE, got {pair!r}")
        parsed[int(pid_text)] = value
    return parsed


def cmd_run(args: argparse.Namespace) -> int:
    crash_at = {
        pid: float(time)
        for pid, time in _parse_pairs(args.crash, "crash").items()
    }
    attack_names = _parse_pairs(args.attack, "attack")
    proposals = [f"v{i}" for i in range(args.n)]
    if args.protocol == "transformed":
        byzantine = {}
        attack_maker = (
            transformed_attack if args.base == "hurfin-raynal" else ct_attack
        )
        for pid, name in attack_names.items():
            byzantine.update(attack_maker(pid, name))
        system = build_transformed_system(
            proposals,
            byzantine=byzantine,
            crash_at=crash_at,
            seed=args.seed,
            variant=args.variant,
            base=args.base,
        )
        system.run(max_time=args.max_time)
        report = check_vector_consensus(system)
    else:
        byzantine = {}
        for pid, name in attack_names.items():
            byzantine.update(crash_attack(pid, name))
        system = build_crash_system(
            proposals,
            byzantine=byzantine,
            crash_at=crash_at,
            protocol=args.protocol,
            seed=args.seed,
        )
        system.run(max_time=args.max_time)
        report = check_crash_consensus(system)

    print(f"run finished: {system.result.reason} at t={system.result.end_time:.2f}, "
          f"{system.world.network.messages_sent} messages")
    for pid in sorted(system.correct_pids):
        process = system.processes[pid]
        state = f"decided {process.decision!r} (round {process.decision_round})" \
            if process.decided else "undecided"
        print(f"  p{pid}: {state}")
    detection = check_detection(system)
    if detection.detectors_per_culprit:
        print(f"detections: {detection.detectors_per_culprit}")
    print(f"properties: termination={report.termination} "
          f"agreement={report.agreement} validity={report.validity}")
    for violation in report.violations:
        print(f"  violation: {violation}")
    if args.chart:
        print()
        print(render_sequence(system.world.trace, args.n, max_events=args.chart_rows))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(trace_to_json(system.world.trace))
        print(f"trace exported to {args.json}")
    if args.metrics_out:
        write_run_jsonl(
            args.metrics_out,
            system.world.trace,
            system.world.metrics,
            meta={
                "n": args.n,
                "seed": args.seed,
                "protocol": args.protocol,
                "variant": args.variant,
                "base": args.base,
                "attacks": dict(sorted(attack_names.items())),
                "crashes": {pid: crash_at[pid] for pid in sorted(crash_at)},
            },
        )
        print(f"metrics artifact exported to {args.metrics_out}")
    return 0 if report.all_hold else 1


def cmd_report(args: argparse.Namespace) -> int:
    run_report = RunReport.from_artifact(read_run_jsonl(args.artifact))
    if args.json:
        import json

        print(json.dumps(run_report.to_json(), indent=2, sort_keys=True))
    else:
        print(run_report.render())
    return 0


def cmd_gallery(args: argparse.Namespace) -> int:
    proposals = [f"v{i}" for i in range(args.n)]
    rows = []
    worst = 0
    for name in sorted(TRANSFORMED_ATTACKS):
        seat = 0 if name in ("equivocate-current", "wrong-cert-current") else args.n - 1
        system = build_transformed_system(
            proposals,
            byzantine=transformed_attack(seat, name),
            seed=args.seed,
        )
        system.run(max_time=3_000.0)
        report = check_vector_consensus(system)
        detection = check_detection(system)
        rows.append(
            [
                name,
                "yes" if report.all_hold else "NO",
                detection.detectors_per_culprit.get(seat, 0),
                "yes" if seat in detection.suspected_by_any else "no",
            ]
        )
        if not report.all_hold:
            worst = 1
    print_table(
        f"attack gallery (n={args.n}, seed={args.seed})",
        ["attack", "safe", "convictions", "suspected"],
        rows,
    )
    return worst


def cmd_attacks(args: argparse.Namespace) -> int:
    def rows_for(catalog):
        return [
            [
                cls.profile.name,
                cls.profile.failure_class.value,
                cls.profile.detecting_module.value,
                cls.profile.description,
            ]
            for cls in sorted(catalog.values(), key=lambda c: c.profile.name)
        ]

    headers = ["name", "failure class", "owning module", "description"]
    if args.model in ("crash", "both"):
        print_table("crash-model attacks (Figure 2 victims)", headers,
                    rows_for(CRASH_ATTACKS))
    if args.model in ("transformed", "both"):
        print_table("transformed-model attacks (Figure 3 targets)", headers,
                    rows_for(TRANSFORMED_ATTACKS))
        print_table("transformed-CT attacks (second case study)", headers,
                    rows_for(CT_ATTACKS))
    return 0


def cmd_params(args: argparse.Namespace) -> int:
    params = SystemParameters.for_n(args.n)
    print(f"n                          = {params.n}")
    print(f"crash resilience           = {crash_resilience(args.n)}  (floor((n-1)/2))")
    print(f"certification resilience C = {certification_resilience(args.n)}  (floor((n-1)/3))")
    print(f"arbitrary-fault bound F    = {params.f}  (min of the two)")
    print(f"quorum n-F                 = {params.quorum}")
    print(f"vector validity floor n-2F = {params.alpha}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import print_table as table
    from repro.analysis.suite import discover, run_experiments

    available = discover()
    if args.list or not args.only:
        table(
            "available experiments (see DESIGN.md §3 / EXPERIMENTS.md)",
            ["id", "benchmark file"],
            [[key, available[key].name] for key in sorted(
                available, key=lambda k: int(k[1:])
            )],
        )
        if not args.only:
            print("run some with: python -m repro experiments --only e3,e13")
        return 0
    selected = [key.strip() for key in args.only.split(",") if key.strip()]
    results = run_experiments(only=selected)
    for key, result in results.items():
        rows = result[0] if isinstance(result, tuple) else result
        width = max(len(row) for row in rows)
        table(
            f"{key.upper()} — {available[key].stem.removeprefix('test_')}",
            [f"col {i}" for i in range(width)],
            rows,
        )
    print(
        "(column legends and shape assertions live in the benchmark files; "
        "run `pytest benchmarks/ --benchmark-only -s` for the full report)"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": cmd_run,
        "report": cmd_report,
        "gallery": cmd_gallery,
        "attacks": cmd_attacks,
        "params": cmd_params,
        "experiments": cmd_experiments,
    }
    try:
        return handlers[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
