"""Configuration of a replicated-service deployment.

One frozen :class:`ServiceConfig` pins every knob of the runtime —
replica/client counts, workload shape, batching and pipelining policy,
checkpoint cadence and client timeouts — so a service world, like a
campaign scenario, is a pure function of its config and seed.
:meth:`ServiceConfig.validate` is the exhaustive pre-flight check behind
the CLI's exit-2 convention.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.specs import SystemParameters
from repro.errors import ConfigurationError

#: Client workload shapes (docs/SERVICE.md).
CLIENT_MODES = ("open", "closed")

#: Muteness-detector flavours a replica can arm per slot engine:
#: ``"timeout"`` is the fixed-timeout ◇M of the paper, ``"adaptive"``
#: the Jacobson-style estimator (docs/NETWORK.md) — the timing-attack
#: family of the adversary zoo targets the latter.
MUTENESS_DETECTORS = ("timeout", "adaptive")


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Every knob of one service deployment (immutable, hashable)."""

    n_replicas: int = 4
    n_clients: int = 2
    #: ``"open"`` (Poisson arrivals) or ``"closed"`` (think time).
    mode: str = "open"
    #: Open-loop arrival rate per client (requests / unit virtual time).
    rate: float = 2.0
    #: Closed-loop think time between completion and the next request.
    think: float = 1.0
    requests_per_client: int = 20
    #: Commands packed into one slot proposal (size trigger).
    batch_size: int = 4
    #: Maximum age of a pending command before a partial batch is
    #: proposed anyway (time trigger).
    batch_delay: float = 1.0
    #: Pipelining window W: concurrent open (undecided) slots.
    window: int = 2
    #: Checkpoint every K applied slots.
    checkpoint_interval: int = 2
    #: Client resubmit-on-silence timeout.
    request_timeout: float = 40.0
    #: State-transfer request retry period.
    transfer_retry: float = 8.0
    #: Initial ◇M suspicion timeout handed to each slot engine's muteness
    #: detector. The default matches the historical hardcoded value; the
    #: wall-clock net runtime (docs/NET.md) shrinks it to seconds.
    muteness_timeout: float = 10.0
    #: Anti-entropy probe period for long-lived deployments: a replica
    #: that made no apply progress over a full period while holding
    #: decided-but-unappliable (or open undecided) slots starts a state
    #: transfer. ``0`` disables the probe — the sim default, so fixed-seed
    #: simulator schedules carry no extra timer events.
    stall_probe: float = 0.0
    #: Client key space (keys are ``k0 .. k{key_space-1}``).
    key_space: int = 16
    seed: int = 0
    #: Explicit fault bound; ``None`` derives F from ``n_replicas``.
    f: int | None = None
    #: Which ◇M flavour each slot engine arms (:data:`MUTENESS_DETECTORS`).
    muteness_detector: str = "timeout"
    #: Self-stabilization (docs/ADVERSARIES.md): when an f+1 certified
    #: checkpoint quorum disagrees with the locally computed digest, wipe
    #: the volatile state and re-install via certified transfer instead
    #: of only recording the mismatch. Off by default — campaign
    #: scenarios that intentionally surface divergence keep their
    #: verdicts.
    heal_on_mismatch: bool = False

    def params(self) -> SystemParameters:
        return SystemParameters.for_n(self.n_replicas, f=self.f)

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on any inconsistency."""
        if self.n_clients < 1:
            raise ConfigurationError(
                f"n_clients must be >= 1, got {self.n_clients}"
            )
        if self.mode not in CLIENT_MODES:
            raise ConfigurationError(
                f"unknown client mode {self.mode!r}; known: {list(CLIENT_MODES)}"
            )
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate}")
        if self.think < 0:
            raise ConfigurationError(
                f"think time must be >= 0, got {self.think}"
            )
        if self.requests_per_client < 1:
            raise ConfigurationError(
                f"requests_per_client must be >= 1, got "
                f"{self.requests_per_client}"
            )
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.batch_delay <= 0:
            raise ConfigurationError(
                f"batch_delay must be positive, got {self.batch_delay}"
            )
        if self.window < 1:
            raise ConfigurationError(
                f"pipelining window must be >= 1, got {self.window}"
            )
        if self.checkpoint_interval <= 0:
            raise ConfigurationError(
                f"checkpoint interval must be positive, got "
                f"{self.checkpoint_interval}"
            )
        if self.request_timeout <= 0:
            raise ConfigurationError(
                f"request_timeout must be positive, got {self.request_timeout}"
            )
        if self.transfer_retry <= 0:
            raise ConfigurationError(
                f"transfer_retry must be positive, got {self.transfer_retry}"
            )
        if self.muteness_timeout <= 0:
            raise ConfigurationError(
                f"muteness_timeout must be positive, got {self.muteness_timeout}"
            )
        if self.stall_probe < 0:
            raise ConfigurationError(
                f"stall_probe must be >= 0, got {self.stall_probe}"
            )
        if self.key_space < 1:
            raise ConfigurationError(
                f"key_space must be >= 1, got {self.key_space}"
            )
        if self.muteness_detector not in MUTENESS_DETECTORS:
            raise ConfigurationError(
                f"unknown muteness detector {self.muteness_detector!r}; "
                f"known: {list(MUTENESS_DETECTORS)}"
            )
        # Raises for system sizes outside the resilience arithmetic.
        self.params()
