"""Build and run a replicated-service deployment in one world.

:func:`build_service_system` wires ``n_replicas`` service replicas and
``n_clients`` workload generators into a single simulated
:class:`~repro.sim.world.World` (replicas take pids
``0..n_replicas-1``, clients the pids above), optionally installs
Byzantine consensus engines on some replicas and schedules a *recovery
plan* — ``(pid, down_at, up_at)`` triples that take a replica down
(silent, volatile state lost) and restart it into state transfer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.replication.log import EngineFactory
from repro.service.clients import ClosedLoopClient, OpenLoopClient, ServiceClient
from repro.service.config import ServiceConfig
from repro.service.replica import ServiceReplicaProcess
from repro.sim.network import DelayModel, LinkModel, TamperHook
from repro.sim.world import World


@dataclass(slots=True)
class ServiceSystem:
    """A runnable service deployment plus its analysis surface."""

    world: World
    config: ServiceConfig
    replicas: list[ServiceReplicaProcess]
    clients: list[ServiceClient]
    byzantine_pids: frozenset[int]
    recoveries: tuple[tuple[int, float, float], ...]

    @property
    def correct_pids(self) -> frozenset[int]:
        """Replica pids without an injected Byzantine engine."""
        return frozenset(range(self.config.n_replicas)) - self.byzantine_pids

    def run(self, max_events: int = 5_000_000, max_time: float = 3_000.0):
        return self.world.run(max_events=max_events, max_time=max_time)

    # -- aggregate views (oracles, benchmarks) -------------------------------

    def committed_commands(self) -> int:
        """Client commands committed at the most advanced correct replica."""
        return max(
            self.replicas[pid].committed_commands for pid in self.correct_pids
        )

    def checkpoint_digests(self) -> dict[int, set[str]]:
        """count -> digests attested by correct replicas at that count."""
        digests: dict[int, set[str]] = {}
        for pid in sorted(self.correct_pids):
            for count, digest in self.replicas[pid].checkpoint_history:
                digests.setdefault(count, set()).add(digest)
        return digests

    def checkpoints_agree(self) -> bool:
        """One digest per checkpoint count across all correct replicas."""
        return all(
            len(digests) == 1 for digests in self.checkpoint_digests().values()
        )

    def certified_checkpoints(self) -> int:
        """Distinct counts some correct replica ever certified."""
        counts: set[int] = set()
        for pid in self.correct_pids:
            counts |= self.replicas[pid].certified_counts
        return len(counts)

    def client_latencies(self) -> list[float]:
        latencies: list[float] = []
        for client in self.clients:
            latencies.extend(client.latencies)
        return latencies

    def completed_requests(self) -> int:
        return sum(len(client.completed) for client in self.clients)

    def all_clients_done(self) -> bool:
        return all(client.finished for client in self.clients)


def build_service_system(
    config: ServiceConfig,
    byzantine: dict[int, EngineFactory] | None = None,
    recoveries: tuple[tuple[int, float, float], ...] = (),
    delay_model: DelayModel | None = None,
    link_model: LinkModel | None = None,
    transport: str = "none",
    tamper: TamperHook | None = None,
) -> ServiceSystem:
    """Validate ``config`` and build the (not yet run) service world."""
    config.validate()
    byzantine = dict(byzantine or {})
    for pid in byzantine:
        if not 0 <= pid < config.n_replicas:
            raise ConfigurationError(
                f"byzantine pid {pid} out of range for "
                f"n_replicas={config.n_replicas}"
            )
    for pid, down_at, up_at in recoveries:
        if not 0 <= pid < config.n_replicas:
            raise ConfigurationError(
                f"recovery pid {pid} out of range for "
                f"n_replicas={config.n_replicas}"
            )
        if down_at < 0 or up_at <= down_at:
            raise ConfigurationError(
                f"recovery window [{down_at!r}, {up_at!r}) must satisfy "
                "0 <= down < up"
            )
        if pid in byzantine:
            raise ConfigurationError(
                f"replica {pid} cannot be both Byzantine and recovering"
            )

    replicas = []
    for pid in range(config.n_replicas):
        kwargs = {}
        if pid in byzantine:
            kwargs["engine_factory"] = byzantine[pid]
        replicas.append(ServiceReplicaProcess(config, **kwargs))

    clients: list[ServiceClient] = []
    for _ in range(config.n_clients):
        if config.mode == "open":
            clients.append(
                OpenLoopClient(
                    n_replicas=config.n_replicas,
                    total_requests=config.requests_per_client,
                    request_timeout=config.request_timeout,
                    rate=config.rate,
                    key_space=config.key_space,
                )
            )
        else:
            clients.append(
                ClosedLoopClient(
                    n_replicas=config.n_replicas,
                    total_requests=config.requests_per_client,
                    request_timeout=config.request_timeout,
                    think=config.think,
                    key_space=config.key_space,
                )
            )

    world = World(
        replicas + clients,
        seed=config.seed,
        delay_model=delay_model,
        link_model=link_model,
        transport=transport,
        tamper=tamper,
    )
    for pid, down_at, up_at in recoveries:
        replica = replicas[pid]
        world.scheduler.schedule_at(down_at, "service-down", replica.go_down)
        world.scheduler.schedule_at(up_at, "service-restart", replica.restart)
    return ServiceSystem(
        world=world,
        config=config,
        replicas=replicas,
        clients=clients,
        byzantine_pids=frozenset(byzantine),
        recoveries=tuple(recoveries),
    )
