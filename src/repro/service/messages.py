"""Wire types of the replicated-service runtime.

Three traffic classes share the simulated network (docs/SERVICE.md):

* **client traffic** — :class:`ClientRequest` (client → replica) and
  :class:`ClientReply` (replica → client). Requests are identified by
  the stable pair ``(client, req_id)`` so resubmissions and batches from
  different replicas deduplicate to exactly-once *execution* on top of
  at-least-once *delivery*;
* **checkpoint votes** — :class:`Checkpoint` bodies, signed through
  :class:`~repro.core.certificates.CertificationAuthority` in the
  service's own signature domain and exchanged between replicas; f+1
  matching votes form a checkpoint certificate
  (:mod:`repro.service.checkpoint`);
* **state transfer** — :class:`StateRequest` / :class:`StateResponse`
  carrying a certified snapshot plus the decided-vector suffix a lagging
  or restarted replica needs to rejoin.

Consensus traffic itself stays wrapped in
:class:`~repro.replication.log.SlotEnvelope` exactly as in the
replicated log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.messages.base import Message
from repro.replication.kvstore import Command


@dataclass(frozen=True, slots=True)
class ClientRequest:
    """One client command; also the unit batches are made of.

    ``client`` is the client's pid (stable across the run) and
    ``req_id`` its per-client sequence number; together they identify
    the request for deduplication wherever it travels.
    """

    client: int
    req_id: int
    command: Command

    @property
    def ident(self) -> tuple[int, int]:
        return (self.client, self.req_id)

    def canonical(self) -> Any:
        return ("request", self.client, self.req_id, self.command.canonical())


@dataclass(frozen=True, slots=True)
class ClientReply:
    """Commit acknowledgement for one request (every replica replies)."""

    replica: int
    client: int
    req_id: int
    slot: int


@dataclass(frozen=True, slots=True)
class Checkpoint(Message):
    """Signed checkpoint vote: "after ``count`` applied slots my service
    state digests to ``digest``". ``sender`` is inherited from
    :class:`~repro.messages.base.Message` and checked against the
    signature by the receiving replica."""

    count: int = 0
    digest: str = ""


@dataclass(frozen=True, slots=True)
class StateRequest:
    """A lagging/restarted replica asking peers for certified state."""

    replica: int
    applied: int


@dataclass(frozen=True, slots=True)
class StateResponse:
    """Certified snapshot + decided-vector suffix for a catching-up peer.

    ``snapshot``/``executed``/``store_applied`` reconstruct the exact
    :class:`~repro.replication.kvstore.KeyValueStore` and executed-id set
    at checkpoint ``count`` (the receiver *recomputes* the digest and
    checks it against the certificate — the snapshot itself is untrusted
    data); ``suffix`` holds one ``(slot, vector, justification)`` triple
    per decided vector the responder still has for slots ``>= count``.
    The justification is the responder's retained signed ``VDecide`` for
    that slot, whose certificate carries the (n − F) matching CURRENT
    quorum under the slot's own signature domain — the receiver
    re-verifies it per slot before replaying (the suffix is as untrusted
    as the snapshot), rejecting and counting forged entries.
    """

    replica: int
    count: int
    snapshot: tuple[tuple[str, Any], ...]
    executed: tuple[tuple[int, int], ...]
    store_applied: int
    certificate: Any  # CheckpointCertificate | None (count == 0)
    suffix: tuple[tuple[int, tuple, Any], ...]
