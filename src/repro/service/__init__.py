"""repro.service — a long-lived BFT replicated service on the log.

The consensus stack proves agreement one instance at a time; this
package runs the *service* the paper's modular transformation exists to
protect: clients submit commands, replicas batch them into pipelined
Vector Consensus slots, apply the decided log in order to a replicated
key-value store, checkpoint and compact the log under f+1-signed
certificates, and bring lagging or restarted replicas back with
certified state transfer. See docs/SERVICE.md.
"""

from repro.service.campaign import (
    SERVICE_PRESETS,
    ServiceScenario,
    evaluate_service_outcome,
    run_service_scenario,
    service_preset,
)
from repro.service.checkpoint import (
    CheckpointCertificate,
    certificate_valid,
    service_digest,
)
from repro.service.clients import ClosedLoopClient, OpenLoopClient, ServiceClient
from repro.service.config import CLIENT_MODES, ServiceConfig
from repro.service.messages import (
    Checkpoint,
    ClientReply,
    ClientRequest,
    StateRequest,
    StateResponse,
)
from repro.service.replica import ServiceReplicaProcess
from repro.service.runtime import ServiceSystem, build_service_system

__all__ = [
    "CLIENT_MODES",
    "Checkpoint",
    "CheckpointCertificate",
    "ClientReply",
    "ClientRequest",
    "ClosedLoopClient",
    "OpenLoopClient",
    "SERVICE_PRESETS",
    "ServiceClient",
    "ServiceConfig",
    "ServiceReplicaProcess",
    "ServiceScenario",
    "ServiceSystem",
    "StateRequest",
    "StateResponse",
    "build_service_system",
    "certificate_valid",
    "evaluate_service_outcome",
    "run_service_scenario",
    "service_digest",
    "service_preset",
]
