"""Checkpoint certificates: certified, transferable service state.

Every ``checkpoint_interval`` applied slots each replica digests its
service state (store contents *and* executed-request ids — both are part
of what a recovering replica must reproduce), signs a
:class:`~repro.service.messages.Checkpoint` vote in the service's own
signature domain, and broadcasts it to the replica group. Because at
most f replicas are faulty, **f+1 matching signed digests** mean at
least one *correct* replica attests the digest; packed into a
:class:`~repro.core.certificates.Certificate` they form a
:class:`CheckpointCertificate` — the proof that lets peers truncate
their logs and recovering replicas trust a snapshot they recompute the
digest of (paper Section 3: "a piece of redundant information ...
allows majority tests").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.certificates import Certificate, CertificationAuthority
from repro.crypto.cache import caching_enabled
from repro.crypto.encoding import canonical_bytes
from repro.observability.registry import NULL_METRICS
from repro.replication.kvstore import KeyValueStore
from repro.service.messages import Checkpoint


def service_digest(store: KeyValueStore, executed: Iterable[tuple[int, int]]) -> str:
    """Canonical digest of the full service state at a checkpoint.

    Covers the store contents (via :meth:`KeyValueStore.digest`) and the
    sorted executed-request ids, so two replicas agree on the digest iff
    a transferred snapshot would make the receiver indistinguishable
    from the sender — including its request deduplication behaviour.
    """
    hasher = hashlib.sha256()
    hasher.update(store.digest().encode("ascii"))
    hasher.update(canonical_bytes(tuple(sorted(executed))))
    return hasher.hexdigest()


@dataclass(frozen=True, slots=True)
class CheckpointCertificate:
    """f+1 matching signed checkpoint votes for one (count, digest)."""

    count: int
    digest: str
    certificate: Certificate

    @property
    def signers(self) -> frozenset[int]:
        return self.certificate.senders()

    def canonical(self) -> Any:
        return ("checkpoint-cert", self.count, self.digest,
                self.certificate.canonical())


class CheckpointCertCache:
    """Memo of fully verified checkpoint certificates (one per process).

    State-transfer retries and repeated responders re-ship the same
    certificate; once :func:`certificate_valid` has walked its votes the
    verdict is pinned by ``(count, digest, certificate digest)`` — the
    certificate digest covers every vote body and signature — so the
    re-verification is a set lookup. Only accepts are recorded: rejects
    are cheap (first bad vote short-circuits) and an attacker should not
    be able to fill the memo with garbage keys.
    """

    __slots__ = ("max_entries", "hits", "misses", "_seen", "_metrics")

    def __init__(self, max_entries: int = 1024) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._seen: dict[tuple[int, str, str], None] = {}
        self._metrics = NULL_METRICS

    def attach_metrics(self, metrics) -> None:
        """Export hit/miss counters through ``metrics`` (first bind wins)."""
        if self._metrics is NULL_METRICS:
            self._metrics = metrics

    def seen(self, key: tuple[int, str, str]) -> bool:
        if key in self._seen:
            self.hits += 1
            self._metrics.inc("ckpt_cert_cache_hits")
            return True
        self.misses += 1
        self._metrics.inc("ckpt_cert_cache_misses")
        return False

    def record(self, key: tuple[int, str, str]) -> None:
        if len(self._seen) >= self.max_entries:
            self._seen.pop(next(iter(self._seen)))
        self._seen[key] = None

    def clear(self) -> None:
        """Forget everything (a restarting replica loses volatile memos)."""
        self._seen.clear()


def certificate_valid(
    cert: CheckpointCertificate,
    authority: CertificationAuthority,
    f: int,
    cache: CheckpointCertCache | None = None,
) -> bool:
    """Full verification of a checkpoint certificate.

    Checks that every entry is a validly signed :class:`Checkpoint` vote
    for exactly this ``(count, digest)`` pair and that at least ``f + 1``
    *distinct* replicas signed — the majority test guaranteeing a correct
    attester. ``authority`` supplies the service signature domain (any
    replica's authority verifies; signing capability is not used).

    ``cache`` (if given) must be private to one verifying process and one
    authority domain; see :class:`CheckpointCertCache`.
    """
    key: tuple[int, str, str] | None = None
    if cache is not None and caching_enabled():
        try:
            key = (cert.count, cert.digest, cert.certificate.digest().hex)
        except Exception:
            return False  # malformed enough that even hashing fails
        if cache.seen(key):
            return True
    signers: set[int] = set()
    try:
        for entry in cert.certificate:
            body = entry.body
            if not isinstance(body, Checkpoint):
                return False
            if body.count != cert.count or body.digest != cert.digest:
                return False
            if not authority.signature_valid(entry):
                return False
            signers.add(body.sender)
    except Exception:
        # Structurally malformed entries (a Byzantine responder can ship
        # anything here) are a rejection, never a crash.
        return False
    valid = len(signers) >= f + 1
    if valid and key is not None:
        cache.record(key)
    return valid
