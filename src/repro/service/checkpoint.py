"""Checkpoint certificates: certified, transferable service state.

Every ``checkpoint_interval`` applied slots each replica digests its
service state (store contents *and* executed-request ids — both are part
of what a recovering replica must reproduce), signs a
:class:`~repro.service.messages.Checkpoint` vote in the service's own
signature domain, and broadcasts it to the replica group. Because at
most f replicas are faulty, **f+1 matching signed digests** mean at
least one *correct* replica attests the digest; packed into a
:class:`~repro.core.certificates.Certificate` they form a
:class:`CheckpointCertificate` — the proof that lets peers truncate
their logs and recovering replicas trust a snapshot they recompute the
digest of (paper Section 3: "a piece of redundant information ...
allows majority tests").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.certificates import Certificate, CertificationAuthority
from repro.crypto.encoding import canonical_bytes
from repro.replication.kvstore import KeyValueStore
from repro.service.messages import Checkpoint


def service_digest(store: KeyValueStore, executed: Iterable[tuple[int, int]]) -> str:
    """Canonical digest of the full service state at a checkpoint.

    Covers the store contents (via :meth:`KeyValueStore.digest`) and the
    sorted executed-request ids, so two replicas agree on the digest iff
    a transferred snapshot would make the receiver indistinguishable
    from the sender — including its request deduplication behaviour.
    """
    hasher = hashlib.sha256()
    hasher.update(store.digest().encode("ascii"))
    hasher.update(canonical_bytes(tuple(sorted(executed))))
    return hasher.hexdigest()


@dataclass(frozen=True, slots=True)
class CheckpointCertificate:
    """f+1 matching signed checkpoint votes for one (count, digest)."""

    count: int
    digest: str
    certificate: Certificate

    @property
    def signers(self) -> frozenset[int]:
        return self.certificate.senders()

    def canonical(self) -> Any:
        return ("checkpoint-cert", self.count, self.digest,
                self.certificate.canonical())


def certificate_valid(
    cert: CheckpointCertificate,
    authority: CertificationAuthority,
    f: int,
) -> bool:
    """Full verification of a checkpoint certificate.

    Checks that every entry is a validly signed :class:`Checkpoint` vote
    for exactly this ``(count, digest)`` pair and that at least ``f + 1``
    *distinct* replicas signed — the majority test guaranteeing a correct
    attester. ``authority`` supplies the service signature domain (any
    replica's authority verifies; signing capability is not used).
    """
    signers: set[int] = set()
    try:
        for entry in cert.certificate:
            body = entry.body
            if not isinstance(body, Checkpoint):
                return False
            if body.count != cert.count or body.digest != cert.digest:
                return False
            if not authority.signature_valid(entry):
                return False
            signers.add(body.sender)
    except Exception:
        # Structurally malformed entries (a Byzantine responder can ship
        # anything here) are a rejection, never a crash.
        return False
    return len(signers) >= f + 1
