"""The service replica: batching, pipelining, checkpoints, state transfer.

A :class:`ServiceReplicaProcess` is the long-lived counterpart of
:class:`~repro.replication.log.ReplicatedLogProcess`: the same
slot-per-instance Vector Consensus core (one transformed Figure-3 engine
per slot, slot-separated signature domains, in-order apply), extended
with everything a running service needs:

* **batching** — pending client commands are packed into slot proposals,
  flushed by size (``batch_size``) or by age (``batch_delay``);
* **pipelining** — up to ``window`` slots run their consensus instances
  concurrently instead of strictly one after the other;
* **checkpointing** — every ``checkpoint_interval`` applied slots the
  replica digests its state, exchanges signed votes, and an f+1 quorum
  of matching digests forms a :class:`~repro.service.checkpoint.
  CheckpointCertificate` that lets it truncate the log and the dead slot
  engines;
* **state transfer** — a restarted (or detectably lagging) replica
  fetches a certified snapshot plus the decided-vector suffix from a
  peer, re-verifies certificate and digest locally, installs it and
  rejoins the pipeline.

The replica group shares its world with client processes; the
:class:`_ReplicaEnvView` facade keeps the consensus engines' horizon to
the replica group alone (``n`` = replica count, not world size).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.core.certificates import (
    Certificate,
    CertificationAuthority,
    SignedMessage,
)
from repro.core.modules import ModuleConfig
from repro.core.specs import SystemParameters
from repro.crypto.cache import SignatureCache
from repro.crypto.keys import KeyAuthority
from repro.crypto.signatures import SignatureScheme
from repro.detectors.diamond_m import (
    AdaptiveMutenessDetector,
    MutenessDetector,
)
from repro.messages.consensus import NULL, VCurrent, VDecide
from repro.observability.registry import MODULE_SERVICE, MODULE_SIGNATURE
from repro.replication.kvstore import Command, KeyValueStore
from repro.replication.log import (
    NOOP,
    EngineFactory,
    SlotEnv,
    SlotEnvelope,
    default_engine,
)
from repro.service.checkpoint import (
    CheckpointCertCache,
    CheckpointCertificate,
    certificate_valid,
    service_digest,
)
from repro.service.config import ServiceConfig
from repro.service.messages import (
    Checkpoint,
    ClientReply,
    ClientRequest,
    StateRequest,
    StateResponse,
)
from repro.sim.process import Process, ProcessEnv


class _ReplicaEnvView:
    """The engines' window onto the world, restricted to the replicas.

    Clients share the simulated world but take no part in consensus,
    checkpoint quorums or muteness monitoring, so everything an engine
    derives from ``n`` (broadcast fan-out, quorum sizes, coordinator
    rotation, detector targets) must see the replica count, not the
    world size. The facade also gates sends while the replica is down
    (a down replica is silent, not crashed) and tracks timer names so
    slot timers can be cancelled wholesale at truncation and restart.
    """

    __slots__ = ("_process", "_env", "_n", "timer_names")

    def __init__(
        self, process: "ServiceReplicaProcess", env: ProcessEnv, n_replicas: int
    ) -> None:
        self._process = process
        self._env = env
        self._n = n_replicas
        self.timer_names: set[str] = set()

    @property
    def pid(self) -> int:
        return self._env.pid

    @property
    def n(self) -> int:
        return self._n

    @property
    def now(self) -> float:
        return self._env.now

    @property
    def crashed(self) -> bool:
        return self._env.crashed

    @property
    def scheduler(self):
        return self._env.scheduler

    @property
    def trace(self):
        return self._env.trace

    @property
    def rng(self):
        return self._env.rng

    @property
    def metrics(self):
        return self._env.metrics

    def send(self, dst: int, payload: Any) -> None:
        if self._process.down:
            return
        self._env.send(dst, payload)

    def set_timer(self, owner, name: str, delay: float) -> None:
        self.timer_names.add(name)
        self._env.set_timer(owner, name, delay)

    def cancel_timer(self, name: str) -> None:
        self.timer_names.discard(name)
        self._env.cancel_timer(name)


class ServiceReplicaProcess(Process):
    """One replica of the long-lived replicated key-value service."""

    def __init__(
        self,
        config: ServiceConfig,
        engine_factory: EngineFactory = default_engine,
        module_config: ModuleConfig | None = None,
    ) -> None:
        super().__init__()
        self.config = config
        self.params: SystemParameters = config.params()
        self.engine_factory = engine_factory
        self.module_config = (
            module_config if module_config is not None else ModuleConfig.full()
        )
        # -- service state machine -----------------------------------------
        self.store = KeyValueStore()
        self.executed: set[tuple[int, int]] = set()
        #: Compacted committed log: (slot, proposer, entry).
        self.log: list[tuple[int, int, Any]] = []
        # -- batching --------------------------------------------------------
        self.pending: deque[ClientRequest] = deque()
        self.pending_ids: set[tuple[int, int]] = set()
        self._batch_timer = False
        # -- slot pipeline ---------------------------------------------------
        self.engines: dict[int, Any] = {}
        self._decided: set[int] = set()
        self._pending_apply: dict[int, tuple] = {}
        #: Applied vectors retained since the stable checkpoint — the
        #: suffix served to catching-up peers.
        self._vector_history: dict[int, tuple] = {}
        #: slot -> the signed DECIDE justifying the slot's vector (the
        #: engine's ``decision_justification``, or the verified one a
        #: transfer installed) — shipped alongside the suffix so peers
        #: can re-check each slot against its own signature domain.
        self._vector_justifications: dict[int, SignedMessage] = {}
        self._proposed: dict[int, Any] = {}
        self.next_apply = 0
        self.base_slot = 0
        self._next_open = 0
        self.faulty_union: set[int] = set()
        # -- checkpoints -----------------------------------------------------
        #: count -> (snapshot items, executed tuple, store.applied, digest).
        self._local_snapshots: dict[int, tuple] = {}
        #: count -> digest -> signer pid -> signed vote.
        self._ckpt_votes: dict[int, dict[str, dict[int, SignedMessage]]] = {}
        self.stable: CheckpointCertificate | None = None
        self._stable_snapshot: tuple | None = None
        #: Every (count, digest) this replica attested, never truncated
        #: (the campaign oracles' convergence surface).
        self.checkpoint_history: list[tuple[int, str]] = []
        #: Counts this replica ever held a certificate for (also kept
        #: across restarts — an oracle surface, not protocol state).
        self.certified_counts: set[int] = set()
        self.checkpoint_mismatches = 0
        # -- recovery --------------------------------------------------------
        self.down = False
        self.downs = 0
        self.restarts = 0
        self._transferring = False
        self._transfer_reason = ""
        self._replaying = False
        #: Suffix entries refused during state transfer (forged vector,
        #: missing/invalid justification) — an oracle surface.
        self.suffix_rejections = 0
        #: Applied frontier at the last stall-probe tick.
        self._probe_apply = 0
        #: (virtual time, installed count, applied frontier) per transfer.
        self.state_transfers_completed: list[tuple[float, int, int]] = []
        # -- verification memos (volatile; cleared on restart) ---------------
        #: One signature-verdict cache for every domain this replica
        #: verifies in — slot engines, checkpoint votes, transfer
        #: re-checks. Keys carry the domain, so sharing is sound.
        self._sig_cache = SignatureCache()
        #: Fully-verified checkpoint certificates (state transfer).
        self._ckpt_cert_cache = CheckpointCertCache()
        #: slot -> verifying authority for suffix re-checks; rebuilding
        #: one per entry per response dominated transfer cost.
        self._transfer_authorities: dict[int, CertificationAuthority] = {}
        #: Senders already declared by the stale-envelope ingress check
        #: (one declaration event per culprit, like the engines').
        self._stale_culprits: set[int] = set()
        #: Adversary-zoo family (d) hook (docs/ADVERSARIES.md): when the
        #: campaign installs a :class:`~repro.zoo.corruption.StorageFault`
        #: here, every state response this replica serves passes through
        #: it — modelling stuck bits in the at-rest log/checkpoint
        #: storage. ``None`` (the default) is a no-op.
        self.storage_fault: Any = None

    # -- wiring -------------------------------------------------------------

    def bind(self, env: ProcessEnv) -> None:
        super().bind(env)
        self._view = _ReplicaEnvView(self, env, self.config.n_replicas)
        self._metrics = env.metrics.scope(MODULE_SERVICE, env.pid)
        self._sig_metrics = env.metrics.scope(MODULE_SIGNATURE, env.pid)
        self._sig_cache.attach_metrics(self._sig_metrics)
        self._ckpt_cert_cache.attach_metrics(self._metrics)
        # The checkpoint signature domain is separated from every slot
        # domain (slots use seed*1_000_003 + slot for slot >= 0).
        keys = KeyAuthority(
            self.config.n_replicas, seed=self.config.seed * 1_000_003 - 1
        )
        self._ckpt_authority = CertificationAuthority(
            SignatureScheme(keys, cache=self._sig_cache), keys.signer_for(env.pid)
        )

    def send(self, dst: int, payload: Any) -> None:
        if self.down:
            return
        super().send(dst, payload)

    # -- public surface (oracles, reports) ----------------------------------

    @property
    def committed_commands(self) -> int:
        """Client commands executed exactly once on this replica."""
        return len(self.executed)

    @property
    def applied_slots(self) -> int:
        return self.next_apply

    # -- message routing ----------------------------------------------------

    def on_start(self) -> None:
        if self.config.stall_probe > 0:
            self.set_timer("stall-probe", self.config.stall_probe)

    def on_message(self, src: int, payload: Any) -> None:
        if self.down:
            return
        if isinstance(payload, SlotEnvelope):
            self._on_envelope(src, payload)
        elif isinstance(payload, ClientRequest):
            self._on_request(payload)
        elif isinstance(payload, SignedMessage) and isinstance(
            payload.body, Checkpoint
        ):
            self._on_checkpoint_vote(payload)
        elif isinstance(payload, StateRequest):
            self._on_state_request(src, payload)
        elif isinstance(payload, StateResponse):
            self._on_state_response(payload)

    def on_timer(self, name: str) -> None:
        if self.down:
            return
        if name == "batch":
            self._batch_timer = False
            self._drain_batches(force=True)
        elif name == "state-retry" and self._transferring:
            self._broadcast_state_request()
            self.set_timer("state-retry", self.config.transfer_retry)
        elif name == "stall-probe":
            self._stall_probe()

    # -- client requests and batching ----------------------------------------

    def _on_request(self, request: ClientRequest) -> None:
        if not isinstance(request.command, Command):
            self._metrics.inc("requests_rejected")
            return
        if request.ident in self.executed:
            # The client resubmitted a command that already committed:
            # every reply evidently got lost; repeat ours. The slot is
            # unknown after compaction, hence the -1 sentinel.
            self.send(
                request.client,
                ClientReply(self.pid, request.client, request.req_id, -1),
            )
            return
        if request.ident in self.pending_ids:
            return  # duplicate submission, already queued or in flight
        self.pending.append(request)
        self.pending_ids.add(request.ident)
        self._metrics.inc("requests_received")
        self._drain_batches(force=False)

    def _prune_pending(self) -> None:
        """Drop requests that committed via another replica's batch."""
        if any(request.ident in self.executed for request in self.pending):
            kept = deque(
                request
                for request in self.pending
                if request.ident not in self.executed
            )
            for request in self.pending:
                if request.ident in self.executed:
                    self.pending_ids.discard(request.ident)
            self.pending = kept

    def _open_slots(self) -> int:
        return sum(1 for slot in self.engines if slot not in self._decided)

    def _drain_batches(self, force: bool) -> None:
        """Open new slots while the pipeline window and triggers allow.

        ``force`` is the time trigger (the batch timer expired): it
        flushes one partial batch; the size trigger keeps opening slots
        while full batches are available and the window has room.
        """
        self._prune_pending()
        while (
            self.pending
            and self._open_slots() < self.config.window
            and (force or len(self.pending) >= self.config.batch_size)
        ):
            if self._ensure_engine(self._next_open) is None:
                # The pipeline horizon refused the slot. Nothing mutates
                # between iterations of this loop, so retrying the same
                # slot can only spin; the next delivery or timer will
                # re-drain once the frontier moves.
                break
            force = False
        if self.pending and not self._batch_timer:
            self._batch_timer = True
            self.set_timer("batch", self.config.batch_delay)

    def _proposal_for(self, slot: int) -> Any:
        batch: list[ClientRequest] = []
        while self.pending and len(batch) < self.config.batch_size:
            request = self.pending.popleft()
            if request.ident in self.executed:
                self.pending_ids.discard(request.ident)
                continue
            batch.append(request)
        proposal = tuple(batch) if batch else NOOP
        self._proposed[slot] = proposal
        if batch:
            self._metrics.inc("batches_proposed")
            self._metrics.observe("batch_occupancy", len(batch))
        return proposal

    # -- the slot pipeline ---------------------------------------------------

    def _horizon(self) -> int:
        """Highest slot this replica will instantiate an engine for.

        Bounds resource use against a Byzantine peer spraying envelopes
        for far-future slots; generous enough that correct pipelining
        (window ahead of the applied frontier, plus transfer lag) never
        hits it.
        """
        return (
            self.next_apply
            + 4 * (self.config.window + self.config.checkpoint_interval)
            + 8
        )

    def _ensure_engine(self, slot: int):
        if slot < self.base_slot:
            return None
        engine = self.engines.get(slot)
        if engine is not None:
            return engine
        if slot >= self._horizon():
            self._metrics.inc("slots_beyond_horizon")
            return None
        # Domain separation exactly as in the replicated log: one key
        # authority per slot, derived by a fixed affine map of the seed.
        keys = KeyAuthority(
            self.config.n_replicas, seed=self.config.seed * 1_000_003 + slot
        )
        authority = CertificationAuthority(
            SignatureScheme(keys, cache=self._sig_cache),
            keys.signer_for(self.pid),
        )
        if self.config.muteness_detector == "adaptive":
            detector: MutenessDetector = AdaptiveMutenessDetector(
                initial_timeout=self.config.muteness_timeout
            )
        else:
            detector = MutenessDetector(
                initial_timeout=self.config.muteness_timeout
            )
        engine = self.engine_factory(
            self.pid,
            self._proposal_for(slot),
            self.params,
            authority,
            detector,
            self.module_config,
        )
        engine.bind(SlotEnv(self._view, slot))  # type: ignore[arg-type]
        self.engines[slot] = engine
        self._next_open = max(self._next_open, slot + 1)
        engine.on_start()
        return engine

    def _slot_authority(self, slot: int) -> CertificationAuthority:
        """A verifying authority for ``slot``'s signature domain (cached).

        Shared by suffix re-checks during state transfer and the
        stale-envelope ingress check; the bounded cache keeps repeat
        verifications of one slot's domain from re-deriving keys.
        """
        authority = self._transfer_authorities.get(slot)
        if authority is None:
            keys = KeyAuthority(
                self.config.n_replicas,
                seed=self.config.seed * 1_000_003 + slot,
            )
            authority = CertificationAuthority(
                SignatureScheme(keys, cache=self._sig_cache),
                keys.signer_for(self.pid),
            )
            if len(self._transfer_authorities) >= 256:
                self._transfer_authorities.pop(
                    next(iter(self._transfer_authorities))
                )
            self._transfer_authorities[slot] = authority
        return authority

    def _stale_ingress(self, src: int, envelope: SlotEnvelope) -> None:
        """The signature module's check on an envelope the protocol no
        longer needs.

        Figure 1 puts the signature module upstream of the protocol
        module: a message whose slot was checkpointed away still crosses
        the ingress, so tampered traffic is detected and attributed to
        the signature module even when no slot engine exists to receive
        it. Without this, a corrupted envelope racing a checkpoint
        truncation would vanish unexamined.
        """
        inner = envelope.inner
        if not isinstance(inner, SignedMessage):
            self._sig_metrics.inc("messages_rejected")
            self._declare_stale(src, "signature module: unsigned payload")
            return
        if inner.body.sender != src:
            self._sig_metrics.inc("messages_rejected")
            self._declare_stale(
                src,
                f"signature module: identity field {inner.body.sender} "
                f"inconsistent with the sending channel {src}",
            )
            return
        if not self._slot_authority(envelope.slot).signature_valid(inner):
            self._sig_metrics.inc("messages_rejected")
            self._declare_stale(src, "signature module: invalid signature")

    def _declare_stale(self, culprit: int, reason: str) -> None:
        if culprit == self.pid or culprit in self._stale_culprits:
            return
        self._stale_culprits.add(culprit)
        self.faulty_union.add(culprit)
        self.record("declare_faulty", target=culprit, reason=reason)

    def _on_envelope(self, src: int, envelope: SlotEnvelope) -> None:
        if envelope.slot < self.base_slot:
            self._metrics.inc("stale_envelopes")
            self._stale_ingress(src, envelope)
            return
        engine = self._ensure_engine(envelope.slot)
        if engine is None:
            return
        engine.on_message(src, envelope.inner)
        self.faulty_union |= engine.faulty
        self._harvest(envelope.slot)

    def _harvest(self, slot: int) -> None:
        engine = self.engines.get(slot)
        if engine is None or not engine.decided or slot in self._decided:
            return
        self._decided.add(slot)
        vector = engine.decision
        self._pending_apply[slot] = vector
        justification = getattr(engine, "decision_justification", None)
        if justification is not None:
            self._vector_justifications[slot] = justification
        self._metrics.inc("slots_decided")
        mine = self._proposed.get(slot, NOOP)
        if mine != NOOP and vector[self.pid] == NULL:
            # At-least-once: our batch lost the INIT race of this slot —
            # requeue its still-unexecuted commands at the front.
            self._metrics.inc("batches_lost")
            for request in reversed(mine):
                if request.ident not in self.executed:
                    self.pending.appendleft(request)
                    self.pending_ids.add(request.ident)
        self._apply_ready()
        self._drain_batches(force=False)

    def _apply_ready(self) -> None:
        """Apply buffered decisions in strict slot order; checkpoint on
        every ``checkpoint_interval`` boundary."""
        while self.next_apply in self._pending_apply:
            slot = self.next_apply
            vector = self._pending_apply.pop(slot)
            self._vector_history[slot] = vector
            committed = 0
            for proposer, batch in enumerate(vector):
                if batch == NULL or batch == NOOP:
                    continue
                entries = batch if isinstance(batch, tuple) else (batch,)
                for entry in entries:
                    committed += self._apply_entry(slot, proposer, entry)
            self.record("commit", slot=slot, commands=committed)
            self._metrics.inc("slots_applied")
            self.next_apply += 1
            if self.next_apply % self.config.checkpoint_interval == 0:
                self._take_checkpoint(self.next_apply)

    def _apply_entry(self, slot: int, proposer: int, entry: Any) -> int:
        if isinstance(entry, ClientRequest):
            if entry.ident in self.executed:
                return 0  # committed in an earlier slot or batch
            self.executed.add(entry.ident)
            self.store.apply(entry.command)
            self.log.append((slot, proposer, entry))
            self.pending_ids.discard(entry.ident)
            self._metrics.inc("commands_committed")
            if not self._replaying:
                self.send(
                    entry.client,
                    ClientReply(self.pid, entry.client, entry.req_id, slot),
                )
            return 1
        # A Byzantine proposer smuggled a non-request into the vector:
        # apply it deterministically (the store ignores unknown shapes)
        # so every correct replica stays in lockstep.
        self.store.apply(entry)
        self.log.append((slot, proposer, entry))
        self._metrics.inc("foreign_entries")
        return 0

    # -- checkpoints ---------------------------------------------------------

    def _take_checkpoint(self, count: int) -> None:
        digest = service_digest(self.store, self.executed)
        snapshot = tuple(
            sorted(
                self.store.snapshot().items(),
                key=lambda kv: (type(kv[0]).__name__, repr(kv[0])),
            )
        )
        self._local_snapshots[count] = (
            snapshot,
            tuple(sorted(self.executed)),
            self.store.applied,
            digest,
        )
        self.checkpoint_history.append((count, digest))
        self.record("checkpoint", count=count, digest=digest)
        self._metrics.inc("checkpoints_taken")
        body = Checkpoint(sender=self.pid, count=count, digest=digest)
        signed = self._ckpt_authority.make(body)
        for dst in range(self.config.n_replicas):
            self.send(dst, signed)

    def _on_checkpoint_vote(self, signed: SignedMessage) -> None:
        body = signed.body
        try:
            valid = self._ckpt_authority.signature_valid(signed)
        except Exception:
            valid = False  # structurally malformed: rejection, not crash
        if not valid:
            self._metrics.inc("checkpoint_votes_rejected")
            return
        if self.stable is not None and body.count <= self.stable.count:
            return  # already certified at or beyond this count
        votes = self._ckpt_votes.setdefault(body.count, {}).setdefault(
            body.digest, {}
        )
        votes[body.sender] = signed
        if len(votes) < self.params.f + 1:
            return
        certificate = CheckpointCertificate(
            count=body.count,
            digest=body.digest,
            certificate=Certificate(tuple(votes.values())),
        )
        local = self._local_snapshots.get(body.count)
        if local is not None:
            if local[3] == body.digest:
                self._adopt_stable(certificate, local)
            else:
                # f+1 replicas certified a digest we did not compute:
                # either we diverged or the fault bound broke. Surface
                # it; the campaign convergence oracle fails the run.
                self.checkpoint_mismatches += 1
                self.record(
                    "checkpoint_mismatch",
                    count=body.count,
                    ours=local[3],
                    theirs=body.digest,
                )
                self._metrics.inc("checkpoint_mismatches")
                if self.config.heal_on_mismatch:
                    # Self-stabilization (docs/ADVERSARIES.md): an f+1
                    # certified quorum proves *our* state arbitrary-
                    # faulted. Treat the replica as transiently corrupt:
                    # wipe the volatile state and recover through
                    # certified transfer, like a restart without the
                    # crash.
                    self._heal_divergence(body.count)
            return
        # A quorum certified state we never reached: we are lagging by
        # at least one full checkpoint interval — catch up via transfer.
        if (
            not self._transferring
            and body.count >= self.next_apply + self.config.checkpoint_interval
        ):
            self._start_state_transfer()

    def _adopt_stable(
        self, certificate: CheckpointCertificate, local: tuple
    ) -> None:
        snapshot, executed, store_applied, _digest = local
        self.stable = certificate
        self._stable_snapshot = (snapshot, executed, store_applied)
        self.certified_counts.add(certificate.count)
        self.record(
            "checkpoint_certificate",
            count=certificate.count,
            signers=sorted(certificate.signers),
        )
        self._metrics.inc("checkpoint_certificates")
        self._truncate(certificate.count)

    def _truncate(self, count: int) -> None:
        """Log compaction: drop everything the certificate covers."""
        for slot in [s for s in self.engines if s < count]:
            del self.engines[slot]
            self._cancel_slot_timers(slot)
            self._proposed.pop(slot, None)
        self._decided = {s for s in self._decided if s >= count}
        self._pending_apply = {
            s: v for s, v in self._pending_apply.items() if s >= count
        }
        self._vector_history = {
            s: v for s, v in self._vector_history.items() if s >= count
        }
        self._vector_justifications = {
            s: j for s, j in self._vector_justifications.items() if s >= count
        }
        before = len(self.log)
        self.log = [entry for entry in self.log if entry[0] >= count]
        self._metrics.inc("log_entries_truncated", before - len(self.log))
        self._local_snapshots = {
            c: s for c, s in self._local_snapshots.items() if c >= count
        }
        self._ckpt_votes = {
            c: v for c, v in self._ckpt_votes.items() if c > count
        }
        self.base_slot = count
        self._next_open = max(self._next_open, count)

    def _cancel_slot_timers(self, slot: int) -> None:
        prefix = f"slot{slot}:"
        for name in [n for n in self._view.timer_names if n.startswith(prefix)]:
            self._view.cancel_timer(name)

    # -- recovery: down / restart / state transfer ---------------------------

    def go_down(self) -> None:
        """Take the replica down: silent and deaf, but not crashed."""
        if self.down:
            return
        self.down = True
        self.downs += 1
        self.record("service_down", applied=self.next_apply)
        self._metrics.inc("downs")

    def restart(self) -> None:
        """Come back up with volatile state lost; keys and pid survive.

        Everything the replica rebuilt from messages — engines, decided
        vectors, the store, the executed set, checkpoints — is wiped;
        recovery then runs entirely through state transfer.
        """
        if not self.down:
            return
        self._wipe_volatile()
        self.down = False
        self.restarts += 1
        self.record("service_restart")
        self._metrics.inc("restarts")
        if self.config.stall_probe > 0:
            self._probe_apply = 0
            self.set_timer("stall-probe", self.config.stall_probe)
        self._start_state_transfer("restart")

    def _wipe_volatile(self) -> None:
        """Drop everything rebuilt from messages (the restart recipe)."""
        for name in list(self._view.timer_names):
            self._view.cancel_timer(name)
        self.engines.clear()
        self._decided.clear()
        self._pending_apply.clear()
        self._vector_history.clear()
        self._vector_justifications.clear()
        self._proposed.clear()
        self.pending.clear()
        self.pending_ids.clear()
        self.log.clear()
        self._local_snapshots.clear()
        self._ckpt_votes.clear()
        # Verification memos live in process memory: a wiped replica
        # starts cold (re-verifies everything it is shown again).
        self._sig_cache.clear()
        self._ckpt_cert_cache.clear()
        self._transfer_authorities.clear()
        self.store = KeyValueStore()
        self.executed = set()
        self.stable = None
        self._stable_snapshot = None
        self.next_apply = 0
        self.base_slot = 0
        self._next_open = 0
        self._batch_timer = False

    def _heal_divergence(self, count: int) -> None:
        """Recover from a certified-quorum digest mismatch in place.

        The replica stays up but discards its (arbitrary-faulted)
        volatile state and pulls certified state back from the peers —
        the self-stabilizing recovery the adversary zoo's transient-
        corruption oracle asserts. The ``"heal"`` transfer reason keeps
        retrying until real progress, like a restart's.
        """
        self.record("state_heal", count=count, applied=self.next_apply)
        self._metrics.inc("state_heals")
        self._wipe_volatile()
        if self.config.stall_probe > 0:
            self._probe_apply = 0
            self.set_timer("stall-probe", self.config.stall_probe)
        self._start_state_transfer("heal")

    def catch_up(self) -> None:
        """Ask peers for certified state right away.

        The net runtime calls this on a cold-started node rejoining an
        established cluster (``--join``): unlike :meth:`restart`, the OS
        process has no volatile state to wipe — it only needs to pull the
        certified snapshot and suffix before serving.
        """
        if not self.down and not self._transferring:
            self._start_state_transfer("join")

    def _stall_probe(self) -> None:
        """Anti-entropy: transfer when the apply frontier is wedged.

        A replica that lost messages of a slot (e.g. its TCP connections
        died under it) can hold later decided slots forever without being
        able to apply them — in-order apply never passes the gap. If a
        full probe period elapsed with outstanding slot work and zero
        apply progress, pull certified state from the peers.
        """
        stalled = (
            self.next_apply == self._probe_apply
            and not self._transferring
            and (bool(self._pending_apply) or self._open_slots() > 0)
        )
        if stalled:
            self._metrics.inc("stall_probes_fired")
            self._start_state_transfer("probe")
        self._probe_apply = self.next_apply
        self.set_timer("stall-probe", self.config.stall_probe)

    def _start_state_transfer(self, reason: str = "lag") -> None:
        self._transferring = True
        self._transfer_reason = reason
        self.record(
            "state_transfer_start", applied=self.next_apply, reason=reason
        )
        self._metrics.inc("state_transfers_started")
        self._broadcast_state_request()
        self.set_timer("state-retry", self.config.transfer_retry)

    def _broadcast_state_request(self) -> None:
        request = StateRequest(replica=self.pid, applied=self.next_apply)
        for dst in range(self.config.n_replicas):
            if dst != self.pid:
                self.send(dst, request)

    def _on_state_request(self, src: int, request: StateRequest) -> None:
        if not 0 <= src < self.config.n_replicas or src == self.pid:
            return
        if self.stable is not None and self._stable_snapshot is not None:
            snapshot, executed, store_applied = self._stable_snapshot
            count: int = self.stable.count
            certificate: CheckpointCertificate | None = self.stable
        else:
            snapshot, executed, store_applied, count, certificate = (
                (), (), 0, 0, None,
            )
        suffix = {
            s: v for s, v in self._vector_history.items() if s >= count
        }
        suffix.update(
            {s: v for s, v in self._pending_apply.items() if s >= count}
        )
        response = StateResponse(
            replica=self.pid,
            count=count,
            snapshot=snapshot,
            executed=executed,
            store_applied=store_applied,
            certificate=certificate,
            suffix=tuple(
                (s, v, self._vector_justifications.get(s))
                for s, v in sorted(suffix.items())
            ),
        )
        if self.storage_fault is not None:
            # The replica reads its at-rest state through the faulty
            # medium: corruption happens on the serving side, detection
            # must happen on the requesting side.
            response = self.storage_fault.corrupt_response(response)
        self._metrics.inc("state_responses")
        self._metrics.inc("state_transfer_bytes", len(repr(response)))
        self.send(src, response)

    def _suffix_entry_valid(self, slot: int, vector: Any, justification: Any) -> bool:
        """Per-slot transfer verification (the full PBFT-style check).

        A suffix entry is accepted only with the responder's signed
        DECIDE for exactly this vector, carrying an (n − F) same-round
        quorum of validly signed matching CURRENTs — all checked under
        the *slot's own* signature domain, so nothing transfers between
        slots and a forged suffix needs forged signatures. Any malformed
        shape is a rejection, never a crash.
        """
        try:
            if not isinstance(vector, tuple) or len(vector) != self.config.n_replicas:
                return False
            if not isinstance(justification, SignedMessage):
                return False
            body = justification.body
            if not isinstance(body, VDecide) or body.est_vect != vector:
                return False
            if not 0 <= body.sender < self.config.n_replicas:
                return False
            authority = self._slot_authority(slot)
            if not authority.signature_valid(justification):
                return False
            cert = justification.cert
            if not isinstance(cert, Certificate):
                return False  # a pruned justification cannot be re-checked
            by_round: dict[int, set[int]] = {}
            for entry in cert:
                inner = entry.body
                if not isinstance(inner, VCurrent):
                    continue  # est_cert entries (INITs) ride along; skip
                if inner.est_vect != vector:
                    continue
                if not 0 <= inner.sender < self.config.n_replicas:
                    continue
                if not authority.signature_valid(entry):
                    continue
                by_round.setdefault(inner.round, set()).add(inner.sender)
            return any(
                len(senders) >= self.params.quorum
                for senders in by_round.values()
            )
        except Exception:
            return False  # structurally malformed entry: rejection, not crash

    def _on_state_response(self, response: StateResponse) -> None:
        before_apply = self.next_apply
        installed = 0
        if response.count > self.next_apply:
            certificate = response.certificate
            # The snapshot is untrusted: verify the certificate (f+1
            # valid matching signatures in the checkpoint domain) and
            # recompute the digest from the payload before installing.
            if (
                not isinstance(certificate, CheckpointCertificate)
                or certificate.count != response.count
                or not certificate_valid(
                    certificate,
                    self._ckpt_authority,
                    self.params.f,
                    cache=self._ckpt_cert_cache,
                )
            ):
                self._metrics.inc("state_responses_rejected")
                return
            probe = KeyValueStore().restore(
                dict(response.snapshot), applied=response.store_applied
            )
            if service_digest(probe, response.executed) != certificate.digest:
                self._metrics.inc("state_responses_rejected")
                return
            self.store = probe
            self.executed = set(response.executed)
            self.stable = certificate
            self._stable_snapshot = (
                response.snapshot,
                response.executed,
                response.store_applied,
            )
            self.next_apply = response.count
            installed = response.count
            self.certified_counts.add(response.count)
            if (response.count, certificate.digest) not in self.checkpoint_history:
                self.checkpoint_history.append(
                    (response.count, certificate.digest)
                )
            self.record(
                "snapshot_installed",
                count=response.count,
                digest=certificate.digest,
            )
            self._metrics.inc("snapshots_installed")
            self._truncate(response.count)
        # Replay the decided suffix without re-sending client replies.
        # Each entry is verified against its slot's signature domain
        # before it is believed — the suffix is exactly as untrusted as
        # the snapshot (the ROADMAP trust gap this closes).
        self._replaying = True
        for entry in response.suffix:
            if not (isinstance(entry, tuple) and len(entry) == 3):
                self._reject_suffix_entry("malformed")
                continue
            slot, vector, justification = entry
            if (
                not isinstance(slot, int)
                or slot < self.next_apply
                or slot in self._pending_apply
                or slot in self._decided
            ):
                continue  # stale or already decided locally
            if not self._suffix_entry_valid(slot, vector, justification):
                self._reject_suffix_entry(f"slot {slot}")
                continue
            self._metrics.inc("suffix_entries_verified")
            self._decided.add(slot)
            self._pending_apply[slot] = tuple(vector)
            self._vector_justifications[slot] = justification
        self._apply_ready()
        self._replaying = False
        progress = self.next_apply > before_apply or bool(installed)
        if progress:
            self.state_transfers_completed.append(
                (self.now, installed, self.next_apply)
            )
            self.record(
                "state_transfer_complete",
                count=installed,
                applied=self.next_apply,
            )
            self._metrics.inc("state_transfers_completed")
            self._drain_batches(force=False)
        if self._transferring and (
            progress
            or (
                # A probe/join transfer may find the peers have nothing
                # we lack; stop retrying instead of livelocking. Restart
                # and lag transfers keep retrying until real progress —
                # there the replica is behind by construction.
                self._transfer_reason in ("probe", "join")
                and response.count <= before_apply
            )
        ):
            self._transferring = False
            self.cancel_timer("state-retry")

    def _reject_suffix_entry(self, what: str) -> None:
        self.suffix_rejections += 1
        self._metrics.inc("suffix_entries_rejected")
        self.record("suffix_entry_rejected", entry=what)
