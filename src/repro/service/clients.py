"""Client workload generators for the replicated service.

Two standard workload shapes drive the service (docs/SERVICE.md):

* :class:`OpenLoopClient` — arrivals form a Poisson process of a fixed
  rate, independent of completions (the load-generator model: latency
  degradation does not throttle offered load);
* :class:`ClosedLoopClient` — one outstanding request at a time, a new
  one after a think-time pause (the interactive-user model).

Both draw every random choice from the world's seeded per-process
stream (``env.rng``), so a run is a pure function of its seed. A client
records the submit time of every request and the end-to-end latency of
every completion; on silence past ``request_timeout`` it *resubmits the
same request* to the next replica in round-robin order — the replicas'
executed-id deduplication makes the retry safe.
"""

from __future__ import annotations

from repro.observability.registry import MODULE_SERVICE
from repro.replication.kvstore import Command
from repro.service.messages import ClientReply, ClientRequest
from repro.sim.process import Process, ProcessEnv


class ServiceClient(Process):
    """Common request/latency bookkeeping of both workload shapes."""

    def __init__(
        self,
        n_replicas: int,
        total_requests: int,
        request_timeout: float,
        key_space: int = 16,
    ) -> None:
        super().__init__()
        self.n_replicas = n_replicas
        self.total_requests = total_requests
        self.request_timeout = request_timeout
        self.key_space = key_space
        self.issued = 0
        #: req_id -> the request as originally issued (resent verbatim).
        self.outstanding: dict[int, ClientRequest] = {}
        self.sent_at: dict[int, float] = {}
        self.attempts: dict[int, int] = {}
        #: req_id -> completion virtual time.
        self.completed: dict[int, float] = {}
        #: end-to-end latencies in issue order (the benchmark's input).
        self.latencies: list[float] = []
        self.resubmissions = 0

    def bind(self, env: ProcessEnv) -> None:
        super().bind(env)
        self._metrics = env.metrics.scope(MODULE_SERVICE, env.pid)

    # -- workload surface ---------------------------------------------------

    @property
    def finished(self) -> bool:
        return len(self.completed) >= self.total_requests

    def completed_idents(self) -> set[tuple[int, int]]:
        return {(self.pid, req_id) for req_id in self.completed}

    # -- request lifecycle --------------------------------------------------

    def _issue(self) -> None:
        req_id = self.issued
        self.issued += 1
        key = f"k{self.env.rng.randint(0, self.key_space - 1)}"
        command = Command("set", key, f"c{self.pid}-{req_id}")
        request = ClientRequest(client=self.pid, req_id=req_id, command=command)
        self.outstanding[req_id] = request
        self.sent_at[req_id] = self.now
        self.attempts[req_id] = 0
        self._metrics.inc("requests_issued")
        self.record("request", req_id=req_id)
        self._submit(request)

    def _submit(self, request: ClientRequest) -> None:
        # Round-robin over replicas: the preferred seat first, the next
        # one on each resubmission (redirect-on-silence).
        attempt = self.attempts[request.req_id]
        target = (self.pid + request.req_id + attempt) % self.n_replicas
        self.send(target, request)
        self.set_timer(f"req-{request.req_id}", self.request_timeout)

    def on_timer(self, name: str) -> None:
        if name.startswith("req-"):
            req_id = int(name.partition("-")[2])
            request = self.outstanding.get(req_id)
            if request is None:
                return
            self.attempts[req_id] += 1
            self.resubmissions += 1
            self._metrics.inc("resubmissions")
            self.record("resubmit", req_id=req_id, attempt=self.attempts[req_id])
            self._submit(request)
            return
        self.handle_workload_timer(name)

    def on_message(self, src: int, payload) -> None:
        if not isinstance(payload, ClientReply) or payload.client != self.pid:
            return
        request = self.outstanding.pop(payload.req_id, None)
        if request is None:
            return  # duplicate reply (every replica replies; first wins)
        self.cancel_timer(f"req-{payload.req_id}")
        latency = self.now - self.sent_at[payload.req_id]
        self.completed[payload.req_id] = self.now
        self.latencies.append(latency)
        self._metrics.inc("requests_completed")
        self._metrics.observe("request_latency", latency)
        self.record("reply", req_id=payload.req_id, slot=payload.slot)
        self.on_complete(payload.req_id)

    # -- hooks for the two workload shapes ----------------------------------

    def handle_workload_timer(self, name: str) -> None:
        """Workload-specific timers (arrival / think)."""

    def on_complete(self, req_id: int) -> None:
        """A request finished; closed-loop clients schedule the next."""


class OpenLoopClient(ServiceClient):
    """Poisson arrivals at ``rate`` requests per unit of virtual time."""

    def __init__(
        self,
        n_replicas: int,
        total_requests: int,
        request_timeout: float,
        rate: float,
        key_space: int = 16,
    ) -> None:
        super().__init__(n_replicas, total_requests, request_timeout, key_space)
        self.rate = rate

    def on_start(self) -> None:
        self._schedule_arrival()

    def _schedule_arrival(self) -> None:
        self.set_timer("arrival", self.env.rng.expovariate(self.rate))

    def handle_workload_timer(self, name: str) -> None:
        if name != "arrival" or self.issued >= self.total_requests:
            return
        self._issue()
        if self.issued < self.total_requests:
            self._schedule_arrival()


class ClosedLoopClient(ServiceClient):
    """One outstanding request; the next follows after a think pause."""

    def __init__(
        self,
        n_replicas: int,
        total_requests: int,
        request_timeout: float,
        think: float,
        key_space: int = 16,
    ) -> None:
        super().__init__(n_replicas, total_requests, request_timeout, key_space)
        self.think = think

    def on_start(self) -> None:
        self._issue()

    def on_complete(self, req_id: int) -> None:
        if self.issued >= self.total_requests:
            return
        if self.think <= 0:
            self._issue()
            return
        # Jittered think time: deterministic per seed, desynchronised
        # across clients so closed-loop runs do not proceed in lockstep.
        self.set_timer("think", self.think * self.env.rng.uniform(0.5, 1.5))

    def handle_workload_timer(self, name: str) -> None:
        if name == "think" and self.issued < self.total_requests:
            self._issue()
