"""Service campaign: replayable scenarios and the service oracles.

A :class:`ServiceScenario` pins one full service deployment — workload,
batching/pipelining knobs, checkpoint cadence, Byzantine assignment,
link faults and recovery plan — exactly like
:class:`~repro.campaign.scenario.Scenario` pins one consensus run: the
config round-trips through plain JSON, hashes to a stable scenario id,
and two runs of the same scenario produce identical records.

The service oracle catalogue judges a finished run on:

* **convergence** — at every checkpoint count, all correct replicas that
  attested it computed the same digest (the linearizable-store claim at
  checkpoint granularity), and no replica observed a certified digest
  conflicting with its own;
* **certificate validity** — every stable checkpoint certificate held by
  a correct replica re-verifies (f+1 valid, matching, distinct-signer
  votes);
* **exactly-once** — every request a client saw completed is executed at
  some correct replica (replies never precede commits);
* **progress** — the run commits at least ``min_commands`` client
  commands across at least ``min_checkpoints`` certified checkpoints;
* **recovery** — every replica in the recovery plan completed state
  transfer and committed new slots past the installed snapshot.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.byzantine import TRANSFORMED_ATTACKS, transformed_attack
from repro.campaign.scenario import DELAY_MODELS
from repro.errors import ConfigurationError
from repro.service.checkpoint import certificate_valid
from repro.service.config import CLIENT_MODES, ServiceConfig
from repro.service.runtime import ServiceSystem, build_service_system
from repro.sim.world import TRANSPORTS
from repro.sim.network import LinkModel

#: Verdicts, matching the consensus campaign vocabulary.
VERDICT_PASS = "pass"
VERDICT_FAIL = "fail"


@dataclass(frozen=True, slots=True)
class ServiceScenario:
    """A point in the service campaign's scenario space."""

    name: str = "baseline"
    n_replicas: int = 4
    n_clients: int = 2
    mode: str = "open"
    rate: float = 2.0
    think: float = 1.0
    requests_per_client: int = 25
    batch_size: int = 4
    batch_delay: float = 1.0
    window: int = 2
    checkpoint_interval: int = 2
    request_timeout: float = 40.0
    seed: int = 0
    #: Byzantine fault assignment, sorted ``(pid, attack-name)`` pairs
    #: from the transformed-attack catalogue (engine-level attacks).
    attacks: tuple[tuple[int, str], ...] = ()
    #: Recovery plan: sorted ``(pid, down_at, up_at)`` triples.
    recoveries: tuple[tuple[int, float, float], ...] = ()
    loss: float = 0.0
    transport: str = "none"
    delay_model: str = "uniform"
    max_time: float = 2_500.0
    #: Progress thresholds the oracles enforce.
    min_commands: int = 0
    min_checkpoints: int = 0

    # -- identity ------------------------------------------------------------

    @property
    def scenario_id(self) -> str:
        canonical = json.dumps(
            self.to_config(), sort_keys=True, separators=(",", ":")
        )
        return "v" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]

    # -- config round-trip ---------------------------------------------------

    def to_config(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "n_replicas": self.n_replicas,
            "n_clients": self.n_clients,
            "mode": self.mode,
            "rate": self.rate,
            "think": self.think,
            "requests_per_client": self.requests_per_client,
            "batch_size": self.batch_size,
            "batch_delay": self.batch_delay,
            "window": self.window,
            "checkpoint_interval": self.checkpoint_interval,
            "request_timeout": self.request_timeout,
            "seed": self.seed,
            "attacks": {str(pid): name for pid, name in self.attacks},
            "recoveries": [
                [pid, down_at, up_at] for pid, down_at, up_at in self.recoveries
            ],
            "loss": self.loss,
            "transport": self.transport,
            "delay_model": self.delay_model,
            "max_time": self.max_time,
            "min_commands": self.min_commands,
            "min_checkpoints": self.min_checkpoints,
        }

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "ServiceScenario":
        try:
            return cls(
                name=str(config.get("name", "baseline")),
                n_replicas=int(config["n_replicas"]),
                n_clients=int(config["n_clients"]),
                mode=str(config.get("mode", "open")),
                rate=float(config.get("rate", 2.0)),
                think=float(config.get("think", 1.0)),
                requests_per_client=int(config["requests_per_client"]),
                batch_size=int(config.get("batch_size", 4)),
                batch_delay=float(config.get("batch_delay", 1.0)),
                window=int(config.get("window", 2)),
                checkpoint_interval=int(config.get("checkpoint_interval", 2)),
                request_timeout=float(config.get("request_timeout", 40.0)),
                seed=int(config.get("seed", 0)),
                attacks=tuple(
                    sorted(
                        (int(pid), str(name))
                        for pid, name in dict(config.get("attacks") or {}).items()
                    )
                ),
                recoveries=tuple(
                    sorted(
                        (int(pid), float(down_at), float(up_at))
                        for pid, down_at, up_at in (config.get("recoveries") or ())
                    )
                ),
                loss=float(config.get("loss", 0.0)),
                transport=str(config.get("transport", "none")),
                delay_model=str(config.get("delay_model", "uniform")),
                max_time=float(config.get("max_time", 2_500.0)),
                min_commands=int(config.get("min_commands", 0)),
                min_checkpoints=int(config.get("min_checkpoints", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed service scenario config: {exc}"
            ) from exc

    # -- derived -------------------------------------------------------------

    def service_config(self) -> ServiceConfig:
        return ServiceConfig(
            n_replicas=self.n_replicas,
            n_clients=self.n_clients,
            mode=self.mode,
            rate=self.rate,
            think=self.think,
            requests_per_client=self.requests_per_client,
            batch_size=self.batch_size,
            batch_delay=self.batch_delay,
            window=self.window,
            checkpoint_interval=self.checkpoint_interval,
            request_timeout=self.request_timeout,
            seed=self.seed,
        )

    @property
    def faulty_pids(self) -> frozenset[int]:
        return frozenset({pid for pid, _ in self.attacks}) | frozenset(
            {pid for pid, _, _ in self.recoveries}
        )

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on any inconsistency."""
        config = self.service_config()
        config.validate()
        if self.mode not in CLIENT_MODES:  # pragma: no cover - config.validate
            raise ConfigurationError(f"unknown client mode {self.mode!r}")
        params = config.params()
        for pid, name in self.attacks:
            if not 0 <= pid < self.n_replicas:
                raise ConfigurationError(
                    f"attack pid {pid} out of range for "
                    f"n_replicas={self.n_replicas}"
                )
            if name not in TRANSFORMED_ATTACKS:
                raise ConfigurationError(
                    f"unknown attack {name!r}; known: "
                    f"{sorted(TRANSFORMED_ATTACKS)}"
                )
        attack_pids = [pid for pid, _ in self.attacks]
        if len(attack_pids) != len(set(attack_pids)):
            raise ConfigurationError("duplicate attack pid in service scenario")
        for pid, down_at, up_at in self.recoveries:
            if not 0 <= pid < self.n_replicas:
                raise ConfigurationError(
                    f"recovery pid {pid} out of range for "
                    f"n_replicas={self.n_replicas}"
                )
            if down_at < 0 or up_at <= down_at:
                raise ConfigurationError(
                    f"recovery window [{down_at!r}, {up_at!r}) must satisfy "
                    "0 <= down < up"
                )
        if set(attack_pids) & {pid for pid, _, _ in self.recoveries}:
            raise ConfigurationError(
                "a replica cannot be both Byzantine and recovering"
            )
        if len(self.faulty_pids) > params.f:
            raise ConfigurationError(
                f"{len(self.faulty_pids)} faulty replicas exceed F={params.f} "
                f"for n={self.n_replicas}"
            )
        if not 0.0 <= self.loss < 1.0:
            raise ConfigurationError(
                f"loss probability must be in [0, 1), got {self.loss!r}"
            )
        if self.loss and self.transport == "none":
            raise ConfigurationError(
                "a lossy service scenario needs a reliable transport "
                "(transport='reliable'); the service assumes reliable channels"
            )
        if self.transport not in TRANSPORTS:
            raise ConfigurationError(
                f"unknown transport {self.transport!r}; known: "
                f"{list(TRANSPORTS)}"
            )
        if self.delay_model not in DELAY_MODELS:
            raise ConfigurationError(
                f"unknown delay model {self.delay_model!r}; known: "
                f"{sorted(DELAY_MODELS)}"
            )
        if self.max_time <= 0:
            raise ConfigurationError(
                f"max_time must be positive, got {self.max_time}"
            )

    # -- construction --------------------------------------------------------

    def build(self) -> ServiceSystem:
        """Validate and build the (not yet run) service world."""
        self.validate()
        byzantine = {}
        for pid, name in self.attacks:
            byzantine.update(transformed_attack(pid, name))
        factory, defaults = DELAY_MODELS[self.delay_model]
        link_model = LinkModel(loss=self.loss) if self.loss else None
        return build_service_system(
            self.service_config(),
            byzantine=byzantine,
            recoveries=self.recoveries,
            delay_model=factory(**defaults),
            link_model=link_model,
            transport=self.transport,
        )


# -- oracles -----------------------------------------------------------------


def evaluate_service_outcome(
    scenario: ServiceScenario, system: ServiceSystem
) -> tuple[str, list[str]]:
    """Run the service oracle catalogue; returns (verdict, violations)."""
    violations: list[str] = []

    # Convergence: one digest per checkpoint count across correct replicas.
    for count, digests in sorted(system.checkpoint_digests().items()):
        if len(digests) != 1:
            violations.append(
                f"convergence: checkpoint {count} has {len(digests)} distinct "
                f"digests across correct replicas"
            )
    for pid in sorted(system.correct_pids):
        if system.replicas[pid].checkpoint_mismatches:
            violations.append(
                f"convergence: replica {pid} observed a certified digest "
                f"conflicting with its own computation"
            )

    # Certificate validity at every correct replica holding one.
    params = scenario.service_config().params()
    for pid in sorted(system.correct_pids):
        replica = system.replicas[pid]
        if replica.stable is not None and not certificate_valid(
            replica.stable, replica._ckpt_authority, params.f
        ):
            violations.append(
                f"certificate: replica {pid}'s stable checkpoint certificate "
                f"does not verify"
            )

    # Exactly-once: a completed request is executed at a correct replica.
    executed_union: set[tuple[int, int]] = set()
    for pid in system.correct_pids:
        executed_union |= system.replicas[pid].executed
    for client in system.clients:
        missing = client.completed_idents() - executed_union
        if missing:
            violations.append(
                f"exactly-once: client {client.pid} saw replies for "
                f"{len(missing)} requests no correct replica executed"
            )

    # Progress thresholds.
    committed = system.committed_commands()
    if committed < scenario.min_commands:
        violations.append(
            f"progress: {committed} client commands committed, scenario "
            f"requires >= {scenario.min_commands}"
        )
    certified = system.certified_checkpoints()
    if certified < scenario.min_checkpoints:
        violations.append(
            f"progress: {certified} certified checkpoints, scenario "
            f"requires >= {scenario.min_checkpoints}"
        )

    # Recovery: every planned restart completed a state transfer and
    # committed new slots past the installed snapshot.
    for pid, _down_at, _up_at in scenario.recoveries:
        replica = system.replicas[pid]
        if not replica.state_transfers_completed:
            violations.append(
                f"recovery: replica {pid} never completed state transfer"
            )
            continue
        _when, installed, applied_at_completion = (
            replica.state_transfers_completed[-1]
        )
        if replica.next_apply <= installed:
            violations.append(
                f"recovery: replica {pid} committed no slots past its "
                f"installed snapshot (count {installed})"
            )

    verdict = VERDICT_FAIL if violations else VERDICT_PASS
    return verdict, violations


# -- records and presets ------------------------------------------------------


def run_service_scenario(scenario: ServiceScenario) -> dict[str, Any]:
    """Build, run and judge one scenario; the record is JSON-ready and
    byte-identical across runs of the same scenario."""
    system = scenario.build()
    result = system.run(max_time=scenario.max_time)
    verdict, violations = evaluate_service_outcome(scenario, system)
    latencies = system.client_latencies()
    from repro.analysis.stats import percentile

    record: dict[str, Any] = {
        "id": scenario.scenario_id,
        "config": scenario.to_config(),
        "run": {
            "end_time": round(result.end_time, 9),
            "end_reason": result.reason,
            "events": result.events_dispatched,
            "messages_sent": system.world.network.messages_sent,
        },
        "service": {
            "committed_commands": system.committed_commands(),
            "completed_requests": system.completed_requests(),
            "certified_checkpoints": system.certified_checkpoints(),
            "checkpoints_attested": len(system.checkpoint_digests()),
            "state_transfers": sum(
                len(r.state_transfers_completed) for r in system.replicas
            ),
            "resubmissions": sum(c.resubmissions for c in system.clients),
        },
        "latency": {
            "completions": len(latencies),
            "p50": round(percentile(latencies, 50.0), 9) if latencies else None,
            "p99": round(percentile(latencies, 99.0), 9) if latencies else None,
        },
        "verdict": verdict,
        "violations": violations,
    }
    return record


def service_preset(name: str) -> list[ServiceScenario]:
    """The named scenario lists behind ``repro service campaign``."""
    if name not in SERVICE_PRESETS:
        raise ConfigurationError(
            f"unknown service preset {name!r}; known: {sorted(SERVICE_PRESETS)}"
        )
    return list(SERVICE_PRESETS[name])


#: The smoke preset: one scenario per tentpole feature — baseline
#: open-loop batching/pipelining, closed-loop workload, a Byzantine
#: replica over a lossy wire behind the reliable transport, and a
#: down/restart recovery with state transfer.
SERVICE_PRESETS: dict[str, tuple[ServiceScenario, ...]] = {
    "smoke": (
        ServiceScenario(
            name="open-loop-baseline",
            seed=1,
            n_clients=2,
            requests_per_client=20,
            batch_size=4,
            window=2,
            checkpoint_interval=2,
            min_commands=40,
            min_checkpoints=2,
        ),
        ServiceScenario(
            name="closed-loop",
            seed=2,
            mode="closed",
            think=0.5,
            n_clients=3,
            requests_per_client=12,
            batch_size=2,
            window=2,
            checkpoint_interval=2,
            min_commands=36,
            min_checkpoints=2,
        ),
        ServiceScenario(
            name="byzantine-lossy",
            seed=3,
            n_clients=2,
            requests_per_client=20,
            batch_size=4,
            window=2,
            checkpoint_interval=2,
            attacks=((3, "corrupt-vector"),),
            loss=0.03,
            transport="reliable",
            min_commands=40,
            min_checkpoints=2,
        ),
        ServiceScenario(
            name="recovery",
            seed=4,
            n_clients=2,
            rate=0.4,
            requests_per_client=30,
            batch_size=4,
            window=2,
            checkpoint_interval=2,
            recoveries=((2, 25.0, 60.0),),
            min_commands=60,
            min_checkpoints=3,
        ),
    ),
}
