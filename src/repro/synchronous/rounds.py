"""Lock-step synchronous round substrate.

The paper's Vector Consensus is the asynchronous descendant of the
*Interactive Consistency* problem, "first proposed in synchronous systems"
(paper footnote 6, citing Pease–Shostak–Lamport). To reproduce that
baseline faithfully we need the synchronous model it lives in: computation
proceeds in rounds, every message sent in round ``r`` is delivered at the
start of round ``r + 1``, and a crashed process may deliver an arbitrary
*prefix* of its final round's sends (the classic crash semantics).

Byzantine processes are unrestricted: they may send any message to any
subset each round. The engine itself is trusted (it models the network,
not a participant).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.errors import ConfigurationError
from repro.sim.rng import SeededRng

#: Outbox shape: destination pid -> message (``None`` entries are skipped).
Outbox = dict[int, Any]
#: Inbox shape: source pid -> message received this round.
Inbox = dict[int, Any]


class SyncProcess(ABC):
    """A participant in a synchronous round-based computation."""

    def __init__(self) -> None:
        self.pid = -1
        self.n = 0
        self.rng: SeededRng | None = None

    def setup(self, pid: int, n: int, rng: SeededRng) -> None:
        """Called by the engine before round 1."""
        self.pid = pid
        self.n = n
        self.rng = rng

    @abstractmethod
    def on_round(self, round_number: int, inbox: Inbox) -> Outbox:
        """Consume the round's inbox, return the round's outbox.

        ``inbox`` maps each sender to the message it addressed to this
        process in the previous round (round 1 starts with an empty
        inbox).
        """


class SynchronousEngine:
    """Runs ``rounds`` lock-step rounds over a set of processes.

    Crash faults are scheduled as ``(pid, round, prefix)``: the process
    executes ``on_round`` for the given round, but only the first
    ``prefix`` destinations (in pid order) of its outbox are delivered,
    and it is silent forever after — the send-omission semantics of the
    synchronous crash model.
    """

    def __init__(
        self,
        processes: list[SyncProcess],
        seed: int = 0,
        crash_schedule: dict[int, tuple[int, int]] | None = None,
    ) -> None:
        if not processes:
            raise ConfigurationError("the engine needs at least one process")
        self.processes = processes
        self.n = len(processes)
        self.rng = SeededRng(seed, "sync")
        self.crash_schedule = dict(crash_schedule or {})
        self.crashed: set[int] = set()
        self.round = 0
        for pid, process in enumerate(processes):
            process.setup(pid, self.n, self.rng.fork(f"p{pid}"))
        self._inboxes: list[Inbox] = [{} for _ in range(self.n)]

    def run(self, rounds: int) -> None:
        """Execute the next ``rounds`` rounds."""
        for _ in range(rounds):
            self.round += 1
            self._run_round()

    def _run_round(self) -> None:
        next_inboxes: list[Inbox] = [{} for _ in range(self.n)]
        for pid, process in enumerate(self.processes):
            if pid in self.crashed:
                continue
            outbox = process.on_round(self.round, self._inboxes[pid]) or {}
            limit = self.n
            crash = self.crash_schedule.get(pid)
            if crash is not None and crash[0] == self.round:
                limit = crash[1]
                self.crashed.add(pid)
            delivered = 0
            for dst in sorted(outbox):
                if delivered >= limit:
                    break
                if 0 <= dst < self.n and outbox[dst] is not None:
                    next_inboxes[dst][pid] = outbox[dst]
                    delivered += 1
        self._inboxes = next_inboxes
