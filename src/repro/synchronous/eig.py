"""Interactive Consistency via Exponential Information Gathering (EIG).

Pease, Shostak & Lamport's problem (paper reference [11]) solved by the
classic EIG algorithm in the synchronous model with *oral* messages:
``f + 1`` rounds, ``n > 3f``. Every correct process ends with the same
vector of values, and the entry of every correct process is that
process's actual input — strictly stronger Vector Validity than the
asynchronous transformed protocol can offer (which is why the paper's
Vector Consensus weakens it to "at least n - 2F correct entries").

Algorithm sketch. Each process grows a tree of *reports*: the node with
label ``α = q1 q2 ... qk`` holds "``qk`` said that ``q(k-1)`` said that
... ``q1``'s input was v". Round 1 broadcasts the inputs; round ``r + 1``
re-broadcasts every level-``r`` report whose label does not already
contain the reporter. After round ``f + 1`` each subtree is *resolved*
bottom-up by recursive majority (a default value stands in where no
majority exists), and the decision vector's ``j``-th entry is the
resolution of the subtree rooted at ``j``.

Message cost is exponential in ``f`` (level ``r`` has n(n-1)...(n-r+1)
labels), which is exactly why experiment E12 contrasts it with the
certificate-based asynchronous protocol.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError
from repro.synchronous.rounds import Inbox, Outbox, SyncProcess

#: Default value adopted where no majority exists ("sender faulty").
DEFAULT = "<default>"

Label = tuple[int, ...]


def eig_rounds(f: int) -> int:
    """EIG needs exactly ``f + 1`` rounds."""
    return f + 1


class EigProcess(SyncProcess):
    """One correct participant in the EIG Interactive Consistency protocol."""

    def __init__(self, value: Any, f: int) -> None:
        super().__init__()
        self.value = value
        self.f = f
        self.tree: dict[Label, Any] = {}
        self.vector: tuple[Any, ...] | None = None
        self.messages_sent = 0

    def setup(self, pid: int, n: int, rng) -> None:
        super().setup(pid, n, rng)
        if n <= 3 * self.f:
            raise ConfigurationError(f"EIG needs n > 3f, got n={n}, f={self.f}")

    # -- rounds -----------------------------------------------------------------

    def on_round(self, round_number: int, inbox: Inbox) -> Outbox:
        self._absorb(round_number, inbox)
        if round_number > eig_rounds(self.f):
            return {}
        payload = self._reports_for_round(round_number)
        self.messages_sent += self.n
        return {dst: payload for dst in range(self.n)}

    def _reports_for_round(self, round_number: int) -> dict[Label, Any]:
        if round_number == 1:
            return {(): self.value}  # the root report: my own input
        level = round_number - 2  # labels of the previous level
        return {
            label: value
            for label, value in self.tree.items()
            if len(label) == level + 1 and self.pid not in label
        }

    def _absorb(self, round_number: int, inbox: Inbox) -> None:
        if round_number < 2:
            return
        expected_level = round_number - 1
        for reporter, payload in inbox.items():
            if not isinstance(payload, dict):
                continue  # garbage from a Byzantine reporter
            for label, value in payload.items():
                if not self._label_ok(label, reporter, expected_level):
                    continue
                extended = tuple(label) + (reporter,)
                self.tree.setdefault(extended, value)

    def _label_ok(self, label: Any, reporter: int, expected_level: int) -> bool:
        if not isinstance(label, tuple) or len(label) != expected_level - 1:
            return False
        if any(not isinstance(pid, int) or not 0 <= pid < self.n for pid in label):
            return False
        if len(set(label)) != len(label) or reporter in label:
            return False
        return True

    # -- resolution ----------------------------------------------------------------

    def finish(self) -> tuple[Any, ...]:
        """Resolve the tree into the Interactive Consistency vector."""
        self.vector = tuple(self._resolve((j,)) for j in range(self.n))
        return self.vector

    def _resolve(self, label: Label) -> Any:
        own = self.tree.get(label, DEFAULT)
        if len(label) >= eig_rounds(self.f):
            return own  # leaf level
        children = [
            self._resolve(label + (q,))
            for q in range(self.n)
            if q not in label
        ]
        counts: dict[Any, int] = {}
        for value in children:
            counts[value] = counts.get(value, 0) + 1
        best, best_count = None, 0
        for value, count in counts.items():
            if count > best_count:
                best, best_count = value, count
        if best_count * 2 > len(children):
            return best
        return DEFAULT


class EigLiar(EigProcess):
    """A Byzantine participant: reports independently random values.

    Sends each destination a *different* corruption of every report —
    the strongest oral-message misbehaviour (two-faced at every level).
    """

    def on_round(self, round_number: int, inbox: Inbox) -> Outbox:
        self._absorb(round_number, inbox)
        if round_number > eig_rounds(self.f):
            return {}
        honest = self._reports_for_round(round_number)
        outbox: Outbox = {}
        for dst in range(self.n):
            assert self.rng is not None
            outbox[dst] = {
                label: f"<lie-{self.rng.randint(0, 9)}>" for label in honest
            }
        self.messages_sent += self.n
        return outbox


class EigSilent(EigProcess):
    """A Byzantine participant that never speaks (crash-from-start)."""

    def on_round(self, round_number: int, inbox: Inbox) -> Outbox:
        self._absorb(round_number, inbox)
        return {}


def run_interactive_consistency(
    values: list[Any],
    f: int | None = None,
    byzantine: dict[int, type] | None = None,
    crash_schedule: dict[int, tuple[int, int]] | None = None,
    seed: int = 0,
) -> list[EigProcess]:
    """Convenience driver: build, run f+1 rounds, resolve, return processes."""
    from repro.synchronous.rounds import SynchronousEngine

    n = len(values)
    fault_count = f if f is not None else (n - 1) // 3
    byzantine = dict(byzantine or {})
    processes: list[EigProcess] = []
    for pid, value in enumerate(values):
        cls = byzantine.get(pid, EigProcess)
        processes.append(cls(value, fault_count))
    engine = SynchronousEngine(
        processes, seed=seed, crash_schedule=crash_schedule
    )
    engine.run(eig_rounds(fault_count) + 1)  # +1 to deliver the last level
    for pid, process in enumerate(processes):
        if pid not in byzantine:
            process.finish()
    return processes
