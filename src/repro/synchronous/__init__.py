"""Synchronous substrate and the Interactive Consistency baseline [11]."""

from repro.synchronous.eig import (
    DEFAULT,
    EigLiar,
    EigProcess,
    EigSilent,
    eig_rounds,
    run_interactive_consistency,
)
from repro.synchronous.rounds import SynchronousEngine, SyncProcess

__all__ = [
    "DEFAULT",
    "EigLiar",
    "EigProcess",
    "EigSilent",
    "SynchronousEngine",
    "SyncProcess",
    "eig_rounds",
    "run_interactive_consistency",
]
