"""Byzantine reliable broadcast — an extension substrate (see DESIGN.md)."""

from repro.broadcast.reliable import (
    RbEcho,
    RbReady,
    RbSend,
    ReliableBroadcast,
)

__all__ = ["RbEcho", "RbReady", "RbSend", "ReliableBroadcast"]
