"""Byzantine reliable broadcast (Bracha's double-echo, authenticated channels).

An extension module strengthening the paper's vector certification: the
INIT phase of Figure 3 is vulnerable to *INIT equivocation* — a Byzantine
process signing two different proposals and showing each to half the
system. The signatures make this *detectable* (the equivocation ledger),
but different correct processes may still hold different values for the
equivocator's slot. Disseminating INITs with a reliable broadcast adds
the missing **consistency** property: no two correct processes ever
deliver different messages for the same (origin, tag), and if any correct
process delivers, all do.

Protocol (Bracha 1987, over authenticated point-to-point channels,
``n > 3f``):

* the origin sends ``SEND(m)`` to all;
* on the first ``SEND`` from the origin, echo ``ECHO(m)`` to all;
* on ``ceil((n + f + 1) / 2)`` matching ``ECHO``s — or ``f + 1`` matching
  ``READY``s — send ``READY(m)`` to all (once);
* on ``2f + 1`` matching ``READY``s, deliver ``m``.

Quorum intersection makes two different messages undeliverable for one
slot: two echo quorums of size ``ceil((n+f+1)/2)`` intersect in a correct
process, which echoes at most once per slot.

The module is host-agnostic: it attaches to a
:class:`~repro.sim.process.ProcessEnv`, consumes its own wire messages
via :meth:`filter_message`, and hands deliveries to a callback — the same
shape as the failure-detector modules, so protocols can stack it beneath
their other modules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.crypto.encoding import canonical_bytes
from repro.errors import ConfigurationError, ProtocolError
from repro.messages.base import Message
from repro.sim.process import ProcessEnv

DeliverCallback = Callable[[int, int, Any], None]  # (origin, tag, payload)


@dataclass(frozen=True, slots=True)
class RbSend(Message):
    """First step: the origin disseminates its message."""

    tag: int
    payload: Any


@dataclass(frozen=True, slots=True)
class RbEcho(Message):
    """Second step: witnesses echo what the origin showed them."""

    origin: int
    tag: int
    payload: Any


@dataclass(frozen=True, slots=True)
class RbReady(Message):
    """Third step: commitment that enough echoes were seen."""

    origin: int
    tag: int
    payload: Any


@dataclass(slots=True)
class _SlotState:
    """Per-(origin, tag) progress of one broadcast instance."""

    echoed: bool = False
    ready_sent: bool = False
    delivered: bool = False
    echoes: dict[bytes, set[int]] = field(default_factory=dict)
    readies: dict[bytes, set[int]] = field(default_factory=dict)
    payloads: dict[bytes, Any] = field(default_factory=dict)


class ReliableBroadcast:
    """One process's reliable-broadcast module.

    Args:
        f: maximum number of Byzantine processes tolerated; requires
            ``n > 3f`` (checked at attach time).
        deliver: callback invoked exactly once per delivered slot.
    """

    def __init__(self, f: int, deliver: DeliverCallback) -> None:
        self._f = f
        self._deliver = deliver
        self._env: ProcessEnv | None = None
        self._slots: dict[tuple[int, int], _SlotState] = {}
        self._next_tag = 0
        self.delivered_count = 0

    # -- wiring ------------------------------------------------------------

    @property
    def env(self) -> ProcessEnv:
        if self._env is None:
            raise ProtocolError("reliable broadcast used before attach()")
        return self._env

    def attach(self, env: ProcessEnv) -> None:
        if self._env is not None:
            raise ProtocolError("reliable broadcast attached twice")
        if env.n <= 3 * self._f:
            raise ConfigurationError(
                f"reliable broadcast needs n > 3f, got n={env.n}, f={self._f}"
            )
        self._env = env

    # -- quorum arithmetic -------------------------------------------------------

    @property
    def echo_quorum(self) -> int:
        """``ceil((n + f + 1) / 2)`` matching echoes trigger READY."""
        return math.ceil((self.env.n + self._f + 1) / 2)

    @property
    def ready_amplify(self) -> int:
        """``f + 1`` matching readies also trigger READY."""
        return self._f + 1

    @property
    def ready_deliver(self) -> int:
        """``2f + 1`` matching readies trigger delivery."""
        return 2 * self._f + 1

    # -- sending -------------------------------------------------------------------

    def broadcast(self, payload: Any, tag: int | None = None) -> int:
        """Reliably broadcast ``payload``; returns the slot tag used."""
        if tag is None:
            tag = self._next_tag
            self._next_tag += 1
        body = RbSend(sender=self.env.pid, tag=tag, payload=payload)
        for dst in range(self.env.n):
            self.env.send(dst, body)
        return tag

    # -- receiving -------------------------------------------------------------------

    def filter_message(self, src: int, payload: object) -> bool:
        """Consume RB wire traffic; returns True when the payload was ours."""
        if isinstance(payload, RbSend):
            self._on_send(src, payload)
            return True
        if isinstance(payload, RbEcho):
            self._on_echo(src, payload)
            return True
        if isinstance(payload, RbReady):
            self._on_ready(src, payload)
            return True
        return False

    def _slot(self, origin: int, tag: int) -> _SlotState:
        return self._slots.setdefault((origin, tag), _SlotState())

    def _on_send(self, src: int, body: RbSend) -> None:
        # Channels are authenticated: the SEND counts only when it arrives
        # on the origin's own channel.
        if body.sender != src:
            return
        slot = self._slot(src, body.tag)
        if slot.echoed:
            return  # echo at most once per slot — the anti-equivocation rule
        slot.echoed = True
        echo = RbEcho(
            sender=self.env.pid, origin=src, tag=body.tag, payload=body.payload
        )
        for dst in range(self.env.n):
            self.env.send(dst, echo)

    def _on_echo(self, src: int, body: RbEcho) -> None:
        slot = self._slot(body.origin, body.tag)
        key = canonical_bytes(body.payload)
        slot.payloads.setdefault(key, body.payload)
        witnesses = slot.echoes.setdefault(key, set())
        witnesses.add(src)
        if len(witnesses) >= self.echo_quorum:
            self._send_ready(slot, body.origin, body.tag, key)

    def _on_ready(self, src: int, body: RbReady) -> None:
        slot = self._slot(body.origin, body.tag)
        key = canonical_bytes(body.payload)
        slot.payloads.setdefault(key, body.payload)
        witnesses = slot.readies.setdefault(key, set())
        witnesses.add(src)
        if len(witnesses) >= self.ready_amplify:
            self._send_ready(slot, body.origin, body.tag, key)
        if len(witnesses) >= self.ready_deliver and not slot.delivered:
            slot.delivered = True
            self.delivered_count += 1
            self.env.trace.record(
                self.env.now,
                "rb-deliver",
                process=self.env.pid,
                origin=body.origin,
                tag=body.tag,
            )
            self._deliver(body.origin, body.tag, slot.payloads[key])

    def _send_ready(
        self, slot: _SlotState, origin: int, tag: int, key: bytes
    ) -> None:
        if slot.ready_sent:
            return
        slot.ready_sent = True
        ready = RbReady(
            sender=self.env.pid, origin=origin, tag=tag, payload=slot.payloads[key]
        )
        for dst in range(self.env.n):
            self.env.send(dst, ready)
