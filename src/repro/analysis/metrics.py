"""Run metrics: cost accounting over traces.

Used by E7 (transformation overhead) and the per-experiment summaries:
message counts, wire bytes (canonical encoding of each sent payload),
rounds to decision, and decision latencies in virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.certificates import SignedMessage
from repro.crypto.encoding import canonical_bytes
from repro.detectors.heartbeat import Heartbeat
from repro.sim.transport import AckSegment, DataSegment
from repro.systems import ConsensusSystem


@dataclass(frozen=True, slots=True)
class RunMetrics:
    """Aggregate cost figures for one finished run."""

    messages_sent: int
    messages_delivered: int
    protocol_bytes: int
    signed_messages: int
    max_certificate_entries: int
    decided_count: int
    max_decision_round: int | None
    mean_decision_round: float | None
    mean_decision_time: float | None
    max_decision_time: float | None


def payload_bytes(payload: object) -> int:
    """True wire size of one payload.

    The *canonical* encoding of a signed message is deliberately
    pruning-invariant (it covers the certificate digest, not its
    expansion), so it cannot be used as a size measure. The wire carries
    the expansion of whatever certificate levels were not pruned, so the
    size of a signed message is its light encoding plus the wire size of
    every entry its (full) certificate actually ships.
    """
    if isinstance(payload, SignedMessage):
        size = len(canonical_bytes(payload.light_canonical()))
        if payload.has_full_cert:
            for entry in payload.full_cert():
                size += payload_bytes(entry)
        return size
    return len(canonical_bytes(payload))


def certificate_entries(payload: object) -> int:
    """Number of signed messages in the payload's certificate (recursive)."""
    if not isinstance(payload, SignedMessage) or not payload.has_full_cert:
        return 0
    total = 0
    for entry in payload.full_cert():
        total += 1 + certificate_entries(entry)
    return total


def measure(system: ConsensusSystem) -> RunMetrics:
    """Compute the cost metrics of a completed run from its trace."""
    protocol_bytes = 0
    signed = 0
    max_cert = 0
    for event in system.world.trace.of_kind("send"):
        payload = event.detail.get("payload")
        if isinstance(payload, (Heartbeat, AckSegment)):
            continue  # detector/transport-internal traffic, not protocol cost
        if isinstance(payload, DataSegment):
            payload = payload.payload  # cost the framed protocol payload
        protocol_bytes += payload_bytes(payload)
        if isinstance(payload, SignedMessage):
            signed += 1
            max_cert = max(max_cert, certificate_entries(payload))
    rounds: list[int] = []
    times: list[float] = []
    for pid in sorted(system.correct_pids):
        process = system.processes[pid]
        if process.decided:
            times.append(process.decision_time or 0.0)
            if process.decision_round is not None:
                rounds.append(process.decision_round)
    return RunMetrics(
        messages_sent=system.world.network.messages_sent,
        messages_delivered=system.world.network.messages_delivered,
        protocol_bytes=protocol_bytes,
        signed_messages=signed,
        max_certificate_entries=max_cert,
        decided_count=len(times),
        max_decision_round=max(rounds) if rounds else None,
        mean_decision_round=(sum(rounds) / len(rounds)) if rounds else None,
        mean_decision_time=(sum(times) / len(times)) if times else None,
        max_decision_time=max(times) if times else None,
    )
