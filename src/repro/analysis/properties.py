"""Property checkers: did a run satisfy the problem specification?

Checks run against ground truth (which processes were Byzantine or
crashed is known to the harness, never to the processes), over the
decisions recorded by the system and its trace.

* Crash-model consensus: Termination, Agreement, Validity (the decided
  value was proposed).
* Vector consensus (the transformed protocol): Termination, Agreement,
  and the paper's **Vector Validity** — every correct process decides a
  vector ``vect`` of size n with ``vect[i] ∈ {v_i, null}`` for every
  correct ``p_i``, and at least ``alpha = n - 2F >= 1`` entries are
  initial values of correct processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.specs import SystemParameters, vector_validity_floor
from repro.messages.consensus import NULL
from repro.systems import ConsensusSystem


@dataclass(slots=True)
class PropertyReport:
    """Outcome of checking one run against its specification."""

    termination: bool
    agreement: bool
    validity: bool
    violations: list[str] = field(default_factory=list)

    @property
    def all_hold(self) -> bool:
        return self.termination and self.agreement and self.validity


def check_crash_consensus(system: ConsensusSystem) -> PropertyReport:
    """Specification check for the crash-model protocols (Figure 2 / CT).

    ``validity`` here is the classic one: the decided value must have
    been proposed by some process. Byzantine attackers' *nominal*
    proposals count as proposed — deciding an attacker's fabricated
    non-proposal value is exactly the violation E2 demonstrates.
    """
    violations: list[str] = []
    correct = sorted(system.correct_pids)
    decisions = system.decisions()
    termination = all(pid in decisions for pid in correct)
    if not termination:
        missing = [pid for pid in correct if pid not in decisions]
        violations.append(f"termination: correct processes {missing} undecided")
    values = list(decisions.values())
    agreement = len({_freeze(v) for v in values}) <= 1
    if not agreement:
        violations.append(f"agreement: distinct decisions {sorted(set(map(_freeze, values)))!r}")
    proposed = {_freeze(p.proposal) for p in system.processes}
    validity = all(_freeze(v) in proposed for v in values)
    if not validity:
        rogue = sorted({_freeze(v) for v in values} - proposed)
        violations.append(f"validity: decided non-proposed value(s) {rogue!r}")
    return PropertyReport(
        termination=termination,
        agreement=agreement,
        validity=validity,
        violations=violations,
    )


def check_vector_consensus(system: ConsensusSystem) -> PropertyReport:
    """Specification check for the transformed protocol (Vector Validity)."""
    params = system.params
    if params is None:
        raise ValueError("vector check requires a transformed system")
    violations: list[str] = []
    correct = sorted(system.correct_pids)
    decisions = system.decisions()
    termination = all(pid in decisions for pid in correct)
    if not termination:
        missing = [pid for pid in correct if pid not in decisions]
        violations.append(f"termination: correct processes {missing} undecided")
    values = list(decisions.values())
    agreement = len({_freeze(v) for v in values}) <= 1
    if not agreement:
        violations.append("agreement: correct processes decided different vectors")
    validity = all(
        _vector_valid(vector, system, params, violations) for vector in values
    )
    return PropertyReport(
        termination=termination,
        agreement=agreement,
        validity=validity,
        violations=violations,
    )


def vector_valid(
    vector: Any,
    correct_proposals: dict[int, Any],
    params: SystemParameters,
    violations: list[str],
) -> bool:
    """The paper's Vector Validity predicate on a single decided vector.

    ``correct_proposals`` maps each *correct* pid to its initial value
    (ground truth the harness knows). Appends human-readable findings to
    ``violations`` and returns whether the vector satisfies the
    specification. Public so state-level checkers (the ``repro.mc``
    explorer) can evaluate it mid-run without a finished
    :class:`~repro.systems.ConsensusSystem`.
    """
    if not isinstance(vector, tuple) or len(vector) != params.n:
        violations.append(f"vector validity: malformed decision {vector!r}")
        return False
    ok = True
    correct_entries = 0
    for pid, entry in enumerate(vector):
        if pid in correct_proposals:
            proposal = correct_proposals[pid]
            if entry == proposal:
                correct_entries += 1
            elif entry != NULL:
                violations.append(
                    f"vector validity: entry {pid} is {entry!r}, expected "
                    f"{proposal!r} or null"
                )
                ok = False
    floor = vector_validity_floor(params.n, params.f)
    if correct_entries < floor:
        violations.append(
            f"vector validity: only {correct_entries} correct entries, "
            f"needs alpha = n - 2F = {floor}"
        )
        ok = False
    return ok


def _vector_valid(
    vector: Any,
    system: ConsensusSystem,
    params: SystemParameters,
    violations: list[str],
) -> bool:
    correct_proposals = {
        pid: system.processes[pid].proposal for pid in system.correct_pids
    }
    return vector_valid(vector, correct_proposals, params, violations)


@dataclass(slots=True)
class DetectionReport:
    """Who declared whom faulty / suspected whom, vs ground truth."""

    detected_by_all: bool
    detected_by_any: bool
    detectors_per_culprit: dict[int, int]
    false_positives: dict[int, list[int]]
    suspected_by_any: frozenset[int]

    @property
    def clean(self) -> bool:
        """No correct process was ever declared faulty by a correct one."""
        return not self.false_positives


def check_detection(system: ConsensusSystem) -> DetectionReport:
    """Ground-truth comparison of the ``faulty`` sets and suspicions.

    Only the verdicts of *correct* processes matter (a Byzantine process
    may claim anything about anyone).
    """
    correct = sorted(system.correct_pids)
    byzantine = system.byzantine_pids
    detectors_per_culprit: dict[int, int] = {pid: 0 for pid in byzantine}
    false_positives: dict[int, list[int]] = {}
    suspected: set[int] = set()
    for pid in correct:
        process = system.processes[pid]
        faulty = getattr(process, "faulty", frozenset())
        for culprit in faulty:
            if culprit in byzantine:
                detectors_per_culprit[culprit] += 1
            elif culprit in system.correct_pids:
                false_positives.setdefault(culprit, []).append(pid)
        if process.detector is not None:
            suspected |= process.detector.suspected
    detected_by_all = bool(byzantine) and all(
        count == len(correct) for count in detectors_per_culprit.values()
    )
    detected_by_any = bool(byzantine) and all(
        count > 0 for count in detectors_per_culprit.values()
    )
    return DetectionReport(
        detected_by_all=detected_by_all,
        detected_by_any=detected_by_any,
        detectors_per_culprit=detectors_per_culprit,
        false_positives=false_positives,
        suspected_by_any=frozenset(suspected),
    )


def _freeze(value: Any) -> Any:
    """Hashable view of a decision value (vectors are already tuples)."""
    if isinstance(value, list):
        return tuple(value)
    return value
