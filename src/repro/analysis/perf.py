"""The deterministic slice of the performance suite (``repro perf``).

The full saturation study lives in ``benchmarks/test_e20_saturation.py``
(methodology in docs/PERFORMANCE.md). This module carries the part a CI
smoke target can pin byte-for-byte: a short simulator saturation run
plus a cached-vs-uncached *equivalence* check. Wall-clock numbers are
deliberately absent — everything in the record is a deterministic
function of the seed, so ``make perf-smoke`` can run it twice and
``cmp`` the outputs.

The equivalence check is the safety half of the caching design: with
every verification cache and encoding memo disabled
(:func:`repro.crypto.cache.caching_disabled`) the run must commit the
same commands and finish at the same virtual time as the cached run —
the caches may only change how fast the wall clock moves, never what
the protocol decides.
"""

from __future__ import annotations

from typing import Any

from repro.crypto.cache import caching_disabled
from repro.observability.export import dumps_canonical
from repro.observability.registry import (
    MODULE_CERTIFICATION,
    MODULE_SERVICE,
    MODULE_SIGNATURE,
)
from repro.service import ServiceConfig, build_service_system

#: The smoke sweep: two light (clients, batch, window) cells.
SMOKE_CELLS = ((16, 8, 2), (48, 64, 4))
SMOKE_SEED = 20
SMOKE_REQUESTS = 4
SMOKE_RATE = 8.0

#: The equivalence config: certificate-heavy but small.
EQUIVALENCE_CONFIG = dict(
    n_clients=4,
    requests_per_client=6,
    rate=8.0,
    batch_size=4,
    window=2,
    checkpoint_interval=2,
    seed=3,
)


def _run(config: ServiceConfig) -> dict[str, Any]:
    system = build_service_system(config)
    result = system.run(max_time=2_500.0)
    metrics = system.world.metrics
    return {
        "committed_commands": system.committed_commands(),
        "virtual_time": round(result.end_time, 9),
        "all_clients_done": system.all_clients_done(),
        "checkpoints_agree": system.checkpoints_agree(),
        "sig_cache_hits": metrics.counter_total(
            MODULE_SIGNATURE, "sig_cache_hits"
        ),
        "pf_cache_hits": metrics.counter_total(
            MODULE_CERTIFICATION, "pf_cache_hits"
        ),
        "ckpt_cert_cache_hits": metrics.counter_total(
            MODULE_SERVICE, "ckpt_cert_cache_hits"
        ),
    }


def smoke_record() -> dict[str, Any]:
    """The deterministic perf-smoke record (see module docstring)."""
    cells = []
    for clients, batch_size, window in SMOKE_CELLS:
        run = _run(
            ServiceConfig(
                n_clients=clients,
                requests_per_client=SMOKE_REQUESTS,
                rate=SMOKE_RATE,
                batch_size=batch_size,
                window=window,
                checkpoint_interval=8,
                seed=SMOKE_SEED,
            )
        )
        run.update(clients=clients, batch_size=batch_size, window=window)
        cells.append(run)
    cached = _run(ServiceConfig(**EQUIVALENCE_CONFIG))
    with caching_disabled():
        uncached = _run(ServiceConfig(**EQUIVALENCE_CONFIG))
    equivalent = (
        cached["committed_commands"] == uncached["committed_commands"]
        and cached["virtual_time"] == uncached["virtual_time"]
        and cached["all_clients_done"]
        and cached["checkpoints_agree"]
    )
    return {
        "suite": "perf-smoke",
        "seed": SMOKE_SEED,
        "cells": cells,
        "equivalence": {
            "config": dict(EQUIVALENCE_CONFIG),
            "cached": cached,
            "uncached": uncached,
            "equivalent": equivalent,
        },
    }


def smoke_ok(record: dict[str, Any]) -> bool:
    """The pass verdict: converged cells, caches active, runs equivalent."""
    return (
        all(
            cell["all_clients_done"] and cell["checkpoints_agree"]
            for cell in record["cells"]
        )
        and all(cell["sig_cache_hits"] > 0 for cell in record["cells"])
        and record["equivalence"]["equivalent"]
        and record["equivalence"]["uncached"]["sig_cache_hits"] == 0
    )


def smoke_json(record: dict[str, Any]) -> str:
    """Canonical one-line JSON: byte-identical across fixed-seed runs."""
    return dumps_canonical(record)
