"""Seeded batch experiment runner.

Every benchmark (E1..E10) reduces to: build a system per seed, run it,
check properties, aggregate. :func:`run_trials` is that loop;
:class:`TrialSummary` is the aggregate the benchmarks print as table
rows. Determinism: trial ``k`` of a sweep always uses the same seed, so
every number in EXPERIMENTS.md is reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.metrics import RunMetrics, measure
from repro.analysis.properties import (
    DetectionReport,
    PropertyReport,
    check_detection,
)
from repro.systems import ConsensusSystem

SystemBuilder = Callable[[int], ConsensusSystem]
PropertyChecker = Callable[[ConsensusSystem], PropertyReport]


@dataclass(frozen=True, slots=True)
class Trial:
    """One seeded run with its verdicts and costs."""

    seed: int
    report: PropertyReport
    detection: DetectionReport
    metrics: RunMetrics
    run_reason: str


@dataclass(slots=True)
class TrialSummary:
    """Aggregate over a batch of trials (one table row)."""

    trials: list[Trial] = field(default_factory=list)

    def add(self, trial: Trial) -> None:
        self.trials.append(trial)

    def __len__(self) -> int:
        return len(self.trials)

    # -- property rates ----------------------------------------------------------

    def rate(self, predicate: Callable[[Trial], bool]) -> float:
        if not self.trials:
            return 0.0
        return sum(1 for t in self.trials if predicate(t)) / len(self.trials)

    def rate_ci(self, predicate: Callable[[Trial], bool]) -> str:
        """The rate with its 95% Wilson interval, formatted for a table."""
        from repro.analysis.stats import rate_with_ci

        successes = sum(1 for t in self.trials if predicate(t))
        return rate_with_ci(successes, len(self.trials))

    @property
    def all_hold_ci(self) -> str:
        return self.rate_ci(lambda t: t.report.all_hold)

    @property
    def termination_rate(self) -> float:
        return self.rate(lambda t: t.report.termination)

    @property
    def agreement_rate(self) -> float:
        return self.rate(lambda t: t.report.agreement)

    @property
    def validity_rate(self) -> float:
        return self.rate(lambda t: t.report.validity)

    @property
    def all_hold_rate(self) -> float:
        return self.rate(lambda t: t.report.all_hold)

    @property
    def violation_rate(self) -> float:
        """Rate of *safety* violations (agreement or validity broken)."""
        return self.rate(lambda t: not (t.report.agreement and t.report.validity))

    # -- detection rates -----------------------------------------------------------

    @property
    def detection_by_all_rate(self) -> float:
        return self.rate(lambda t: t.detection.detected_by_all)

    @property
    def detection_by_any_rate(self) -> float:
        return self.rate(lambda t: t.detection.detected_by_any)

    @property
    def false_positive_rate(self) -> float:
        return self.rate(lambda t: not t.detection.clean)

    @property
    def suspected_by_any_rate(self) -> float:
        """Rate of trials where every Byzantine pid got *suspected* (◇M)."""

        def suspected(t: Trial) -> bool:
            culprits = t.detection.detectors_per_culprit.keys()
            return bool(culprits) and all(
                pid in t.detection.suspected_by_any for pid in culprits
            )

        return self.rate(suspected)

    # -- cost means ------------------------------------------------------------------

    def mean(self, extract: Callable[[Trial], float | None]) -> float | None:
        values = [v for t in self.trials if (v := extract(t)) is not None]
        if not values:
            return None
        return sum(values) / len(values)

    @property
    def mean_messages(self) -> float | None:
        return self.mean(lambda t: float(t.metrics.messages_sent))

    @property
    def mean_bytes(self) -> float | None:
        return self.mean(lambda t: float(t.metrics.protocol_bytes))

    @property
    def mean_rounds(self) -> float | None:
        return self.mean(lambda t: t.metrics.mean_decision_round)

    @property
    def mean_decision_time(self) -> float | None:
        return self.mean(lambda t: t.metrics.mean_decision_time)


def run_trials(
    builder: SystemBuilder,
    checker: PropertyChecker,
    seeds: range | list[int],
    max_events: int = 400_000,
    max_time: float = 3_000.0,
) -> TrialSummary:
    """Build, run and check one system per seed; aggregate the verdicts."""
    summary = TrialSummary()
    for seed in seeds:
        system = builder(seed)
        result = system.run(max_events=max_events, max_time=max_time)
        summary.add(
            Trial(
                seed=seed,
                report=checker(system),
                detection=check_detection(system),
                metrics=measure(system),
                run_reason=result.reason,
            )
        )
    return summary
