"""RunReport: one run's observability data as per-module/round tables.

The JSONL artifact (:mod:`repro.observability.export`) is an accounting
log; this module turns it — or a freshly-run
:class:`~repro.systems.ConsensusSystem` — into the aggregated view a
human (or the ``python -m repro report`` command) wants:

* **module totals** — every counter summed over pids and rounds, grouped
  by the owning module, so the five Figure-1 modules can be compared at
  a glance;
* **per-round counters** — the round-labelled subset (rounds started,
  certificates checked per round, ...) as one row per (round, module,
  metric);
* **event counts** — the trace compressed to one row per event type;
* **gauges and histograms** — rendered per label (never summed across
  pids: a gauge is a point-in-time value and a histogram already
  aggregates), so batch occupancy, latency spreads and queue depths
  survive into the report instead of being dropped;
* **link health** — the per-link ``drop[src->dst]`` / ``dup[...]`` /
  ``retransmit[...]`` / ``ack[...]`` counters the network and transport
  layers emit, pivoted into one row per directed link.

The same report renders as aligned ASCII tables (:meth:`RunReport.render`)
or as a JSON document (:meth:`RunReport.to_json`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.analysis.reporting import render_table
from repro.observability.export import RunArtifact, event_record
from repro.observability.registry import MetricsRegistry, PAPER_MODULES


@dataclass(slots=True)
class RunReport:
    """Aggregated per-module / per-round view of one run."""

    meta: dict[str, Any] = field(default_factory=dict)
    #: module -> metric name -> total over all pid/round labels.
    module_totals: dict[str, dict[str, int | float]] = field(default_factory=dict)
    #: round -> (module, metric name) -> total over pids.
    round_counters: dict[int, dict[tuple[str, str], int | float]] = field(
        default_factory=dict
    )
    #: trace event type -> occurrence count.
    event_counts: dict[str, int] = field(default_factory=dict)
    #: gauge rows: {"module", "name", "pid", "round", "value"}.
    gauges: list[dict[str, Any]] = field(default_factory=list)
    #: histogram rows: {"module", "name", "pid", "round", "count",
    #: "sum", "min", "max", "mean"}.
    histograms: list[dict[str, Any]] = field(default_factory=list)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_metrics(
        cls,
        metrics: MetricsRegistry,
        events: list[dict[str, Any]] | None = None,
        meta: Mapping[str, Any] | None = None,
    ) -> "RunReport":
        """Aggregate a registry (and optional event records) directly."""
        counts: dict[str, int] = {}
        for event in events or []:
            counts[event["type"]] = counts.get(event["type"], 0) + 1
        # Gauges and histograms are kept per label, not summed: a gauge
        # is a point-in-time value and a histogram already aggregates —
        # collapsing either across pids would fabricate numbers no
        # module ever reported.
        gauges = [
            {"module": module, "name": name, "pid": pid, "round": rnd,
             "value": value}
            for (module, name, pid, rnd), value in metrics.iter_gauges()
        ]
        histograms = [
            {"module": module, "name": name, "pid": pid, "round": rnd,
             "count": int(count), "sum": total, "min": low, "max": high,
             "mean": total / count if count else 0.0}
            for (module, name, pid, rnd), (count, total, low, high)
            in metrics.iter_histograms()
        ]
        return cls(
            meta=dict(meta or {}),
            module_totals=metrics.totals_by_module(),
            round_counters={
                rnd: metrics.counters_for_round(rnd)
                for rnd in metrics.rounds_observed()
            },
            event_counts=dict(sorted(counts.items())),
            gauges=gauges,
            histograms=histograms,
        )

    @classmethod
    def from_artifact(cls, artifact: RunArtifact) -> "RunReport":
        """Aggregate a parsed JSONL artifact."""
        return cls.from_metrics(
            artifact.metrics, events=artifact.events, meta=artifact.meta
        )

    @classmethod
    def from_system(cls, system: Any, meta: Mapping[str, Any] | None = None) -> "RunReport":
        """Aggregate a just-run :class:`~repro.systems.ConsensusSystem`."""
        return cls.from_metrics(
            system.world.metrics,
            events=[event_record(e) for e in system.world.trace],
            meta=meta,
        )

    # -- views ---------------------------------------------------------------

    def paper_module_activity(self) -> dict[str, int | float]:
        """Total counter activity of each Figure-1 module (0 if silent).

        The acceptance check for the attack gallery: under an attack,
        every one of the five modules should have something to report.
        """
        return {
            module: sum(self.module_totals.get(module, {}).values())
            for module in PAPER_MODULES
        }

    def total(self, module: str, name: str) -> int | float:
        return self.module_totals.get(module, {}).get(name, 0)

    #: ``name[src->dst]`` — how the network/transport layers encode
    #: per-link counters inside a metric name.
    _LINK_METRIC = re.compile(r"^(\w+)\[(\d+)->(\d+)\]$")

    def link_health(self) -> dict[tuple[int, int], dict[str, int | float]]:
        """Per-directed-link fault/recovery counters.

        Returns ``(src, dst) -> {"drop": ..., "dup": ..., "retransmit":
        ..., "ack": ...}`` pivoted from the ``drop[0->1]``-style counters;
        empty when the run had no link model and no transport.
        """
        links: dict[tuple[int, int], dict[str, int | float]] = {}
        for names in self.module_totals.values():
            for name, value in names.items():
                match = self._LINK_METRIC.match(name)
                if match is None:
                    continue
                kind, src, dst = match.groups()
                link = links.setdefault((int(src), int(dst)), {})
                link[kind] = link.get(kind, 0) + value
        return {link: dict(sorted(kinds.items())) for link, kinds in sorted(links.items())}

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        """The report as aligned ASCII tables (one string, no trailing \\n)."""
        sections = []
        if self.meta:
            meta_text = ", ".join(
                f"{key}={self.meta[key]!r}" for key in sorted(self.meta)
            )
            sections.append(f"run: {meta_text}")
        sections.append(
            render_table(
                "module totals",
                ["module", "metric", "total"],
                [
                    [module, name, value]
                    for module, names in self.module_totals.items()
                    for name, value in names.items()
                ],
            )
        )
        if self.round_counters:
            sections.append(
                render_table(
                    "per-round counters",
                    ["round", "module", "metric", "total"],
                    [
                        [rnd, module, name, value]
                        for rnd, pairs in sorted(self.round_counters.items())
                        for (module, name), value in sorted(pairs.items())
                    ],
                )
            )
        if self.gauges:
            sections.append(
                render_table(
                    "gauges",
                    ["module", "metric", "pid", "value"],
                    [
                        [row["module"], row["name"],
                         "-" if row["pid"] is None else row["pid"],
                         row["value"]]
                        for row in self.gauges
                    ],
                )
            )
        if self.histograms:
            sections.append(
                render_table(
                    "histograms",
                    ["module", "metric", "pid", "count", "mean", "min", "max"],
                    [
                        [row["module"], row["name"],
                         "-" if row["pid"] is None else row["pid"],
                         row["count"], round(row["mean"], 4),
                         row["min"], row["max"]]
                        for row in self.histograms
                    ],
                )
            )
        link_health = self.link_health()
        if link_health:
            kinds = sorted({kind for counters in link_health.values() for kind in counters})
            sections.append(
                render_table(
                    "link health",
                    ["link"] + kinds,
                    [
                        [f"{src}->{dst}"] + [counters.get(kind, 0) for kind in kinds]
                        for (src, dst), counters in link_health.items()
                    ],
                )
            )
        if self.event_counts:
            sections.append(
                render_table(
                    "trace events",
                    ["type", "count"],
                    [[kind, count] for kind, count in self.event_counts.items()],
                )
            )
        return "\n\n".join(sections)

    def to_json(self) -> dict[str, Any]:
        """A JSON-ready document (tuple keys flattened to objects)."""
        return {
            "meta": self.meta,
            "module_totals": self.module_totals,
            "round_counters": [
                {
                    "round": rnd,
                    "module": module,
                    "name": name,
                    "total": value,
                }
                for rnd, pairs in sorted(self.round_counters.items())
                for (module, name), value in sorted(pairs.items())
            ],
            "event_counts": self.event_counts,
            "gauges": self.gauges,
            "histograms": self.histograms,
            "paper_module_activity": self.paper_module_activity(),
            "link_health": [
                {"src": src, "dst": dst, **counters}
                for (src, dst), counters in self.link_health().items()
            ],
        }


# ---------------------------------------------------------------------------
# Multi-artifact reports: several JSONL files, one grouped view.
# ---------------------------------------------------------------------------


def per_pid_totals(metrics: MetricsRegistry) -> list[dict[str, Any]]:
    """Counter totals keyed by pid (rounds summed, pids kept apart).

    The single-run report sums over pids on purpose; the multi-artifact
    view wants the opposite — one row per (pid, module, metric), so a
    lagging or restarted replica stands out against its peers inside the
    same artifact.
    """
    totals: dict[tuple[int | None, str, str], int | float] = {}
    for (module, name, pid, _rnd), value in metrics.iter_counters():
        key = (pid, module, name)
        totals[key] = totals.get(key, 0) + value
    return [
        {"pid": pid, "module": module, "name": name, "total": value}
        for (pid, module, name), value in sorted(
            totals.items(),
            key=lambda item: (
                item[0][0] is not None,
                item[0][0] or 0,
                item[0][1],
                item[0][2],
            ),
        )
    ]


def render_artifacts(items: list[tuple[str, RunArtifact]]) -> str:
    """Several artifacts as grouped per-pid tables (one section each)."""
    sections = []
    for label, artifact in items:
        report = RunReport.from_artifact(artifact)
        if report.meta:
            meta_text = ", ".join(
                f"{key}={report.meta[key]!r}" for key in sorted(report.meta)
            )
            sections.append(f"artifact {label}: {meta_text}")
        sections.append(
            render_table(
                f"per-pid counters — {label}",
                ["pid", "module", "metric", "total"],
                [
                    [
                        "-" if row["pid"] is None else row["pid"],
                        row["module"],
                        row["name"],
                        row["total"],
                    ]
                    for row in per_pid_totals(artifact.metrics)
                ],
            )
        )
    return "\n\n".join(sections)


def artifacts_to_json(items: list[tuple[str, RunArtifact]]) -> list[dict[str, Any]]:
    """The multi-artifact report as a JSON-ready list, one entry per file."""
    return [
        {
            "artifact": label,
            "per_pid": per_pid_totals(artifact.metrics),
            "report": RunReport.from_artifact(artifact).to_json(),
        }
        for label, artifact in items
    ]
