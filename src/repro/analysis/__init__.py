"""Analysis layer: property checking, metrics, batch experiments."""

from repro.analysis.experiments import Trial, TrialSummary, run_trials
from repro.analysis.metrics import RunMetrics, certificate_entries, measure, payload_bytes
from repro.analysis.properties import (
    DetectionReport,
    PropertyReport,
    check_crash_consensus,
    check_detection,
    check_vector_consensus,
)
from repro.analysis.reporting import percent, print_table, render_table
from repro.analysis.run_report import RunReport
from repro.analysis.stats import (
    min_trials_for_zero_failures,
    rate_with_ci,
    wilson_interval,
)
from repro.analysis.tracefmt import (
    describe_payload,
    render_sequence,
    trace_to_json,
    trace_to_records,
)

__all__ = [
    "DetectionReport",
    "PropertyReport",
    "RunMetrics",
    "RunReport",
    "Trial",
    "TrialSummary",
    "certificate_entries",
    "check_crash_consensus",
    "check_detection",
    "check_vector_consensus",
    "describe_payload",
    "measure",
    "min_trials_for_zero_failures",
    "payload_bytes",
    "percent",
    "rate_with_ci",
    "wilson_interval",
    "print_table",
    "render_sequence",
    "render_table",
    "run_trials",
    "trace_to_json",
    "trace_to_records",
]
