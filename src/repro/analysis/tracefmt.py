"""Trace export and message-sequence rendering.

Every run produces a complete :class:`~repro.sim.trace.Trace`; this
module turns it into artefacts humans and tools consume:

* :func:`trace_to_records` / :func:`trace_to_json` — a JSON-serialisable
  event list (payloads summarised, certificates reported by shape, not
  expanded) for archival or external analysis;
* :func:`render_sequence` — a plain-text message-sequence chart of the
  protocol traffic, the fastest way to *see* a run when debugging a
  schedule or explaining an attack.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.certificates import SignedMessage
from repro.messages.base import Message
from repro.sim.trace import Trace, TraceEvent
from repro.sim.transport import AckSegment, DataSegment


def describe_payload(payload: Any) -> str:
    """One-line human description of a wire payload."""
    if isinstance(payload, DataSegment):
        return f"seq:{payload.seq} {describe_payload(payload.payload)}"
    if isinstance(payload, AckSegment):
        return f"ack:{payload.ack}"
    if isinstance(payload, SignedMessage):
        cert = payload.cert
        if payload.has_full_cert:
            cert_text = f"cert[{len(payload.full_cert())}]"
        else:
            cert_text = "cert[pruned]"
        return f"{describe_payload(payload.body)} {cert_text} signed:{payload.signature.signer}"
    if isinstance(payload, Message):
        fields = []
        for name, value in payload.canonical():
            if name == "sender":
                continue
            rendered = repr(value)
            if len(rendered) > 24:
                rendered = rendered[:21] + "..."
            fields.append(f"{name}={rendered}")
        return f"{payload.type_name}({', '.join(fields)})"
    rendered = repr(payload)
    return rendered if len(rendered) <= 40 else rendered[:37] + "..."


def event_to_record(event: TraceEvent) -> dict[str, Any]:
    """A JSON-serialisable rendering of one trace event."""
    detail: dict[str, Any] = {}
    for key, value in event.detail.items():
        if key == "payload":
            detail["payload"] = describe_payload(value)
        elif isinstance(value, (str, int, float, bool)) or value is None:
            detail[key] = value
        else:
            detail[key] = repr(value)
    return {
        "time": round(event.time, 6),
        "kind": event.kind,
        "process": event.process,
        **detail,
    }


def trace_to_records(
    trace: Trace, kinds: set[str] | None = None
) -> list[dict[str, Any]]:
    """All (or the selected kinds of) events as JSON-ready dicts."""
    return [
        event_to_record(event)
        for event in trace
        if kinds is None or event.kind in kinds
    ]


def trace_to_json(trace: Trace, kinds: set[str] | None = None) -> str:
    return json.dumps(trace_to_records(trace, kinds), indent=2)


def _sequence_rows(trace: Trace, n: int, kinds: frozenset[str]):
    """Collapse the trace into (time, pid, text) rows; broadcasts of the
    same payload at the same instant become one ``-> *`` row."""
    rows: list[tuple[float, int, str]] = []
    open_sends: dict[tuple, list[int]] = {}

    def flush(key) -> None:
        destinations = open_sends.pop(key)
        time, pid, payload_text = key
        if len(destinations) == n:
            target = "*"
        else:
            target = ",".join(str(d) for d in sorted(destinations))
        rows.append((time, pid, f"{payload_text} -> {target}"))

    for event in trace:
        if event.kind == "send" and "send" in kinds:
            key = (
                event.time,
                event.process,
                describe_payload(event.detail.get("payload")),
            )
            open_sends.setdefault(key, []).append(event.detail.get("dst"))
            continue
        for key in list(open_sends):
            flush(key)
        if event.kind not in kinds:
            continue
        pid = event.process if event.process is not None else 0
        if event.kind == "decide":
            text = f"DECIDE {event.detail.get('value')!r}"
        elif event.kind == "round-start":
            text = f"round {event.detail.get('round')}"
        elif event.kind == "declare_faulty":
            text = f"faulty += {event.detail.get('target')}"
        else:
            text = event.kind.upper()
        rows.append((event.time, pid, text))
    for key in list(open_sends):
        flush(key)
    return rows


def render_sequence(
    trace: Trace,
    n: int,
    max_events: int = 80,
    kinds: frozenset[str] = frozenset({"send", "decide", "crash",
                                       "declare_faulty", "round-start"}),
) -> str:
    """A plain-text message-sequence chart of the run.

    One row per event in time order; each row is attributed to its
    process column. Broadcasts are collapsed to a single ``-> *`` entry.
    """
    rows = _sequence_rows(trace, n, kinds)
    width = max(16, max((len(text) for (_t, _p, text) in rows), default=16))
    width = min(width, 44)
    header = "   time  | " + " | ".join(
        f"p{pid}".ljust(width) for pid in range(n)
    )
    lines = [header, "-" * len(header)]
    for time, pid, text in rows[:max_events]:
        cells = ["".ljust(width)] * n
        if 0 <= pid < n:
            cells[pid] = text[:width].ljust(width)
        lines.append(f"{time:8.2f} | " + " | ".join(cells))
    if len(rows) > max_events:
        lines.append(f"... ({len(rows) - max_events} more rows truncated)")
    return "\n".join(lines)
